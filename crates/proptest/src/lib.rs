//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships
//! the slice of the proptest API its property tests use: the
//! [`Strategy`] trait with [`Strategy::prop_map`], range and tuple
//! strategies, [`collection::vec`], [`any`], [`ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case number; streams
//!   are deterministic per `(test name, case)`, so failures reproduce
//!   exactly on re-run;
//! * **no persistence/regression files**;
//! * assertion macros panic directly instead of returning `TestCaseError`.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Derives the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value — the
    /// two-stage draw behind "generate cards, then data of that shape".
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_flat_map`] combinator.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One arm of a [`OneOf`]: a boxed draw function.
pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Backing type of [`prop_oneof!`]: draws one of its arms uniformly.
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
}

/// Builds a [`OneOf`] from boxed draw functions (used by [`prop_oneof!`]).
pub fn one_of<V>(arms: Vec<OneOfArm<V>>) -> OneOf<V> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { arms }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Uniform choice between strategies of one value type (upstream's
/// weighted form is not supported — weight every arm equally instead).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![
            $({
                let s = $strat;
                Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&s, rng)
                }) as Box<dyn Fn(&mut $crate::TestRng) -> _>
            },)+
        ])
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F2),
    (A, B, C, D, E, F2, G),
    (A, B, C, D, E, F2, G, H)
);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for all values of a type with uniformly-samplable bits.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! any_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

any_via_standard!(bool, u32, u64, f64);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `elem` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// block is run `config.cases` times with fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// In-property assertion (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// In-property equality assertion (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let strat = (0u32..100, collection::vec(0i64..10, 3..8));
        let a = Strategy::generate(&strat, &mut crate::case_rng("t", 5));
        let b = Strategy::generate(&strat, &mut crate::case_rng("t", 5));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..9, y in 0.0f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_the_size_range(
            v in collection::vec(0u32..4, 2..6),
            w in collection::vec(any::<bool>(), 7),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 7);
            prop_assert!(v.iter().all(|&c| c < 4));
        }

        #[test]
        fn prop_map_applies(n in (1usize..5).prop_map(|n| n * 10)) {
            prop_assert!(n % 10 == 0 && (10..50).contains(&n));
        }

        #[test]
        fn flat_map_shapes_the_second_draw(
            v in (1usize..5).prop_flat_map(|len| collection::vec(0u32..9, len))
        ) {
            prop_assert!((1..5).contains(&v.len()));
        }

        #[test]
        fn oneof_draws_every_arm(x in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(x == 1 || x == 2 || (10u32..20).contains(&x));
        }

        #[test]
        fn just_clones_its_value(v in Just(vec![7u8, 8])) {
            prop_assert_eq!(v, vec![7u8, 8]);
        }
    }
}
