//! A database: a set of tables with resolved, integrity-checked foreign keys.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::schema::ForeignKeyDef;
use crate::table::Table;

/// Resolved foreign-key artifacts for one FK column.
#[derive(Debug, Clone)]
struct ResolvedFk {
    /// For each row of the owning table: the row index in the target table.
    target_rows: Vec<u32>,
    /// CSR layout of the reverse mapping: child rows grouped by parent row.
    rev_offsets: Vec<u32>,
    rev_children: Vec<u32>,
}

/// An immutable database with referential integrity guaranteed.
///
/// Construction (via [`DatabaseBuilder`]) verifies the paper's standing
/// assumption: every foreign-key value matches exactly one primary key in
/// the target table. After that, each FK column is resolved to dense row
/// indexes in both directions, which is what the exact executor and the
/// sufficient-statistics engine traverse.
#[derive(Debug, Clone)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, usize>,
    /// `(table_idx, attr_idx) -> ResolvedFk`
    fks: HashMap<(usize, usize), ResolvedFk>,
}

impl Database {
    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.by_name
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| Error::UnknownTable(name.to_owned()))
    }

    /// All tables, in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Index of a table by name.
    pub fn table_index(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownTable(name.to_owned()))
    }

    /// For foreign key `table.attr`: the target-table row index of each row.
    pub fn fk_target_rows(&self, table: &str, attr: &str) -> Result<&[u32]> {
        let (t, a) = self.fk_key(table, attr)?;
        Ok(&self.fks[&(t, a)].target_rows)
    }

    /// For foreign key `child_table.attr` referencing parent table `P`: the
    /// child rows whose FK points at `parent_row`.
    pub fn fk_child_rows(
        &self,
        child_table: &str,
        attr: &str,
        parent_row: usize,
    ) -> Result<&[u32]> {
        let (t, a) = self.fk_key(child_table, attr)?;
        let fk = &self.fks[&(t, a)];
        let lo = fk.rev_offsets[parent_row] as usize;
        let hi = fk.rev_offsets[parent_row + 1] as usize;
        Ok(&fk.rev_children[lo..hi])
    }

    /// All foreign keys of a table.
    pub fn foreign_keys_of(&self, table: &str) -> Result<Vec<ForeignKeyDef>> {
        Ok(self.table(table)?.schema().foreign_keys())
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.n_rows()).sum()
    }

    /// A human-readable summary: per table, the row count, each value
    /// attribute with its domain cardinality, and the declared foreign
    /// keys — the first thing to look at before modelling a new database.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for t in &self.tables {
            let _ = writeln!(out, "table {} ({} rows)", t.name(), t.n_rows());
            for attr in t.schema().value_attrs() {
                let card = t.domain(attr).map(|d| d.card()).unwrap_or(0);
                let _ = writeln!(out, "  {attr}: {card} distinct values");
            }
            for fk in t.schema().foreign_keys() {
                let _ = writeln!(out, "  {} -> {}", fk.attr, fk.target);
            }
        }
        out
    }

    fn fk_key(&self, table: &str, attr: &str) -> Result<(usize, usize)> {
        let t = self.table_index(table)?;
        let a = self.tables[t].schema().attr_index(attr).ok_or_else(|| {
            Error::UnknownAttr { table: table.to_owned(), attr: attr.to_owned() }
        })?;
        if self.fks.contains_key(&(t, a)) {
            Ok((t, a))
        } else {
            Err(Error::WrongAttrKind {
                table: table.to_owned(),
                attr: attr.to_owned(),
                expected: "foreign-key",
            })
        }
    }
}

/// Accumulates tables and produces an integrity-checked [`Database`].
#[derive(Default)]
pub struct DatabaseBuilder {
    tables: Vec<Table>,
}

impl DatabaseBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table. Order does not matter; FKs are resolved at `finish`.
    pub fn add_table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Resolves all foreign keys, verifying referential integrity.
    pub fn finish(self) -> Result<Database> {
        let mut by_name = HashMap::new();
        for (i, t) in self.tables.iter().enumerate() {
            if by_name.insert(t.name().to_owned(), i).is_some() {
                return Err(Error::DuplicateName(t.name().to_owned()));
            }
        }
        // Primary-key hash indexes per table.
        let mut pk_index: Vec<Option<HashMap<i64, u32>>> =
            Vec::with_capacity(self.tables.len());
        for t in &self.tables {
            pk_index.push(t.key_values().map(|keys| {
                keys.iter().enumerate().map(|(row, &k)| (k, row as u32)).collect()
            }));
        }

        let mut fks = HashMap::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for fk in t.schema().foreign_keys() {
                let ai = t.schema().attr_index(&fk.attr).expect("fk attr exists");
                let target_idx = *by_name.get(&fk.target).ok_or_else(|| {
                    Error::BadForeignKeyTarget {
                        table: t.name().to_owned(),
                        attr: fk.attr.clone(),
                        target: fk.target.clone(),
                    }
                })?;
                let index = pk_index[target_idx].as_ref().ok_or_else(|| {
                    Error::BadForeignKeyTarget {
                        table: t.name().to_owned(),
                        attr: fk.attr.clone(),
                        target: fk.target.clone(),
                    }
                })?;
                let raw = t.fk_values(&fk.attr)?;
                let mut target_rows = Vec::with_capacity(raw.len());
                for &k in raw {
                    let row =
                        index.get(&k).copied().ok_or(Error::DanglingForeignKey {
                            table: t.name().to_owned(),
                            attr: fk.attr.clone(),
                            key: k,
                        })?;
                    target_rows.push(row);
                }
                // Build reverse CSR: parent row -> child rows.
                let n_parent = self.tables[target_idx].n_rows();
                let mut counts = vec![0u32; n_parent + 1];
                for &r in &target_rows {
                    counts[r as usize + 1] += 1;
                }
                for i in 0..n_parent {
                    counts[i + 1] += counts[i];
                }
                let rev_offsets = counts.clone();
                let mut cursor = counts;
                let mut rev_children = vec![0u32; target_rows.len()];
                for (child, &parent) in target_rows.iter().enumerate() {
                    let slot = cursor[parent as usize];
                    rev_children[slot as usize] = child as u32;
                    cursor[parent as usize] += 1;
                }
                fks.insert(
                    (ti, ai),
                    ResolvedFk { target_rows, rev_offsets, rev_children },
                );
            }
        }
        Ok(Database { tables: self.tables, by_name, fks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Cell, TableBuilder};

    fn tiny_db() -> Database {
        let mut p = TableBuilder::new("parent").key("id").col("x");
        p.push_row(vec![Cell::Key(10), "a".into()]).unwrap();
        p.push_row(vec![Cell::Key(20), "b".into()]).unwrap();
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        c.push_row(vec![Cell::Key(1), Cell::Key(20), "p".into()]).unwrap();
        c.push_row(vec![Cell::Key(2), Cell::Key(10), "q".into()]).unwrap();
        c.push_row(vec![Cell::Key(3), Cell::Key(20), "p".into()]).unwrap();
        DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap()
    }

    #[test]
    fn fk_resolution_maps_keys_to_rows() {
        let db = tiny_db();
        assert_eq!(db.fk_target_rows("child", "parent").unwrap(), &[1, 0, 1]);
    }

    #[test]
    fn reverse_index_groups_children() {
        let db = tiny_db();
        assert_eq!(db.fk_child_rows("child", "parent", 0).unwrap(), &[1]);
        assert_eq!(db.fk_child_rows("child", "parent", 1).unwrap(), &[0, 2]);
    }

    #[test]
    fn dangling_fk_is_rejected() {
        let mut p = TableBuilder::new("parent").key("id");
        p.push_row(vec![Cell::Key(1)]).unwrap();
        let mut c = TableBuilder::new("child").fk("parent", "parent");
        c.push_row(vec![Cell::Key(99)]).unwrap();
        let err = DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish();
        assert!(matches!(err, Err(Error::DanglingForeignKey { key: 99, .. })));
    }

    #[test]
    fn fk_to_missing_table_is_rejected() {
        let mut c = TableBuilder::new("child").fk("parent", "nope");
        c.push_row(vec![Cell::Key(1)]).unwrap();
        let err = DatabaseBuilder::new().add_table(c.finish().unwrap()).finish();
        assert!(matches!(err, Err(Error::BadForeignKeyTarget { .. })));
    }

    #[test]
    fn duplicate_table_names_rejected() {
        let t1 = TableBuilder::new("t").col("x").finish().unwrap();
        let t2 = TableBuilder::new("t").col("y").finish().unwrap();
        let err = DatabaseBuilder::new().add_table(t1).add_table(t2).finish();
        assert!(matches!(err, Err(Error::DuplicateName(_))));
    }

    #[test]
    fn summary_lists_tables_attrs_and_fks() {
        let db = tiny_db();
        let text = db.summary();
        assert!(text.contains("table parent (2 rows)"), "{text}");
        assert!(text.contains("x: 2 distinct values"), "{text}");
        assert!(text.contains("parent -> parent"), "{text}");
    }

    #[test]
    fn accessors_reject_wrong_kinds() {
        let db = tiny_db();
        assert!(db.fk_target_rows("child", "y").is_err());
        assert!(db.table("nope").is_err());
        assert_eq!(db.total_rows(), 5);
    }
}
