//! Exact evaluation of select/keyjoin queries.
//!
//! The estimators in this workspace are scored against ground truth, so we
//! need the *exact* result size of every workload query. Because all joins
//! are foreign-key joins and the join graph of a well-formed query is a
//! forest, the count is computable in linear time by dynamic programming
//! over the join tree — no intermediate join materialization.
//!
//! For each tuple variable `X` we maintain a per-row weight `w_X(x)` = the
//! number of ways row `x` extends to a full assignment of `X`'s join
//! subtree. Leaves start at `pred(x) ∈ {0,1}`; an edge `C.fk = P.pk` is
//! absorbed either by a gather (`w_P(p) *= Σ_{c: fk(c)=p} w_C(c)`) or a probe
//! (`w_C(c) *= w_P(fk(c))`) depending on which side is closer to the root.
//! The query result size is the product over connected components of the
//! root weights' sum. A brute-force nested-loop evaluator
//! ([`result_size_bruteforce`]) cross-checks the DP in tests.

use crate::database::Database;
use crate::error::{Error, Result};
use crate::query::Query;

/// Computes the exact result size of `query` against `db`.
///
/// Errors if the query is invalid or its join graph contains a cycle (which
/// cannot arise from the paper's query class).
pub fn result_size(db: &Database, query: &Query) -> Result<u64> {
    obs::counter!("reldb.exec.queries").inc();
    query.validate(db)?;
    let n = query.vars.len();
    if n == 0 {
        return Ok(0);
    }

    // Per-variable predicate weights.
    let mut weights: Vec<Vec<u64>> = Vec::with_capacity(n);
    for v in 0..n {
        let w = pred_weights(db, query, v)?;
        obs::counter!("reldb.exec.rows_scanned").add(w.len() as u64);
        weights.push(w);
    }

    // Adjacency over the join forest. Edge payload: (join index, neighbor).
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (ji, j) in query.joins.iter().enumerate() {
        if j.child == j.parent {
            return Err(Error::BadJoin("self-join of a variable with itself".into()));
        }
        adj[j.child].push((ji, j.parent));
        adj[j.parent].push((ji, j.child));
    }

    let mut visited = vec![false; n];
    let mut total: u128 = 1;
    for root in 0..n {
        if visited[root] {
            continue;
        }
        let component_sum =
            eval_component(db, query, &mut weights, &adj, &mut visited, root)?;
        total = total.saturating_mul(component_sum as u128);
        if total == 0 {
            return Ok(0);
        }
    }
    Ok(u64::try_from(total).unwrap_or(u64::MAX))
}

/// Evaluates one connected component rooted at `root`; returns Σ w_root.
fn eval_component(
    db: &Database,
    query: &Query,
    weights: &mut [Vec<u64>],
    adj: &[Vec<(usize, usize)>],
    visited: &mut [bool],
    root: usize,
) -> Result<u64> {
    // Iterative DFS producing a post-order over (node, parent_edge).
    let mut order: Vec<(usize, Option<usize>)> = Vec::new();
    let mut stack = vec![(root, usize::MAX)];
    visited[root] = true;
    let mut parent_edge: Vec<Option<usize>> = vec![None; adj.len()];
    while let Some((node, from)) = stack.pop() {
        order.push((node, parent_edge[node]));
        for &(ji, next) in &adj[node] {
            if next == from {
                continue;
            }
            if visited[next] {
                return Err(Error::BadJoin("cyclic join graph".into()));
            }
            visited[next] = true;
            parent_edge[next] = Some(ji);
            stack.push((next, node));
        }
    }
    // Children first.
    for &(node, up_edge) in order.iter().rev() {
        let Some(ji) = up_edge else { continue };
        let join = &query.joins[ji];
        let (child_var, parent_var) = (join.child, join.parent);
        let other = if node == child_var { parent_var } else { child_var };
        if node == child_var {
            // `node` is the FK side and `other` is closer to the root:
            // gather node's weights onto the parent rows.
            let fk_rows =
                db.fk_target_rows(&query.vars[child_var], &join.fk_attr)?.to_vec();
            let child_w = std::mem::take(&mut weights[node]);
            let agg_len = weights[other].len();
            let mut agg = vec![0u64; agg_len];
            for (c, &p) in fk_rows.iter().enumerate() {
                agg[p as usize] = agg[p as usize].saturating_add(child_w[c]);
            }
            for (w, a) in weights[other].iter_mut().zip(agg) {
                *w = w.saturating_mul(a);
            }
        } else {
            // `node` is the PK side and `other` (FK side) is closer to the
            // root: probe node's weights through the FK pointers.
            let fk_rows =
                db.fk_target_rows(&query.vars[child_var], &join.fk_attr)?.to_vec();
            let parent_w = std::mem::take(&mut weights[node]);
            for (c, &p) in fk_rows.iter().enumerate() {
                weights[other][c] =
                    weights[other][c].saturating_mul(parent_w[p as usize]);
            }
        }
    }
    Ok(weights[root].iter().fold(0u64, |s, &w| s.saturating_add(w)))
}

/// 0/1 weight per row of `query.vars[var]` from its selection predicates.
fn pred_weights(db: &Database, query: &Query, var: usize) -> Result<Vec<u64>> {
    let table = db.table(&query.vars[var])?;
    let mut w = vec![1u64; table.n_rows()];
    for p in query.preds.iter().filter(|p| p.var() == var) {
        let domain = table.domain(p.attr())?;
        let mut allowed = vec![false; domain.card()];
        for code in p.matching_codes(db, &query.vars[var])? {
            allowed[code as usize] = true;
        }
        let codes = table.codes(p.attr())?;
        for (wi, &c) in w.iter_mut().zip(codes) {
            if !allowed[c as usize] {
                *wi = 0;
            }
        }
    }
    Ok(w)
}

/// Materializes (up to `limit`) result tuples of a select/keyjoin query:
/// each result is one row index per tuple variable. Enumeration walks the
/// join forest depth-first, so it touches only rows that can still extend
/// to a full result — complexity is output-sensitive rather than
/// nested-loop.
///
/// Used by tests to cross-check counts and by demos to show actual
/// matching tuples; the estimators never need it.
pub fn select_rows(db: &Database, query: &Query, limit: usize) -> Result<Vec<Vec<u32>>> {
    query.validate(db)?;
    let n = query.vars.len();
    if n == 0 || limit == 0 {
        return Ok(Vec::new());
    }
    let mut pred_ok: Vec<Vec<u64>> = Vec::with_capacity(n);
    for v in 0..n {
        pred_ok.push(pred_weights(db, query, v)?);
    }
    let fk_maps: Vec<Vec<u32>> = query
        .joins
        .iter()
        .map(|j| db.fk_target_rows(&query.vars[j.child], &j.fk_attr).map(|r| r.to_vec()))
        .collect::<Result<_>>()?;

    let mut out = Vec::new();
    let mut assignment: Vec<Option<u32>> = vec![None; n];
    // Order variables so each (after the first in its component) is join-
    // connected to an earlier one; the join constraint then prunes early.
    let order = connected_order(n, &query.joins);
    enumerate_rows(
        db,
        query,
        &pred_ok,
        &fk_maps,
        &order,
        0,
        &mut assignment,
        &mut out,
        limit,
    )?;
    Ok(out)
}

/// Variables ordered so that joins bind as early as possible.
fn connected_order(n: usize, joins: &[crate::query::Join]) -> Vec<usize> {
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        // Prefer a variable joined to an already-placed one.
        let next = (0..n)
            .find(|&v| {
                !placed[v]
                    && joins.iter().any(|j| {
                        (j.child == v && placed[j.parent])
                            || (j.parent == v && placed[j.child])
                    })
            })
            .or_else(|| (0..n).find(|&v| !placed[v]))
            .expect("some variable unplaced");
        placed[next] = true;
        order.push(next);
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rows(
    db: &Database,
    query: &Query,
    pred_ok: &[Vec<u64>],
    fk_maps: &[Vec<u32>],
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<Option<u32>>,
    out: &mut Vec<Vec<u32>>,
    limit: usize,
) -> Result<()> {
    if out.len() >= limit {
        return Ok(());
    }
    if depth == order.len() {
        out.push(assignment.iter().map(|a| a.expect("fully assigned")).collect());
        return Ok(());
    }
    let var = order[depth];
    // Candidate rows: constrained by any join to an already-bound variable.
    let mut candidates: Option<Vec<u32>> = None;
    for (ji, j) in query.joins.iter().enumerate() {
        if j.child == var {
            if let Some(parent_row) = assignment[j.parent] {
                // Child rows pointing at the bound parent row.
                let rows: Vec<u32> = db
                    .fk_child_rows(&query.vars[var], &j.fk_attr, parent_row as usize)?
                    .to_vec();
                candidates = Some(intersect_sorted(candidates, rows));
            }
        } else if j.parent == var {
            if let Some(child_row) = assignment[j.child] {
                let parent_row = fk_maps[ji][child_row as usize];
                candidates = Some(intersect_sorted(candidates, vec![parent_row]));
            }
        }
    }
    let all: Vec<u32>;
    let rows: &[u32] = match &candidates {
        Some(c) => c,
        None => {
            let n_rows = db.table(&query.vars[var])?.n_rows() as u32;
            all = (0..n_rows).collect();
            &all
        }
    };
    for &row in rows {
        if pred_ok[var][row as usize] == 0 {
            continue;
        }
        assignment[var] = Some(row);
        enumerate_rows(
            db,
            query,
            pred_ok,
            fk_maps,
            order,
            depth + 1,
            assignment,
            out,
            limit,
        )?;
        assignment[var] = None;
        if out.len() >= limit {
            break;
        }
    }
    Ok(())
}

fn intersect_sorted(current: Option<Vec<u32>>, mut incoming: Vec<u32>) -> Vec<u32> {
    incoming.sort_unstable();
    match current {
        None => incoming,
        Some(cur) => {
            cur.into_iter().filter(|r| incoming.binary_search(r).is_ok()).collect()
        }
    }
}

/// Brute-force nested-loop evaluation. Exponential in the number of tuple
/// variables — only for cross-checking on small inputs (guards against more
/// than ~10⁷ combinations).
pub fn result_size_bruteforce(db: &Database, query: &Query) -> Result<u64> {
    query.validate(db)?;
    let n = query.vars.len();
    let sizes: Vec<usize> = query
        .vars
        .iter()
        .map(|t| db.table(t).map(|t| t.n_rows()))
        .collect::<Result<_>>()?;
    let combos: f64 = sizes.iter().map(|&s| s as f64).product();
    if combos > 1e7 {
        return Err(Error::BadJoin(
            "brute force would enumerate too many combinations".into(),
        ));
    }
    let mut pred_ok: Vec<Vec<u64>> = Vec::with_capacity(n);
    for v in 0..n {
        pred_ok.push(pred_weights(db, query, v)?);
    }
    let mut fk_maps = Vec::new();
    for j in &query.joins {
        fk_maps.push(db.fk_target_rows(&query.vars[j.child], &j.fk_attr)?.to_vec());
    }

    let mut count = 0u64;
    let mut assignment = vec![0usize; n];
    loop {
        let sat = assignment.iter().enumerate().all(|(v, &row)| pred_ok[v][row] == 1)
            && query.joins.iter().zip(&fk_maps).all(|(j, map)| {
                map[assignment[j.child]] as usize == assignment[j.parent]
            });
        if sat {
            count += 1;
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == n {
                return Ok(count);
            }
            assignment[k] += 1;
            if assignment[k] < sizes[k] {
                break;
            }
            assignment[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::table::{Cell, TableBuilder};
    use crate::value::Value;

    /// TB-style 3-table chain: contact →fk patient →fk strain.
    fn chain_db() -> Database {
        let mut s = TableBuilder::new("strain").key("id").col("unique");
        for (id, u) in [(1, "yes"), (2, "no"), (3, "no")] {
            s.push_row(vec![Cell::Key(id), u.into()]).unwrap();
        }
        let mut p =
            TableBuilder::new("patient").key("id").fk("strain", "strain").col("age");
        for (id, st, age) in [(1, 1, 30i64), (2, 2, 60), (3, 2, 60), (4, 3, 30)] {
            p.push_row(vec![Cell::Key(id), Cell::Key(st), Cell::Val(Value::Int(age))])
                .unwrap();
        }
        let mut c =
            TableBuilder::new("contact").key("id").fk("patient", "patient").col("type");
        for (id, pt, ty) in [
            (1, 1, "home"),
            (2, 2, "work"),
            (3, 2, "home"),
            (4, 2, "home"),
            (5, 4, "work"),
        ] {
            c.push_row(vec![Cell::Key(id), Cell::Key(pt), ty.into()]).unwrap();
        }
        DatabaseBuilder::new()
            .add_table(s.finish().unwrap())
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap()
    }

    #[test]
    fn single_table_select_counts_rows() {
        let db = chain_db();
        let mut b = Query::builder();
        let p = b.var("patient");
        b.eq(p, "age", 60);
        assert_eq!(result_size(&db, &b.build()).unwrap(), 2);
    }

    #[test]
    fn unconstrained_join_size_equals_child_cardinality() {
        // Under referential integrity, contact ⋈ patient has |contact| rows.
        let db = chain_db();
        let mut b = Query::builder();
        let c = b.var("contact");
        let p = b.var("patient");
        b.join(c, "patient", p);
        assert_eq!(result_size(&db, &b.build()).unwrap(), 5);
    }

    #[test]
    fn three_table_chain_with_selects() {
        let db = chain_db();
        let mut b = Query::builder();
        let c = b.var("contact");
        let p = b.var("patient");
        let s = b.var("strain");
        b.join(c, "patient", p)
            .join(p, "strain", s)
            .eq(c, "type", "home")
            .eq(s, "unique", "no");
        // home contacts of patients with non-unique strains: contacts 3, 4.
        assert_eq!(result_size(&db, &b.build()).unwrap(), 2);
    }

    #[test]
    fn disconnected_vars_form_cross_product() {
        let db = chain_db();
        let mut b = Query::builder();
        let p = b.var("patient");
        let s = b.var("strain");
        b.eq(p, "age", 30).eq(s, "unique", "no");
        // 2 patients × 2 strains.
        assert_eq!(result_size(&db, &b.build()).unwrap(), 4);
    }

    #[test]
    fn range_predicate_counts_inclusive_interval() {
        let db = chain_db();
        let mut b = Query::builder();
        let p = b.var("patient");
        b.range(p, "age", Some(30), Some(59));
        assert_eq!(result_size(&db, &b.build()).unwrap(), 2);
    }

    #[test]
    fn dp_matches_bruteforce_on_chain_queries() {
        let db = chain_db();
        for (ctype, uniq) in
            [("home", "yes"), ("home", "no"), ("work", "yes"), ("work", "no")]
        {
            let mut b = Query::builder();
            let c = b.var("contact");
            let p = b.var("patient");
            let s = b.var("strain");
            b.join(c, "patient", p)
                .join(p, "strain", s)
                .eq(c, "type", ctype)
                .eq(s, "unique", uniq);
            let q = b.build();
            assert_eq!(
                result_size(&db, &q).unwrap(),
                result_size_bruteforce(&db, &q).unwrap(),
                "mismatch for ({ctype},{uniq})"
            );
        }
    }

    #[test]
    fn shared_parent_star_query() {
        // Two contact variables joined to the same patient variable.
        let db = chain_db();
        let mut b = Query::builder();
        let c1 = b.var("contact");
        let c2 = b.var("contact");
        let p = b.var("patient");
        b.join(c1, "patient", p).join(c2, "patient", p);
        let q = b.build();
        // Patient 1: 1², patient 2: 3², patient 3: 0, patient 4: 1² → 11.
        assert_eq!(result_size(&db, &q).unwrap(), 11);
        assert_eq!(result_size_bruteforce(&db, &q).unwrap(), 11);
    }

    #[test]
    fn select_rows_matches_count_and_satisfies_query() {
        let db = chain_db();
        let mut b = Query::builder();
        let c = b.var("contact");
        let p = b.var("patient");
        let s = b.var("strain");
        b.join(c, "patient", p)
            .join(p, "strain", s)
            .eq(c, "type", "home")
            .eq(s, "unique", "no");
        let q = b.build();
        let rows = select_rows(&db, &q, 1000).unwrap();
        assert_eq!(rows.len() as u64, result_size(&db, &q).unwrap());
        // Every materialized tuple satisfies the joins.
        let c_to_p = db.fk_target_rows("contact", "patient").unwrap();
        let p_to_s = db.fk_target_rows("patient", "strain").unwrap();
        for r in &rows {
            assert_eq!(c_to_p[r[0] as usize], r[1]);
            assert_eq!(p_to_s[r[1] as usize], r[2]);
        }
    }

    #[test]
    fn select_rows_respects_limit() {
        let db = chain_db();
        let mut b = Query::builder();
        let c = b.var("contact");
        let p = b.var("patient");
        b.join(c, "patient", p);
        let rows = select_rows(&db, &b.build(), 3).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn select_rows_on_cross_product() {
        let db = chain_db();
        let mut b = Query::builder();
        let p = b.var("patient");
        let s = b.var("strain");
        b.eq(p, "age", 30).eq(s, "unique", "no");
        let rows = select_rows(&db, &b.build(), 100).unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn empty_predicate_value_gives_zero() {
        let db = chain_db();
        let mut b = Query::builder();
        let p = b.var("patient");
        b.eq(p, "age", 99);
        assert_eq!(result_size(&db, &b.build()).unwrap(), 0);
    }
}
