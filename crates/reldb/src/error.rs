//! Error type shared across the relational engine.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building or querying a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table name was not found in the database.
    UnknownTable(String),
    /// An attribute name was not found in a table.
    UnknownAttr { table: String, attr: String },
    /// A tuple variable index was out of range for the query.
    UnknownVar(usize),
    /// The referenced attribute exists but has the wrong kind for the
    /// operation (e.g. a select predicate on a key column).
    WrongAttrKind { table: String, attr: String, expected: &'static str },
    /// A row was pushed with the wrong number of values.
    ArityMismatch { table: String, expected: usize, got: usize },
    /// A value's type did not match the column's previously seen values.
    TypeMismatch { table: String, attr: String },
    /// Two rows share a primary-key value.
    DuplicateKey { table: String, key: i64 },
    /// A foreign-key value has no matching primary key in the target table
    /// (referential-integrity violation).
    DanglingForeignKey { table: String, attr: String, key: i64 },
    /// A foreign key references a table with no primary key, or a missing
    /// table.
    BadForeignKeyTarget { table: String, attr: String, target: String },
    /// Two tables (or two attributes within a table) share a name.
    DuplicateName(String),
    /// The query's join graph is malformed (join through a non-FK column,
    /// join to the wrong table, or a cyclic join graph the exact executor
    /// cannot handle).
    BadJoin(String),
    /// A predicate references values outside the column's domain in a way
    /// that cannot be resolved (only possible for range bounds on
    /// non-integer columns).
    BadPredicate(String),
    /// An I/O failure while reading or writing files.
    Io(String),
    /// A parse failure (SQL text, CSV contents, schema manifests).
    Parse(String),
    /// A corrupt or incompatible on-disk artifact (model files).
    Corrupt(String),
    /// A resource budget was exhausted (inference width or deadline
    /// guards); carries which limit tripped.
    Exhausted(String),
    /// An internal invariant was violated, a fault was injected, or a
    /// worker panic was isolated.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Error::UnknownAttr { table, attr } => {
                write!(f, "unknown attribute `{attr}` in table `{table}`")
            }
            Error::UnknownVar(v) => write!(f, "tuple variable #{v} out of range"),
            Error::WrongAttrKind { table, attr, expected } => {
                write!(f, "attribute `{table}.{attr}` is not a {expected} column")
            }
            Error::ArityMismatch { table, expected, got } => {
                write!(f, "row for `{table}` has {got} values, schema expects {expected}")
            }
            Error::TypeMismatch { table, attr } => {
                write!(f, "mixed value types in column `{table}.{attr}`")
            }
            Error::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in table `{table}`")
            }
            Error::DanglingForeignKey { table, attr, key } => write!(
                f,
                "foreign key `{table}.{attr}` = {key} has no matching primary key"
            ),
            Error::BadForeignKeyTarget { table, attr, target } => write!(
                f,
                "foreign key `{table}.{attr}` references `{target}` which is missing or has no primary key"
            ),
            Error::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            Error::BadJoin(msg) => write!(f, "bad join: {msg}"),
            Error::BadPredicate(msg) => write!(f, "bad predicate: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            Error::Exhausted(msg) => write!(f, "budget exhausted: {msg}"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
