//! Table schemas: attribute definitions, primary keys, foreign keys.

/// The role an attribute plays in its table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrKind {
    /// The table's primary key (`i64`, unique).
    PrimaryKey,
    /// A foreign key (`i64`) referencing the primary key of `target`.
    ForeignKey {
        /// Name of the referenced table.
        target: String,
    },
    /// A value (non-key) attribute over a small discrete domain. These are
    /// the attributes written `R.*` in the paper — the ones probabilistic
    /// models are built over.
    Value,
}

/// One attribute of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name, unique within the table.
    pub name: String,
    /// Role of the attribute.
    pub kind: AttrKind,
}

/// A resolved foreign-key definition (derived from the attribute list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKeyDef {
    /// Name of the foreign-key attribute in the owning table.
    pub attr: String,
    /// Name of the referenced table.
    pub target: String,
}

/// The schema of a single table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name, unique within the database.
    pub name: String,
    /// All attributes in declaration order (keys and values).
    pub attrs: Vec<AttrDef>,
}

impl TableSchema {
    /// Index of an attribute by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// The primary-key attribute name, if the table has one.
    pub fn primary_key(&self) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.kind == AttrKind::PrimaryKey)
            .map(|a| a.name.as_str())
    }

    /// All foreign keys declared by this table.
    pub fn foreign_keys(&self) -> Vec<ForeignKeyDef> {
        self.attrs
            .iter()
            .filter_map(|a| match &a.kind {
                AttrKind::ForeignKey { target } => {
                    Some(ForeignKeyDef { attr: a.name.clone(), target: target.clone() })
                }
                _ => None,
            })
            .collect()
    }

    /// Names of the value (non-key) attributes, in declaration order.
    pub fn value_attrs(&self) -> Vec<&str> {
        self.attrs
            .iter()
            .filter(|a| a.kind == AttrKind::Value)
            .map(|a| a.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema {
            name: "contact".into(),
            attrs: vec![
                AttrDef { name: "contact_id".into(), kind: AttrKind::PrimaryKey },
                AttrDef {
                    name: "patient".into(),
                    kind: AttrKind::ForeignKey { target: "patient".into() },
                },
                AttrDef { name: "contype".into(), kind: AttrKind::Value },
                AttrDef { name: "age".into(), kind: AttrKind::Value },
            ],
        }
    }

    #[test]
    fn attr_index_finds_by_name() {
        let s = schema();
        assert_eq!(s.attr_index("contype"), Some(2));
        assert_eq!(s.attr_index("nope"), None);
    }

    #[test]
    fn primary_key_and_foreign_keys_are_extracted() {
        let s = schema();
        assert_eq!(s.primary_key(), Some("contact_id"));
        let fks = s.foreign_keys();
        assert_eq!(fks.len(), 1);
        assert_eq!(fks[0].attr, "patient");
        assert_eq!(fks[0].target, "patient");
    }

    #[test]
    fn value_attrs_excludes_keys() {
        assert_eq!(schema().value_attrs(), vec!["contype", "age"]);
    }
}
