//! # reldb — a minimal columnar relational engine
//!
//! This crate is the relational substrate for the SIGMOD 2001 reproduction of
//! *Selectivity Estimation using Probabilistic Models* (Getoor, Taskar,
//! Koller). It provides exactly what the paper's estimators need from a DBMS:
//!
//! * dictionary-encoded columnar tables with small categorical/ordinal
//!   domains ([`Table`], [`Domain`], [`Value`]),
//! * schemas with primary keys and foreign keys, and a [`Database`] that
//!   enforces **referential integrity** (every foreign key resolves to
//!   exactly one target row — the standing assumption of the paper),
//! * a select/foreign-key-join query AST ([`Query`], [`Pred`], [`Join`]),
//! * an **exact** executor ([`exec::result_size`]) used to compute
//!   ground-truth result sizes against which estimates are scored,
//! * a group-by/count engine ([`stats`]) producing the *sufficient
//!   statistics* that drive maximum-likelihood CPD estimation, including
//!   counts over foreign-key joined columns.
//!
//! The engine is deliberately small: no transactions, no buffer manager
//! (there *is* a tiny `SELECT COUNT(*)` SQL parser in [`sql`]). Tables are
//! immutable once built, which lets every column be stored as a dense
//! `Vec<u32>` of dictionary codes — the representation all the estimators
//! in the workspace consume directly.
//!
//! ```
//! use reldb::{Cell, DatabaseBuilder, TableBuilder, Value, parse_query, result_size};
//!
//! let mut p = TableBuilder::new("parent").key("id").col("x");
//! p.push_row(vec![Cell::Key(1), Cell::Val(Value::Int(0))])?;
//! p.push_row(vec![Cell::Key(2), Cell::Val(Value::Int(1))])?;
//! let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
//! c.push_row(vec![Cell::Key(10), Cell::Key(1), Cell::Val(Value::Int(7))])?;
//! c.push_row(vec![Cell::Key(11), Cell::Key(1), Cell::Val(Value::Int(8))])?;
//! c.push_row(vec![Cell::Key(12), Cell::Key(2), Cell::Val(Value::Int(7))])?;
//! let db = DatabaseBuilder::new()
//!     .add_table(p.finish()?)
//!     .add_table(c.finish()?)
//!     .finish()?; // referential integrity verified here
//!
//! let q = parse_query(
//!     "SELECT COUNT(*) FROM child c, parent p WHERE c.parent = p AND p.x = 0",
//! )?;
//! assert_eq!(result_size(&db, &q)?, 2);
//! # Ok::<(), reldb::Error>(())
//! ```

pub mod csv;
pub mod database;
pub mod error;
pub mod exec;
pub mod query;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod value;

pub use csv::{load_table, write_table, CsvColumn, CsvSchema};
pub use database::{Database, DatabaseBuilder};
pub use error::{Error, Result};
pub use exec::{result_size, result_size_bruteforce, select_rows};
pub use query::{Join, Pred, Query, QueryBuilder};
pub use schema::{AttrDef, AttrKind, ForeignKeyDef, TableSchema};
pub use sql::{parse_query, to_sql};
pub use stats::{counts_sparse, CountTable, GroupSpec, ResolvedCol};
pub use table::{Cell, Column, Domain, Table, TableBuilder};
pub use value::Value;
