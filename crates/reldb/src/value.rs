//! Scalar values stored in value (non-key) columns.

use std::fmt;

/// A scalar cell value.
///
/// The paper works over small categorical or discretized ordinal domains, so
/// two payload types suffice: integers (ordinal — range predicates apply)
/// and symbols (nominal). Keys are *not* `Value`s; they are `i64` and live in
/// dedicated key columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Ordinal value; range predicates are meaningful.
    Int(i64),
    /// Nominal value; only (in)equality is meaningful.
    Str(String),
}

impl Value {
    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// True if both values have the same payload type.
    pub fn same_type(&self, other: &Value) -> bool {
        matches!(
            (self, other),
            (Value::Int(_), Value::Int(_)) | (Value::Str(_), Value::Str(_))
        )
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from("low").as_str(), Some("low"));
        assert_eq!(Value::from(7).as_str(), None);
        assert_eq!(Value::from("low").as_int(), None);
    }

    #[test]
    fn same_type_distinguishes_payloads() {
        assert!(Value::from(1).same_type(&Value::from(2)));
        assert!(Value::from("a").same_type(&Value::from("b")));
        assert!(!Value::from(1).same_type(&Value::from("b")));
    }

    #[test]
    fn ordering_is_total_within_ints() {
        let mut vals = vec![Value::from(3), Value::from(1), Value::from(2)];
        vals.sort();
        assert_eq!(vals, vec![Value::from(1), Value::from(2), Value::from(3)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::from(42).to_string(), "42");
        assert_eq!(Value::from("yes").to_string(), "yes");
    }
}
