//! Loading tables from delimited text files.
//!
//! The paper's pipeline starts from an existing database; downstream users
//! will usually have CSV extracts. This loader is deliberately small: one
//! header line naming the attributes, a caller-supplied schema mapping
//! each attribute to its role (key / foreign key / value), comma (or
//! custom) delimiters, and no quoting dialect — values containing the
//! delimiter are out of scope. Integer-looking fields in value columns are
//! parsed as ordinal [`Value::Int`]s; everything else becomes a nominal
//! [`Value::Str`].

use std::io::BufRead;
use std::path::Path;

use crate::error::{Error, Result};
use crate::table::{Cell, Table, TableBuilder};
use crate::value::Value;

/// The declared role of one CSV column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvColumn {
    /// Primary key (must parse as `i64`).
    Key,
    /// Foreign key referencing the named table (must parse as `i64`).
    ForeignKey(String),
    /// Ordinal value column: fields must parse as `i64`.
    IntValue,
    /// Nominal value column: fields are kept as strings.
    StrValue,
}

/// Schema declaration for a CSV file: column name → role, in file order.
#[derive(Debug, Clone)]
pub struct CsvSchema {
    /// Name of the table to create.
    pub table: String,
    /// Columns in file order. Header names must match exactly.
    pub columns: Vec<(String, CsvColumn)>,
    /// Field delimiter (default `,`).
    pub delimiter: char,
}

impl CsvSchema {
    /// A schema with the default comma delimiter.
    pub fn new(table: impl Into<String>, columns: Vec<(String, CsvColumn)>) -> Self {
        CsvSchema { table: table.into(), columns, delimiter: ',' }
    }
}

/// Reads a table from a delimited file with a header line.
pub fn load_table(path: impl AsRef<Path>, schema: &CsvSchema) -> Result<Table> {
    let file = std::fs::File::open(path.as_ref()).map_err(|e| {
        Error::Io(format!("cannot open {}: {e}", path.as_ref().display()))
    })?;
    read_table(std::io::BufReader::new(file), schema)
}

/// Reads a table from any buffered reader (exposed for tests and in-memory
/// sources).
pub fn read_table(reader: impl BufRead, schema: &CsvSchema) -> Result<Table> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .transpose()
        .map_err(|e| Error::Io(format!("read error: {e}")))?
        .ok_or_else(|| Error::Parse("empty file: missing header".into()))?;
    let names: Vec<&str> = header.split(schema.delimiter).map(str::trim).collect();
    if names.len() != schema.columns.len() {
        return Err(Error::ArityMismatch {
            table: schema.table.clone(),
            expected: schema.columns.len(),
            got: names.len(),
        });
    }
    for (name, (declared, _)) in names.iter().zip(&schema.columns) {
        if name != declared {
            return Err(Error::UnknownAttr {
                table: schema.table.clone(),
                attr: format!("header `{name}` does not match declared `{declared}`"),
            });
        }
    }
    let mut builder = TableBuilder::new(&schema.table);
    for (name, col) in &schema.columns {
        builder = match col {
            CsvColumn::Key => builder.key(name),
            CsvColumn::ForeignKey(target) => builder.fk(name, target),
            CsvColumn::IntValue | CsvColumn::StrValue => builder.col(name),
        };
    }
    for (line_no, line) in lines.enumerate() {
        failpoint::fail_point!("csv.row")
            .map_err(|e| Error::Internal(format!("{e} (row {})", line_no + 2)))?;
        let line = line.map_err(|e| Error::Io(format!("read error: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(schema.delimiter).map(str::trim).collect();
        if fields.len() != schema.columns.len() {
            return Err(Error::ArityMismatch {
                table: schema.table.clone(),
                expected: schema.columns.len(),
                got: fields.len(),
            });
        }
        let cells: Vec<Cell> = fields
            .iter()
            .zip(&schema.columns)
            .map(|(field, (name, col))| {
                let parse_int = || {
                    field.parse::<i64>().map_err(|_| Error::TypeMismatch {
                        table: schema.table.clone(),
                        attr: format!("{name} (line {})", line_no + 2),
                    })
                };
                Ok(match col {
                    CsvColumn::Key | CsvColumn::ForeignKey(_) => Cell::Key(parse_int()?),
                    CsvColumn::IntValue => Cell::Val(Value::Int(parse_int()?)),
                    CsvColumn::StrValue => Cell::Val(Value::Str((*field).to_owned())),
                })
            })
            .collect::<Result<_>>()?;
        builder.push_row(cells)?;
    }
    builder.finish()
}

/// Writes a table as delimited text (header line + one line per row),
/// the inverse of [`read_table`]. Key and foreign-key columns are written
/// as integers, value columns through their [`Value`] display form.
pub fn write_table(
    table: &Table,
    mut out: impl std::io::Write,
    delimiter: char,
) -> Result<()> {
    let io_err = |e: std::io::Error| Error::Io(format!("write error: {e}"));
    let schema = table.schema();
    let names: Vec<&str> = schema.attrs.iter().map(|a| a.name.as_str()).collect();
    writeln!(out, "{}", names.join(&delimiter.to_string())).map_err(io_err)?;
    for row in 0..table.n_rows() {
        let mut fields = Vec::with_capacity(schema.attrs.len());
        for attr in &schema.attrs {
            let field = match &attr.kind {
                crate::schema::AttrKind::PrimaryKey => {
                    table.key_values().expect("pk exists")[row].to_string()
                }
                crate::schema::AttrKind::ForeignKey { .. } => {
                    table.fk_values(&attr.name)?[row].to_string()
                }
                crate::schema::AttrKind::Value => {
                    table.value_at(&attr.name, row)?.to_string()
                }
            };
            fields.push(field);
        }
        writeln!(out, "{}", fields.join(&delimiter.to_string())).map_err(io_err)?;
    }
    Ok(())
}

/// Derives the [`CsvSchema`] that [`write_table`] output conforms to, so
/// `read_table(write_table(t))` round-trips without hand-written schemas.
/// String-valued columns are declared [`CsvColumn::StrValue`]; integer
/// ones [`CsvColumn::IntValue`].
pub fn schema_of(table: &Table) -> CsvSchema {
    let columns = table
        .schema()
        .attrs
        .iter()
        .map(|a| {
            let col = match &a.kind {
                crate::schema::AttrKind::PrimaryKey => CsvColumn::Key,
                crate::schema::AttrKind::ForeignKey { target } => {
                    CsvColumn::ForeignKey(target.clone())
                }
                crate::schema::AttrKind::Value => {
                    let is_int = table
                        .domain(&a.name)
                        .map(|d| d.values().iter().all(|v| v.as_int().is_some()))
                        .unwrap_or(false);
                    if is_int {
                        CsvColumn::IntValue
                    } else {
                        CsvColumn::StrValue
                    }
                }
            };
            (a.name.clone(), col)
        })
        .collect();
    CsvSchema::new(table.name(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn schema() -> CsvSchema {
        CsvSchema::new(
            "patient",
            vec![
                ("id".into(), CsvColumn::Key),
                ("strain".into(), CsvColumn::ForeignKey("strain".into())),
                ("age".into(), CsvColumn::IntValue),
                ("usborn".into(), CsvColumn::StrValue),
            ],
        )
    }

    #[test]
    fn loads_well_formed_csv() {
        let data = "id,strain,age,usborn\n1,10,35,yes\n2,11,60,no\n\n3,10,35,yes\n";
        let t = read_table(Cursor::new(data), &schema()).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.key_values(), Some(&[1i64, 2, 3][..]));
        assert_eq!(t.fk_values("strain").unwrap(), &[10, 11, 10]);
        assert_eq!(t.domain("age").unwrap().card(), 2);
        assert_eq!(t.value_at("usborn", 1).unwrap(), &Value::from("no"));
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let data = "id,strain,years,usborn\n1,10,35,yes\n";
        assert!(matches!(
            read_table(Cursor::new(data), &schema()),
            Err(Error::UnknownAttr { .. })
        ));
    }

    #[test]
    fn ragged_row_is_rejected() {
        let data = "id,strain,age,usborn\n1,10,35\n";
        assert!(matches!(
            read_table(Cursor::new(data), &schema()),
            Err(Error::ArityMismatch { .. })
        ));
    }

    #[test]
    fn non_integer_key_is_rejected() {
        let data = "id,strain,age,usborn\nxx,10,35,yes\n";
        assert!(matches!(
            read_table(Cursor::new(data), &schema()),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn custom_delimiter() {
        let mut s = schema();
        s.delimiter = ';';
        let data = "id;strain;age;usborn\n1;10;35;yes\n";
        let t = read_table(Cursor::new(data), &s).unwrap();
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn empty_file_is_rejected() {
        assert!(read_table(Cursor::new(""), &schema()).is_err());
    }

    #[test]
    fn write_read_round_trips() {
        let data = "id,strain,age,usborn\n1,10,35,yes\n2,11,60,no\n";
        let t = read_table(Cursor::new(data), &schema()).unwrap();
        let mut buf = Vec::new();
        write_table(&t, &mut buf, ',').unwrap();
        let derived = schema_of(&t);
        let t2 =
            read_table(Cursor::new(String::from_utf8(buf).unwrap()), &derived).unwrap();
        assert_eq!(t2.n_rows(), t.n_rows());
        assert_eq!(t2.key_values(), t.key_values());
        assert_eq!(t2.codes("age").unwrap(), t.codes("age").unwrap());
        assert_eq!(t2.value_at("usborn", 1).unwrap(), t.value_at("usborn", 1).unwrap());
    }

    #[test]
    fn whitespace_is_trimmed() {
        let data = "id, strain, age, usborn\n 1 , 10 , 35 , yes \n";
        let t = read_table(Cursor::new(data), &schema()).unwrap();
        assert_eq!(t.value_at("usborn", 0).unwrap(), &Value::from("yes"));
    }
}
