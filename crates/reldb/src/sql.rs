//! A small SQL-subset parser for counting queries.
//!
//! The estimators answer the paper's query class — conjunctive selections
//! plus foreign-key equijoins — so the parser accepts exactly that:
//!
//! ```sql
//! SELECT COUNT(*)
//! FROM contact c, patient p, strain s
//! WHERE c.patient = p
//!   AND p.strain = s
//!   AND c.contype = 4
//!   AND p.age BETWEEN 2 AND 3
//!   AND s.unique IN ('no', 'yes')
//! ```
//!
//! * `FROM` lists tuple variables as `table alias` (alias optional when a
//!   table appears once; the table name then doubles as the alias).
//! * A join is written `child_alias.fk_attr = parent_alias` (or
//!   `parent_alias.pk_attr`, whose attribute name is checked against the
//!   parent's primary key when a database is supplied for validation).
//! * Selections: `=`, `IN (…)`, `BETWEEN … AND …`, `<`, `<=`, `>`, `>=`
//!   (inequalities desugar to half-open ranges over integers).
//! * Literals: integers or single-quoted strings.
//!
//! Keywords are case-insensitive; identifiers are case-sensitive. The
//! parser builds a [`Query`]; semantic validation (tables exist, joins go
//! through declared foreign keys) stays in [`Query::validate`].

use std::fmt;

use crate::error::{Error, Result};
use crate::query::Query;
use crate::value::Value;

/// Parses `SELECT COUNT(*) FROM … WHERE …` into a [`Query`].
pub fn parse_query(sql: &str) -> Result<Query> {
    Parser::new(sql)?.parse()
}

/// Renders a [`Query`] back to the SQL subset [`parse_query`] accepts —
/// the inverse used for logging, `EXPLAIN` output, and round-trip tests.
/// Tuple variables are named `t0, t1, …`.
pub fn to_sql(query: &Query) -> String {
    use crate::query::Pred;
    use std::fmt::Write;
    let mut out = String::from("SELECT COUNT(*) FROM ");
    let froms: Vec<String> =
        query.vars.iter().enumerate().map(|(i, table)| format!("{table} t{i}")).collect();
    out.push_str(&froms.join(", "));
    let mut conds: Vec<String> = Vec::new();
    for j in &query.joins {
        conds.push(format!("t{}.{} = t{}", j.child, j.fk_attr, j.parent));
    }
    let lit = |v: &Value| match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("'{s}'"),
    };
    for p in &query.preds {
        let var = p.var();
        match p {
            Pred::Eq { attr, value, .. } => {
                conds.push(format!("t{var}.{attr} = {}", lit(value)));
            }
            Pred::In { attr, values, .. } => {
                let vals: Vec<String> = values.iter().map(&lit).collect();
                conds.push(format!("t{var}.{attr} IN ({})", vals.join(", ")));
            }
            Pred::Range { attr, lo, hi, .. } => match (lo, hi) {
                (Some(l), Some(h)) => {
                    conds.push(format!("t{var}.{attr} BETWEEN {l} AND {h}"));
                }
                (Some(l), None) => conds.push(format!("t{var}.{attr} >= {l}")),
                (None, Some(h)) => conds.push(format!("t{var}.{attr} <= {h}")),
                (None, None) => {}
            },
        }
    }
    if !conds.is_empty() {
        let _ = write!(out, " WHERE {}", conds.join(" AND "));
    }
    out
}

// ---------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Star => write!(f, "*"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Eq => write!(f, "="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
        }
    }
}

fn err(msg: impl Into<String>) -> Error {
    Error::Parse(msg.into())
}

fn lex(sql: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(err("unterminated string literal"));
                }
                out.push(Tok::Str(chars[start..j].iter().collect()));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n = text
                    .parse::<i64>()
                    .map_err(|_| err(format!("bad integer literal `{text}`")))?;
                out.push(Tok::Int(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser { toks: lex(sql)?, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| err("unexpected end of query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(err(format!("expected `{want}`, found `{got}`")))
        }
    }

    /// Consumes an identifier and checks it case-insensitively against a
    /// keyword.
    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            got => Err(err(format!("expected `{kw}`, found `{got}`"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            got => Err(err(format!("expected identifier, found `{got}`"))),
        }
    }

    fn parse(&mut self) -> Result<Query> {
        self.keyword("SELECT")?;
        self.keyword("COUNT")?;
        self.expect(&Tok::LParen)?;
        self.expect(&Tok::Star)?;
        self.expect(&Tok::RParen)?;
        self.keyword("FROM")?;

        // FROM list: `table [alias]` separated by commas.
        let mut builder = Query::builder();
        let mut aliases: Vec<(String, usize)> = Vec::new();
        loop {
            let table = self.ident()?;
            // Optional alias (an identifier that is not WHERE/end/comma).
            let alias = match self.peek() {
                Some(Tok::Ident(s)) if !s.eq_ignore_ascii_case("where") => {
                    self.ident()?
                }
                _ => table.clone(),
            };
            if aliases.iter().any(|(a, _)| a == &alias) {
                return Err(err(format!("duplicate alias `{alias}`")));
            }
            let var = builder.var(&table);
            aliases.push((alias, var));
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                _ => break,
            }
        }

        if self.peek().is_some() {
            self.keyword("WHERE")?;
            loop {
                self.condition(&mut builder, &aliases)?;
                if self.peek_keyword("AND") {
                    self.keyword("AND")?;
                } else {
                    break;
                }
            }
        }
        if let Some(t) = self.peek() {
            return Err(err(format!("trailing input at `{t}`")));
        }
        Ok(builder.build())
    }

    fn lookup_var(&self, aliases: &[(String, usize)], alias: &str) -> Result<usize> {
        aliases
            .iter()
            .find(|(a, _)| a == alias)
            .map(|&(_, v)| v)
            .ok_or_else(|| err(format!("unknown alias `{alias}`")))
    }

    /// `alias.attr <op> …`
    fn condition(
        &mut self,
        builder: &mut crate::query::QueryBuilder,
        aliases: &[(String, usize)],
    ) -> Result<()> {
        let alias = self.ident()?;
        self.expect(&Tok::Dot)?;
        let attr = self.ident()?;
        let var = self.lookup_var(aliases, &alias)?;
        match self.next()? {
            Tok::Eq => {
                // Either a join (right side is an alias, optionally
                // `.attr`) or an equality literal.
                match self.next()? {
                    Tok::Int(i) => {
                        builder.eq(var, attr, Value::Int(i));
                    }
                    Tok::Str(s) => {
                        builder.eq(var, attr, Value::Str(s));
                    }
                    Tok::Ident(rhs) => {
                        let parent = self.lookup_var(aliases, &rhs)?;
                        // Optional `.pk_attr` — consumed and ignored here;
                        // `Query::validate` checks the join is a keyjoin.
                        if self.peek() == Some(&Tok::Dot) {
                            self.pos += 1;
                            let _pk = self.ident()?;
                        }
                        builder.join(var, attr, parent);
                    }
                    got => {
                        return Err(err(format!(
                            "expected literal or alias after `=`, found `{got}`"
                        )))
                    }
                }
            }
            Tok::Lt => {
                let n = self.int_literal()?;
                builder.range(var, attr, None, Some(n - 1));
            }
            Tok::Le => {
                let n = self.int_literal()?;
                builder.range(var, attr, None, Some(n));
            }
            Tok::Gt => {
                let n = self.int_literal()?;
                builder.range(var, attr, Some(n + 1), None);
            }
            Tok::Ge => {
                let n = self.int_literal()?;
                builder.range(var, attr, Some(n), None);
            }
            Tok::Ident(kw) if kw.eq_ignore_ascii_case("between") => {
                let lo = self.int_literal()?;
                self.keyword("AND")?;
                let hi = self.int_literal()?;
                builder.range(var, attr, Some(lo), Some(hi));
            }
            Tok::Ident(kw) if kw.eq_ignore_ascii_case("in") => {
                self.expect(&Tok::LParen)?;
                let mut values = Vec::new();
                loop {
                    match self.next()? {
                        Tok::Int(i) => values.push(Value::Int(i)),
                        Tok::Str(s) => values.push(Value::Str(s)),
                        got => {
                            return Err(err(format!(
                                "expected literal in IN list, found `{got}`"
                            )))
                        }
                    }
                    match self.next()? {
                        Tok::Comma => continue,
                        Tok::RParen => break,
                        got => {
                            return Err(err(format!(
                                "expected `,` or `)`, found `{got}`"
                            )))
                        }
                    }
                }
                builder.isin(var, attr, values);
            }
            got => return Err(err(format!("unsupported operator `{got}`"))),
        }
        Ok(())
    }

    fn int_literal(&mut self) -> Result<i64> {
        match self.next()? {
            Tok::Int(i) => Ok(i),
            got => Err(err(format!("expected integer literal, found `{got}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Join, Pred};

    #[test]
    fn parses_the_paper_style_query() {
        let q = parse_query(
            "SELECT COUNT(*) FROM contact c, patient p, strain s \
             WHERE c.patient = p AND p.strain = s \
             AND c.contype = 4 AND p.age BETWEEN 2 AND 3 \
             AND s.unique IN ('no', 'yes')",
        )
        .unwrap();
        assert_eq!(q.vars, vec!["contact", "patient", "strain"]);
        assert_eq!(
            q.joins,
            vec![
                Join { child: 0, fk_attr: "patient".into(), parent: 1 },
                Join { child: 1, fk_attr: "strain".into(), parent: 2 },
            ]
        );
        assert_eq!(q.preds.len(), 3);
        assert!(matches!(&q.preds[1], Pred::Range { lo: Some(2), hi: Some(3), .. }));
        assert!(matches!(&q.preds[2], Pred::In { values, .. } if values.len() == 2));
    }

    #[test]
    fn alias_defaults_to_table_name() {
        let q = parse_query("SELECT COUNT(*) FROM census WHERE census.age = 7").unwrap();
        assert_eq!(q.vars, vec!["census"]);
        assert_eq!(q.preds.len(), 1);
    }

    #[test]
    fn join_right_side_may_name_the_primary_key() {
        let q = parse_query(
            "select count(*) from contact c, patient p where c.patient = p.patient_id",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].child, 0);
        assert_eq!(q.joins[0].parent, 1);
    }

    #[test]
    fn inequalities_desugar_to_ranges() {
        let q = parse_query(
            "SELECT COUNT(*) FROM t WHERE t.a < 5 AND t.b <= 5 AND t.c > 5 AND t.d >= 5",
        )
        .unwrap();
        assert!(matches!(&q.preds[0], Pred::Range { lo: None, hi: Some(4), .. }));
        assert!(matches!(&q.preds[1], Pred::Range { lo: None, hi: Some(5), .. }));
        assert!(matches!(&q.preds[2], Pred::Range { lo: Some(6), hi: None, .. }));
        assert!(matches!(&q.preds[3], Pred::Range { lo: Some(5), hi: None, .. }));
    }

    #[test]
    fn negative_integers_parse() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE t.a = -3").unwrap();
        assert!(matches!(&q.preds[0], Pred::Eq { value: Value::Int(-3), .. }));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        parse_query("select count(*) from t where t.a = 1 and t.b = 2").unwrap();
        parse_query("SeLeCt CoUnT(*) FrOm t").unwrap();
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = parse_query("SELECT COUNT(*) FROM t WHERE t.a != 1").unwrap_err();
        assert!(e.to_string().contains("unexpected character"), "{e}");
        let e = parse_query("SELECT COUNT(*) FROM t WHERE x.a = 1").unwrap_err();
        assert!(e.to_string().contains("unknown alias"), "{e}");
        let e = parse_query("SELECT COUNT(*) FROM t t, u t").unwrap_err();
        assert!(e.to_string().contains("duplicate alias"), "{e}");
        let e = parse_query("SELECT COUNT(*) FROM t WHERE t.a = 'oops").unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
        let e = parse_query("SELECT SUM(*) FROM t").unwrap_err();
        assert!(e.to_string().contains("expected `COUNT`"), "{e}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let e =
            parse_query("SELECT COUNT(*) FROM t WHERE t.a = 1 GROUP BY x").unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
    }

    #[test]
    fn to_sql_round_trips_through_the_parser() {
        let original = parse_query(
            "SELECT COUNT(*) FROM contact c, patient p, strain s \
             WHERE c.patient = p AND p.strain = s \
             AND c.contype = 4 AND p.age BETWEEN 2 AND 3 \
             AND s.unique IN ('no', 'yes') AND c.age >= 1 AND p.hiv <= 1",
        )
        .unwrap();
        let rendered = to_sql(&original);
        let reparsed = parse_query(&rendered).unwrap();
        assert_eq!(original, reparsed, "rendered: {rendered}");
    }

    #[test]
    fn to_sql_of_unconstrained_query_omits_where() {
        let q = parse_query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(to_sql(&q), "SELECT COUNT(*) FROM t t0");
        assert_eq!(parse_query(&to_sql(&q)).unwrap(), q);
    }

    #[test]
    fn parsed_query_round_trips_through_the_executor() {
        use crate::table::{Cell, TableBuilder};
        use crate::{result_size, DatabaseBuilder};
        let mut p = TableBuilder::new("parent").key("id").col("x");
        for i in 0..10i64 {
            p.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 2))]).unwrap();
        }
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        for i in 0..40i64 {
            c.push_row(vec![
                Cell::Key(i),
                Cell::Key(i % 10),
                Cell::Val(Value::Int(i % 4)),
            ])
            .unwrap();
        }
        let db = DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap();
        let q = parse_query(
            "SELECT COUNT(*) FROM child c, parent p \
             WHERE c.parent = p AND p.x = 1 AND c.y IN (0, 1)",
        )
        .unwrap();
        // y ∈ {0,1} and parent odd: children with i%10 odd and i%4 ∈ {0,1}.
        let expect = (0..40).filter(|i| (i % 10) % 2 == 1 && i % 4 <= 1).count() as u64;
        assert_eq!(result_size(&db, &q).unwrap(), expect);
    }
}
