//! Immutable, dictionary-encoded columnar tables.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::schema::{AttrDef, AttrKind, TableSchema};
use crate::value::Value;

/// The (finite, discrete) domain of a value column.
///
/// Codes are assigned in sorted value order, so for integer columns the code
/// ordering matches the value ordering and range predicates translate to
/// contiguous code intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct Domain {
    values: Vec<Value>,
    index: HashMap<Value, u32>,
}

impl Domain {
    /// Builds a domain from a set of distinct values (deduplicated and
    /// sorted internally).
    pub fn new(mut values: Vec<Value>) -> Self {
        values.sort();
        values.dedup();
        let index =
            values.iter().enumerate().map(|(i, v)| (v.clone(), i as u32)).collect();
        Domain { values, index }
    }

    /// Number of distinct values.
    pub fn card(&self) -> usize {
        self.values.len()
    }

    /// The value for a code. Panics if the code is out of range.
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// The code for a value, if it is in the domain.
    pub fn code(&self, value: &Value) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// All values in code order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Codes whose (integer) value lies in the inclusive range
    /// `[lo, hi]`. Unbounded ends are expressed with `None`.
    /// Non-integer values never match.
    pub fn codes_in_range(&self, lo: Option<i64>, hi: Option<i64>) -> Vec<u32> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                v.as_int().is_some_and(|i| {
                    lo.is_none_or(|l| i >= l) && hi.is_none_or(|h| i <= h)
                })
            })
            .map(|(c, _)| c as u32)
            .collect()
    }
}

/// A fully-built column of a table.
#[derive(Debug, Clone)]
pub enum Column {
    /// Primary-key column: unique `i64` values.
    Key(Vec<i64>),
    /// Foreign-key column: raw `i64` key values referencing another table's
    /// primary key (resolved to row indexes by [`crate::Database`]).
    ForeignKey(Vec<i64>),
    /// Value column: dense dictionary codes plus the domain.
    Value {
        /// Per-row dictionary code.
        codes: Vec<u32>,
        /// Code ↔ value mapping.
        domain: Domain,
    },
}

/// An immutable table: schema plus columns.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The column at attribute index `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Dictionary codes of a value column, by attribute name.
    pub fn codes(&self, attr: &str) -> Result<&[u32]> {
        match self.column_by_name(attr)? {
            Column::Value { codes, .. } => Ok(codes),
            _ => Err(Error::WrongAttrKind {
                table: self.schema.name.clone(),
                attr: attr.to_owned(),
                expected: "value",
            }),
        }
    }

    /// Domain of a value column, by attribute name.
    pub fn domain(&self, attr: &str) -> Result<&Domain> {
        match self.column_by_name(attr)? {
            Column::Value { domain, .. } => Ok(domain),
            _ => Err(Error::WrongAttrKind {
                table: self.schema.name.clone(),
                attr: attr.to_owned(),
                expected: "value",
            }),
        }
    }

    /// Raw key values of the primary-key column.
    pub fn key_values(&self) -> Option<&[i64]> {
        let idx =
            self.schema.attrs.iter().position(|a| a.kind == AttrKind::PrimaryKey)?;
        match &self.columns[idx] {
            Column::Key(k) => Some(k),
            _ => None,
        }
    }

    /// Raw foreign-key values of column `attr`.
    pub fn fk_values(&self, attr: &str) -> Result<&[i64]> {
        match self.column_by_name(attr)? {
            Column::ForeignKey(v) => Ok(v),
            _ => Err(Error::WrongAttrKind {
                table: self.schema.name.clone(),
                attr: attr.to_owned(),
                expected: "foreign-key",
            }),
        }
    }

    /// The value of row `row` in value column `attr`.
    pub fn value_at(&self, attr: &str, row: usize) -> Result<&Value> {
        let codes = self.codes(attr)?;
        let domain = self.domain(attr)?;
        Ok(domain.value(codes[row]))
    }

    /// Projects the table onto a subset of its **value** attributes (keys
    /// are dropped), preserving row order. Used to compare estimators in
    /// the paper's Fig. 4 setting, where every method models exactly the
    /// queried attribute subset.
    pub fn project(&self, attrs: &[&str]) -> Result<Table> {
        let mut schema_attrs = Vec::with_capacity(attrs.len());
        let mut columns = Vec::with_capacity(attrs.len());
        for a in attrs {
            let idx = self.schema.attr_index(a).ok_or_else(|| Error::UnknownAttr {
                table: self.schema.name.clone(),
                attr: (*a).to_owned(),
            })?;
            match &self.columns[idx] {
                Column::Value { codes, domain } => {
                    schema_attrs
                        .push(AttrDef { name: (*a).to_owned(), kind: AttrKind::Value });
                    columns.push(Column::Value {
                        codes: codes.clone(),
                        domain: domain.clone(),
                    });
                }
                _ => {
                    return Err(Error::WrongAttrKind {
                        table: self.schema.name.clone(),
                        attr: (*a).to_owned(),
                        expected: "value",
                    })
                }
            }
        }
        Ok(Table {
            schema: TableSchema { name: self.schema.name.clone(), attrs: schema_attrs },
            columns,
            n_rows: self.n_rows,
        })
    }

    fn column_by_name(&self, attr: &str) -> Result<&Column> {
        let idx = self.schema.attr_index(attr).ok_or_else(|| Error::UnknownAttr {
            table: self.schema.name.clone(),
            attr: attr.to_owned(),
        })?;
        Ok(&self.columns[idx])
    }
}

/// Raw per-column accumulation used while building a table.
enum RawColumn {
    Key(Vec<i64>),
    ForeignKey(Vec<i64>),
    Value(Vec<Value>),
}

/// Incrementally builds a [`Table`]; dictionaries are assigned at
/// [`TableBuilder::finish`].
pub struct TableBuilder {
    name: String,
    attrs: Vec<AttrDef>,
    raw: Vec<RawColumn>,
}

/// A single cell passed to [`TableBuilder::push_row`].
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A key or foreign-key value.
    Key(i64),
    /// A value-column payload.
    Val(Value),
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Key(v)
    }
}

impl From<Value> for Cell {
    fn from(v: Value) -> Self {
        Cell::Val(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Val(Value::from(v))
    }
}

impl TableBuilder {
    /// Starts a builder for table `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder { name: name.into(), attrs: Vec::new(), raw: Vec::new() }
    }

    /// Declares the primary-key attribute. At most one per table.
    pub fn key(mut self, name: impl Into<String>) -> Self {
        self.attrs.push(AttrDef { name: name.into(), kind: AttrKind::PrimaryKey });
        self.raw.push(RawColumn::Key(Vec::new()));
        self
    }

    /// Declares a foreign-key attribute referencing `target`'s primary key.
    pub fn fk(mut self, name: impl Into<String>, target: impl Into<String>) -> Self {
        self.attrs.push(AttrDef {
            name: name.into(),
            kind: AttrKind::ForeignKey { target: target.into() },
        });
        self.raw.push(RawColumn::ForeignKey(Vec::new()));
        self
    }

    /// Declares a value attribute.
    pub fn col(mut self, name: impl Into<String>) -> Self {
        self.attrs.push(AttrDef { name: name.into(), kind: AttrKind::Value });
        self.raw.push(RawColumn::Value(Vec::new()));
        self
    }

    /// Appends a row; cells must match the declared attributes in order.
    pub fn push_row<C: Into<Cell>>(&mut self, row: Vec<C>) -> Result<()> {
        if row.len() != self.attrs.len() {
            return Err(Error::ArityMismatch {
                table: self.name.clone(),
                expected: self.attrs.len(),
                got: row.len(),
            });
        }
        for (cell, (attr, raw)) in
            row.into_iter().zip(self.attrs.iter().zip(self.raw.iter_mut()))
        {
            match (cell.into(), raw) {
                (Cell::Key(k), RawColumn::Key(col)) => col.push(k),
                (Cell::Key(k), RawColumn::ForeignKey(col)) => col.push(k),
                (Cell::Val(v), RawColumn::Value(col)) => col.push(v),
                _ => {
                    return Err(Error::TypeMismatch {
                        table: self.name.clone(),
                        attr: attr.name.clone(),
                    })
                }
            }
        }
        Ok(())
    }

    /// Finalizes the table: validates names and key uniqueness, builds value
    /// dictionaries.
    pub fn finish(self) -> Result<Table> {
        let mut seen = std::collections::HashSet::new();
        for a in &self.attrs {
            if !seen.insert(a.name.clone()) {
                return Err(Error::DuplicateName(format!("{}.{}", self.name, a.name)));
            }
        }
        if self.attrs.iter().filter(|a| a.kind == AttrKind::PrimaryKey).count() > 1 {
            return Err(Error::DuplicateName(format!(
                "{}: multiple primary keys",
                self.name
            )));
        }
        let n_rows = self
            .raw
            .first()
            .map(|c| match c {
                RawColumn::Key(v) | RawColumn::ForeignKey(v) => v.len(),
                RawColumn::Value(v) => v.len(),
            })
            .unwrap_or(0);

        let mut columns = Vec::with_capacity(self.raw.len());
        for (attr, raw) in self.attrs.iter().zip(self.raw) {
            match raw {
                RawColumn::Key(keys) => {
                    let mut uniq = std::collections::HashSet::with_capacity(keys.len());
                    for &k in &keys {
                        if !uniq.insert(k) {
                            return Err(Error::DuplicateKey {
                                table: self.name.clone(),
                                key: k,
                            });
                        }
                    }
                    columns.push(Column::Key(keys));
                }
                RawColumn::ForeignKey(keys) => columns.push(Column::ForeignKey(keys)),
                RawColumn::Value(values) => {
                    if let Some(first) = values.first() {
                        if values.iter().any(|v| !v.same_type(first)) {
                            return Err(Error::TypeMismatch {
                                table: self.name.clone(),
                                attr: attr.name.clone(),
                            });
                        }
                    }
                    let domain = Domain::new(values.clone());
                    let codes = values
                        .iter()
                        .map(|v| {
                            domain.code(v).expect("value present in freshly built domain")
                        })
                        .collect();
                    columns.push(Column::Value { codes, domain });
                }
            }
        }
        Ok(Table {
            schema: TableSchema { name: self.name, attrs: self.attrs },
            columns,
            n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut b = TableBuilder::new("people").key("id").col("income").col("age");
        b.push_row(vec![Cell::Key(1), "low".into(), Cell::Val(Value::Int(30))]).unwrap();
        b.push_row(vec![Cell::Key(2), "high".into(), Cell::Val(Value::Int(40))]).unwrap();
        b.push_row(vec![Cell::Key(3), "low".into(), Cell::Val(Value::Int(30))]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builds_dictionary_encoded_columns() {
        let t = people();
        assert_eq!(t.n_rows(), 3);
        let dom = t.domain("income").unwrap();
        assert_eq!(dom.card(), 2);
        // Sorted order: "high" < "low".
        assert_eq!(dom.value(0), &Value::from("high"));
        assert_eq!(t.codes("income").unwrap(), &[1, 0, 1]);
    }

    #[test]
    fn integer_domains_are_code_ordered() {
        let t = people();
        let dom = t.domain("age").unwrap();
        assert_eq!(dom.values(), &[Value::Int(30), Value::Int(40)]);
        assert_eq!(dom.codes_in_range(Some(35), None), vec![1]);
        assert_eq!(dom.codes_in_range(None, None), vec![0, 1]);
        assert_eq!(dom.codes_in_range(Some(50), Some(60)), Vec::<u32>::new());
    }

    #[test]
    fn duplicate_primary_key_rejected() {
        let mut b = TableBuilder::new("t").key("id").col("x");
        b.push_row(vec![Cell::Key(1), "a".into()]).unwrap();
        b.push_row(vec![Cell::Key(1), "b".into()]).unwrap();
        assert!(matches!(b.finish(), Err(Error::DuplicateKey { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = TableBuilder::new("t").key("id").col("x");
        let err = b.push_row(vec![Cell::Key(1)]);
        assert!(matches!(err, Err(Error::ArityMismatch { expected: 2, got: 1, .. })));
    }

    #[test]
    fn mixed_types_rejected() {
        let mut b = TableBuilder::new("t").col("x");
        b.push_row(vec![Cell::Val(Value::Int(1))]).unwrap();
        b.push_row(vec![Cell::Val(Value::from("a"))]).unwrap();
        assert!(matches!(b.finish(), Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn key_column_accessors() {
        let t = people();
        assert_eq!(t.key_values(), Some(&[1i64, 2, 3][..]));
        assert!(t.codes("id").is_err());
        assert!(t.fk_values("income").is_err());
    }

    #[test]
    fn value_at_reads_through_dictionary() {
        let t = people();
        assert_eq!(t.value_at("income", 1).unwrap(), &Value::from("high"));
    }
}
