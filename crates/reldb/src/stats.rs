//! Sufficient statistics: group-by/count over (possibly foreign-key joined)
//! columns.
//!
//! Maximum-likelihood CPD estimation needs counts of the form
//! `N(X = x, Pa = pa)` where `X` is an attribute of a base table and each
//! parent is either another attribute of the same table or an attribute
//! reached through a chain of foreign keys (paper §4.2). Under referential
//! integrity each base row reaches exactly *one* row through any FK chain,
//! so the "join" needed to collect these statistics is a simple pointer
//! chase and the scan is linear in the base table.

use crate::database::Database;
use crate::error::{Error, Result};

/// A column addressed relative to a base table: follow `fk_path` (a chain of
/// foreign-key attribute names, possibly empty), then read value attribute
/// `attr`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResolvedCol {
    /// Foreign-key attributes to traverse, starting at the base table.
    pub fk_path: Vec<String>,
    /// Value attribute in the table reached by the path.
    pub attr: String,
}

impl ResolvedCol {
    /// A column of the base table itself.
    pub fn local(attr: impl Into<String>) -> Self {
        ResolvedCol { fk_path: Vec::new(), attr: attr.into() }
    }

    /// A column one foreign-key hop away.
    pub fn via(fk: impl Into<String>, attr: impl Into<String>) -> Self {
        ResolvedCol { fk_path: vec![fk.into()], attr: attr.into() }
    }
}

/// A group-by/count request over a base table.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Table whose rows are being counted.
    pub base_table: String,
    /// Columns forming the group-by key, in order.
    pub cols: Vec<ResolvedCol>,
}

/// Dense mixed-radix count table: `counts[i]` is the number of base rows
/// whose column codes linearize to `i` (row-major, first column most
/// significant).
#[derive(Debug, Clone, PartialEq)]
pub struct CountTable {
    /// Cardinality of each grouped column.
    pub cards: Vec<usize>,
    /// Dense counts, `len == cards.iter().product()`.
    pub counts: Vec<u64>,
}

impl CountTable {
    /// Linearizes a configuration (one code per column) to an index.
    pub fn index_of(&self, config: &[u32]) -> usize {
        debug_assert_eq!(config.len(), self.cards.len());
        let mut idx = 0usize;
        for (&c, &card) in config.iter().zip(&self.cards) {
            idx = idx * card + c as usize;
        }
        idx
    }

    /// Count of one configuration.
    pub fn count(&self, config: &[u32]) -> u64 {
        self.counts[self.index_of(config)]
    }

    /// Total number of counted rows.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sums out all columns except those in `keep` (indices into `cards`,
    /// strictly increasing). Returns a new table over the kept columns.
    pub fn marginalize(&self, keep: &[usize]) -> CountTable {
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        let kept_cards: Vec<usize> = keep.iter().map(|&k| self.cards[k]).collect();
        let mut out = vec![0u64; kept_cards.iter().product::<usize>().max(1)];
        let mut config = vec![0u32; self.cards.len()];
        for (i, &n) in self.counts.iter().enumerate() {
            if n != 0 {
                self.unindex(i, &mut config);
                let mut idx = 0usize;
                for (&k, &card) in keep.iter().zip(&kept_cards) {
                    idx = idx * card + config[k] as usize;
                }
                out[idx] += n;
            }
        }
        CountTable { cards: kept_cards, counts: out }
    }

    /// Inverse of [`CountTable::index_of`].
    pub fn unindex(&self, mut idx: usize, config: &mut [u32]) {
        for (slot, &card) in config.iter_mut().zip(&self.cards).rev() {
            *slot = (idx % card) as u32;
            idx /= card;
        }
    }

    /// Iterates over non-zero entries as `(config, count)`.
    pub fn nonzero(&self) -> impl Iterator<Item = (Vec<u32>, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &n)| n != 0).map(|(i, &n)| {
            let mut config = vec![0u32; self.cards.len()];
            self.unindex(i, &mut config);
            (config, n)
        })
    }
}

/// Materializes, for each requested column, the per-base-row dictionary
/// codes (length = base table row count). This is the row-level view used
/// by tree-CPD induction; [`counts`] aggregates it for table CPDs.
pub fn materialize_codes(db: &Database, spec: &GroupSpec) -> Result<Vec<Vec<u32>>> {
    let base = db.table(&spec.base_table)?;
    let n = base.n_rows();
    let mut out = Vec::with_capacity(spec.cols.len());
    for col in &spec.cols {
        // Compose the row mapping along the FK chain.
        let mut table_name = spec.base_table.clone();
        let mut mapping: Option<Vec<u32>> = None;
        for fk in &col.fk_path {
            let hop = db.fk_target_rows(&table_name, fk)?;
            mapping = Some(match mapping {
                None => hop.to_vec(),
                Some(m) => m.iter().map(|&r| hop[r as usize]).collect(),
            });
            let fk_def = db
                .foreign_keys_of(&table_name)?
                .into_iter()
                .find(|f| &f.attr == fk)
                .ok_or_else(|| {
                    Error::BadJoin(format!("`{table_name}.{fk}` is not a foreign key"))
                })?;
            table_name = fk_def.target;
        }
        let codes = db.table(&table_name)?.codes(&col.attr)?;
        let column: Vec<u32> = match mapping {
            None => codes.to_vec(),
            Some(m) => m.iter().map(|&r| codes[r as usize]).collect(),
        };
        debug_assert_eq!(column.len(), n);
        out.push(column);
    }
    Ok(out)
}

/// Cardinality of each requested column's domain.
pub fn column_cards(db: &Database, spec: &GroupSpec) -> Result<Vec<usize>> {
    let mut cards = Vec::with_capacity(spec.cols.len());
    for col in &spec.cols {
        let mut table_name = spec.base_table.clone();
        for fk in &col.fk_path {
            let fk_def = db
                .foreign_keys_of(&table_name)?
                .into_iter()
                .find(|f| &f.attr == fk)
                .ok_or_else(|| {
                    Error::BadJoin(format!("`{table_name}.{fk}` is not a foreign key"))
                })?;
            table_name = fk_def.target;
        }
        cards.push(db.table(&table_name)?.domain(&col.attr)?.card());
    }
    Ok(cards)
}

/// Sparse group-by/count for wide column sets whose dense configuration
/// space would not fit in memory: returns only the populated
/// configurations. One linear scan, hash-aggregated; the row range is
/// partitioned across the pool and the thread-local maps are merged, which
/// yields the same map as a serial scan (u64 addition is associative and
/// commutative).
pub fn counts_sparse(
    db: &Database,
    spec: &GroupSpec,
) -> Result<std::collections::HashMap<Vec<u32>, u64>> {
    let columns = materialize_codes(db, spec)?;
    let n = db.table(&spec.base_table)?.n_rows();
    obs::counter!("reldb.groupby.scans").inc();
    obs::counter!("reldb.groupby.rows").add(n as u64);
    let locals = par::chunks(n, |rows| {
        let mut local: std::collections::HashMap<Vec<u32>, u64> =
            std::collections::HashMap::new();
        let mut config = vec![0u32; columns.len()];
        for row in rows {
            for (slot, col) in config.iter_mut().zip(&columns) {
                *slot = col[row];
            }
            // Look up before cloning so only new configurations allocate.
            match local.get_mut(config.as_slice()) {
                Some(c) => *c += 1,
                None => {
                    local.insert(config.clone(), 1);
                }
            }
        }
        local
    });
    let mut locals = locals.into_iter();
    let mut out = locals.next().unwrap_or_default();
    for local in locals {
        for (config, c) in local {
            *out.entry(config).or_insert(0) += c;
        }
    }
    Ok(out)
}

/// Runs the group-by/count: one linear scan over the base table. The row
/// range is split into one contiguous chunk per pool worker; each worker
/// aggregates into a thread-local dense table and the tables are summed
/// elementwise, so the result is bit-identical to a serial scan.
pub fn counts(db: &Database, spec: &GroupSpec) -> Result<CountTable> {
    let cards = column_cards(db, spec)?;
    let columns = materialize_codes(db, spec)?;
    let size: usize = cards.iter().product::<usize>().max(1);
    let n = db.table(&spec.base_table)?.n_rows();
    obs::counter!("reldb.groupby.scans").inc();
    obs::counter!("reldb.groupby.rows").add(n as u64);
    let cards_ref = &cards;
    let locals = par::chunks(n, |rows| {
        let mut local = vec![0u64; size];
        let mut config = vec![0u32; columns.len()];
        for row in rows {
            for (slot, col) in config.iter_mut().zip(&columns) {
                *slot = col[row];
            }
            let mut idx = 0usize;
            for (&c, &card) in config.iter().zip(cards_ref) {
                idx = idx * card + c as usize;
            }
            local[idx] += 1;
        }
        local
    });
    let mut counts = vec![0u64; size];
    for local in locals {
        for (dst, src) in counts.iter_mut().zip(local) {
            *dst += src;
        }
    }
    Ok(CountTable { cards, counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::table::{Cell, TableBuilder};

    fn db() -> Database {
        let mut p = TableBuilder::new("patient").key("id").col("age");
        for (id, age) in [(1, "young"), (2, "old"), (3, "old")] {
            p.push_row(vec![Cell::Key(id), age.into()]).unwrap();
        }
        let mut c =
            TableBuilder::new("contact").key("id").fk("patient", "patient").col("type");
        for (id, pt, ty) in
            [(1, 1, "home"), (2, 2, "work"), (3, 2, "home"), (4, 3, "work")]
        {
            c.push_row(vec![Cell::Key(id), Cell::Key(pt), ty.into()]).unwrap();
        }
        DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap()
    }

    #[test]
    fn local_counts_match_frequencies() {
        let db = db();
        let spec = GroupSpec {
            base_table: "patient".into(),
            cols: vec![ResolvedCol::local("age")],
        };
        let t = counts(&db, &spec).unwrap();
        // Codes: "old" = 0, "young" = 1 (sorted).
        assert_eq!(t.counts, vec![2, 1]);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn cross_table_counts_follow_fk() {
        let db = db();
        let spec = GroupSpec {
            base_table: "contact".into(),
            cols: vec![ResolvedCol::local("type"), ResolvedCol::via("patient", "age")],
        };
        let t = counts(&db, &spec).unwrap();
        // type: home=0, work=1; age: old=0, young=1.
        assert_eq!(t.count(&[0, 0]), 1); // contact 3
        assert_eq!(t.count(&[0, 1]), 1); // contact 1
        assert_eq!(t.count(&[1, 0]), 2); // contacts 2, 4
        assert_eq!(t.count(&[1, 1]), 0);
    }

    #[test]
    fn marginalize_sums_out_columns() {
        let db = db();
        let spec = GroupSpec {
            base_table: "contact".into(),
            cols: vec![ResolvedCol::local("type"), ResolvedCol::via("patient", "age")],
        };
        let t = counts(&db, &spec).unwrap();
        let m = t.marginalize(&[0]);
        assert_eq!(m.counts, vec![2, 2]);
        let m2 = t.marginalize(&[1]);
        assert_eq!(m2.counts, vec![3, 1]);
        let all = t.marginalize(&[]);
        assert_eq!(all.counts, vec![4]);
    }

    #[test]
    fn index_round_trips() {
        let t = CountTable { cards: vec![3, 2, 4], counts: vec![0; 24] };
        let mut config = vec![0u32; 3];
        for idx in 0..24 {
            t.unindex(idx, &mut config);
            assert_eq!(t.index_of(&config), idx);
        }
    }

    #[test]
    fn materialized_codes_align_with_base_rows() {
        let db = db();
        let spec = GroupSpec {
            base_table: "contact".into(),
            cols: vec![ResolvedCol::via("patient", "age")],
        };
        let cols = materialize_codes(&db, &spec).unwrap();
        // Contacts 1..4 → patients 1,2,2,3 → ages young, old, old, old.
        assert_eq!(cols[0], vec![1, 0, 0, 0]);
    }

    #[test]
    fn sparse_counts_agree_with_dense() {
        let db = db();
        let spec = GroupSpec {
            base_table: "contact".into(),
            cols: vec![ResolvedCol::local("type"), ResolvedCol::via("patient", "age")],
        };
        let dense = counts(&db, &spec).unwrap();
        let sparse = counts_sparse(&db, &spec).unwrap();
        assert_eq!(sparse.values().sum::<u64>(), dense.total());
        for (config, n) in dense.nonzero() {
            assert_eq!(sparse.get(&config), Some(&n), "config {config:?}");
        }
        assert_eq!(sparse.len(), dense.nonzero().count());
    }

    /// A database large enough that every thread count actually splits the
    /// scan: 60 patients, 600 contacts with skewed codes.
    fn big_db() -> Database {
        let ages = ["young", "mid", "old"];
        let types = ["home", "work", "school", "bus"];
        let mut p = TableBuilder::new("patient").key("id").col("age");
        for id in 0..60i64 {
            p.push_row(vec![Cell::Key(id), ages[(id * id % 3) as usize].into()]).unwrap();
        }
        let mut c =
            TableBuilder::new("contact").key("id").fk("patient", "patient").col("type");
        for id in 0..600i64 {
            c.push_row(vec![
                Cell::Key(id),
                Cell::Key(id * 7 % 60),
                types[(id % 4) as usize].into(),
            ])
            .unwrap();
        }
        DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap()
    }

    /// Serializes tests that flip the process-wide thread override.
    fn thread_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parallel_counts_are_bit_identical_to_serial() {
        let _guard = thread_lock();
        let db = big_db();
        let spec = GroupSpec {
            base_table: "contact".into(),
            cols: vec![ResolvedCol::local("type"), ResolvedCol::via("patient", "age")],
        };
        par::set_threads(Some(1));
        let serial = counts(&db, &spec).unwrap();
        for t in [2, 3, 8, 64] {
            par::set_threads(Some(t));
            assert_eq!(counts(&db, &spec).unwrap(), serial, "threads={t}");
        }
        par::set_threads(None);
        assert_eq!(serial.total(), 600);
    }

    #[test]
    fn parallel_sparse_counts_are_identical_to_serial() {
        let _guard = thread_lock();
        let db = big_db();
        let spec = GroupSpec {
            base_table: "contact".into(),
            cols: vec![ResolvedCol::local("type"), ResolvedCol::via("patient", "age")],
        };
        par::set_threads(Some(1));
        let serial = counts_sparse(&db, &spec).unwrap();
        for t in [2, 5, 16] {
            par::set_threads(Some(t));
            assert_eq!(counts_sparse(&db, &spec).unwrap(), serial, "threads={t}");
        }
        par::set_threads(None);
        assert_eq!(serial.values().sum::<u64>(), 600);
    }

    #[test]
    fn nonzero_iterates_only_populated_cells() {
        let db = db();
        let spec = GroupSpec {
            base_table: "contact".into(),
            cols: vec![ResolvedCol::local("type"), ResolvedCol::via("patient", "age")],
        };
        let t = counts(&db, &spec).unwrap();
        let nz: Vec<_> = t.nonzero().collect();
        assert_eq!(nz.len(), 3);
        assert!(nz.iter().all(|(_, n)| *n > 0));
    }
}
