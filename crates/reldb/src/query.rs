//! Select/foreign-key-join query AST.
//!
//! A query is a conjunction over a set of *tuple variables*, each ranging
//! over a table: equality/membership/range predicates on value attributes,
//! plus *keyjoins* of the form `child.fk = parent.pk` (the only join class
//! the paper's estimators are specified for; see §3 of the paper).

use crate::database::Database;
use crate::error::{Error, Result};
use crate::value::Value;

/// A selection predicate on one tuple variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `var.attr = value`
    Eq {
        /// Tuple-variable index.
        var: usize,
        /// Value attribute name.
        attr: String,
        /// Constant to compare against.
        value: Value,
    },
    /// `var.attr ∈ values`
    In {
        /// Tuple-variable index.
        var: usize,
        /// Value attribute name.
        attr: String,
        /// Allowed constants.
        values: Vec<Value>,
    },
    /// `lo ≤ var.attr ≤ hi` (inclusive; `None` = unbounded). Only integer
    /// domain values can match.
    Range {
        /// Tuple-variable index.
        var: usize,
        /// Value attribute name.
        attr: String,
        /// Lower bound.
        lo: Option<i64>,
        /// Upper bound.
        hi: Option<i64>,
    },
}

impl Pred {
    /// The tuple variable this predicate constrains.
    pub fn var(&self) -> usize {
        match self {
            Pred::Eq { var, .. } | Pred::In { var, .. } | Pred::Range { var, .. } => *var,
        }
    }

    /// The attribute this predicate constrains.
    pub fn attr(&self) -> &str {
        match self {
            Pred::Eq { attr, .. } | Pred::In { attr, .. } | Pred::Range { attr, .. } => {
                attr
            }
        }
    }

    /// Resolves the predicate to the set of matching dictionary codes in
    /// `table.attr`'s domain. An empty vector means the predicate is
    /// unsatisfiable against this database.
    pub fn matching_codes(&self, db: &Database, table: &str) -> Result<Vec<u32>> {
        let domain = db.table(table)?.domain(self.attr())?;
        Ok(match self {
            Pred::Eq { value, .. } => domain.code(value).into_iter().collect(),
            Pred::In { values, .. } => {
                let mut codes: Vec<u32> =
                    values.iter().filter_map(|v| domain.code(v)).collect();
                codes.sort_unstable();
                codes.dedup();
                codes
            }
            Pred::Range { lo, hi, .. } => domain.codes_in_range(*lo, *hi),
        })
    }

    /// Writes the predicate's allowed-code mask into `mask` (one slot per
    /// domain code) without allocating: `mask[c]` is true iff code `c`
    /// satisfies the predicate. Exactly the set [`Pred::matching_codes`]
    /// returns, in mask form — the warm estimate path decodes constants
    /// through this instead of building a code vector per query.
    pub fn fill_mask(&self, domain: &crate::table::Domain, mask: &mut [bool]) {
        debug_assert_eq!(mask.len(), domain.card(), "mask length must be domain card");
        mask.fill(false);
        match self {
            Pred::Eq { value, .. } => {
                if let Some(c) = domain.code(value) {
                    mask[c as usize] = true;
                }
            }
            Pred::In { values, .. } => {
                for v in values {
                    if let Some(c) = domain.code(v) {
                        mask[c as usize] = true;
                    }
                }
            }
            Pred::Range { lo, hi, .. } => {
                for (c, v) in domain.values().iter().enumerate() {
                    let hit = v.as_int().is_some_and(|i| {
                        lo.is_none_or(|l| i >= l) && hi.is_none_or(|h| i <= h)
                    });
                    if hit {
                        mask[c] = true;
                    }
                }
            }
        }
    }
}

/// A keyjoin clause: `vars[child].fk_attr = vars[parent].primary_key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Join {
    /// Tuple variable on the foreign-key side.
    pub child: usize,
    /// Foreign-key attribute name in the child's table.
    pub fk_attr: String,
    /// Tuple variable on the primary-key side.
    pub parent: usize,
}

/// A select/keyjoin query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// Table name each tuple variable ranges over.
    pub vars: Vec<String>,
    /// Keyjoin clauses.
    pub joins: Vec<Join>,
    /// Selection predicates.
    pub preds: Vec<Pred>,
}

impl Query {
    /// Starts a fluent builder.
    pub fn builder() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Validates the query against a database: tables exist, predicates
    /// reference value attributes, joins go through declared foreign keys to
    /// a variable over the right table, and no FK of a variable is joined
    /// twice.
    pub fn validate(&self, db: &Database) -> Result<()> {
        for t in &self.vars {
            db.table(t)?;
        }
        for p in &self.preds {
            let table = self.vars.get(p.var()).ok_or(Error::UnknownVar(p.var()))?;
            db.table(table)?.domain(p.attr())?;
        }
        let mut seen = std::collections::HashSet::new();
        for j in &self.joins {
            let child_table = self.vars.get(j.child).ok_or(Error::UnknownVar(j.child))?;
            let parent_table =
                self.vars.get(j.parent).ok_or(Error::UnknownVar(j.parent))?;
            let fk = db
                .foreign_keys_of(child_table)?
                .into_iter()
                .find(|f| f.attr == j.fk_attr)
                .ok_or_else(|| {
                    Error::BadJoin(format!(
                        "`{child_table}.{}` is not a foreign key",
                        j.fk_attr
                    ))
                })?;
            if &fk.target != parent_table {
                return Err(Error::BadJoin(format!(
                    "`{child_table}.{}` references `{}`, not `{parent_table}`",
                    j.fk_attr, fk.target
                )));
            }
            if !seen.insert((j.child, j.fk_attr.clone())) {
                return Err(Error::BadJoin(format!(
                    "foreign key `{}` of variable #{} joined twice",
                    j.fk_attr, j.child
                )));
            }
        }
        Ok(())
    }

    /// True if the query involves a single tuple variable and no joins.
    pub fn is_single_table(&self) -> bool {
        self.vars.len() == 1 && self.joins.is_empty()
    }
}

/// Fluent construction of [`Query`] values.
#[derive(Default, Debug, Clone)]
pub struct QueryBuilder {
    query: Query,
}

impl QueryBuilder {
    /// Adds a tuple variable over `table`; returns its index.
    pub fn var(&mut self, table: impl Into<String>) -> usize {
        self.query.vars.push(table.into());
        self.query.vars.len() - 1
    }

    /// Adds an equality predicate `var.attr = value`.
    pub fn eq(
        &mut self,
        var: usize,
        attr: impl Into<String>,
        value: impl Into<Value>,
    ) -> &mut Self {
        self.query.preds.push(Pred::Eq { var, attr: attr.into(), value: value.into() });
        self
    }

    /// Adds a membership predicate `var.attr ∈ values`.
    pub fn isin(
        &mut self,
        var: usize,
        attr: impl Into<String>,
        values: Vec<Value>,
    ) -> &mut Self {
        self.query.preds.push(Pred::In { var, attr: attr.into(), values });
        self
    }

    /// Adds a range predicate `lo ≤ var.attr ≤ hi`.
    pub fn range(
        &mut self,
        var: usize,
        attr: impl Into<String>,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> &mut Self {
        self.query.preds.push(Pred::Range { var, attr: attr.into(), lo, hi });
        self
    }

    /// Adds a keyjoin `child.fk_attr = parent.pk`.
    pub fn join(
        &mut self,
        child: usize,
        fk_attr: impl Into<String>,
        parent: usize,
    ) -> &mut Self {
        self.query.joins.push(Join { child, fk_attr: fk_attr.into(), parent });
        self
    }

    /// Finishes building.
    pub fn build(&self) -> Query {
        self.query.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::table::{Cell, TableBuilder};

    fn db() -> Database {
        let mut p = TableBuilder::new("parent").key("id").col("x");
        p.push_row(vec![Cell::Key(1), "a".into()]).unwrap();
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        c.push_row(vec![Cell::Key(1), Cell::Key(1), "p".into()]).unwrap();
        DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_ast() {
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.eq(p, "x", "a").join(c, "parent", p);
        let q = b.build();
        assert_eq!(q.vars, vec!["child", "parent"]);
        assert_eq!(q.joins.len(), 1);
        assert!(!q.is_single_table());
        q.validate(&db()).unwrap();
    }

    #[test]
    fn validate_rejects_join_through_value_column() {
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "y", p);
        assert!(matches!(b.build().validate(&db()), Err(Error::BadJoin(_))));
    }

    #[test]
    fn validate_rejects_join_to_wrong_table() {
        let mut b = Query::builder();
        let c = b.var("child");
        let other = b.var("child");
        b.join(c, "parent", other);
        assert!(matches!(b.build().validate(&db()), Err(Error::BadJoin(_))));
    }

    #[test]
    fn validate_rejects_double_join_of_same_fk() {
        let mut b = Query::builder();
        let c = b.var("child");
        let p1 = b.var("parent");
        let p2 = b.var("parent");
        b.join(c, "parent", p1).join(c, "parent", p2);
        assert!(matches!(b.build().validate(&db()), Err(Error::BadJoin(_))));
    }

    #[test]
    fn validate_rejects_predicate_on_key() {
        let mut b = Query::builder();
        let p = b.var("parent");
        b.eq(p, "id", 1);
        assert!(b.build().validate(&db()).is_err());
    }

    #[test]
    fn matching_codes_for_each_predicate_kind() {
        let d = db();
        let eq = Pred::Eq { var: 0, attr: "x".into(), value: "a".into() };
        assert_eq!(eq.matching_codes(&d, "parent").unwrap(), vec![0]);
        let missing = Pred::Eq { var: 0, attr: "x".into(), value: "zz".into() };
        assert!(missing.matching_codes(&d, "parent").unwrap().is_empty());
        let isin = Pred::In {
            var: 0,
            attr: "x".into(),
            values: vec!["a".into(), "a".into(), "zz".into()],
        };
        assert_eq!(isin.matching_codes(&d, "parent").unwrap(), vec![0]);
    }

    #[test]
    fn fill_mask_agrees_with_matching_codes() {
        let d = db();
        let preds = [
            Pred::Eq { var: 0, attr: "x".into(), value: "a".into() },
            Pred::Eq { var: 0, attr: "x".into(), value: "zz".into() },
            Pred::In {
                var: 0,
                attr: "x".into(),
                values: vec!["a".into(), "a".into(), "zz".into()],
            },
            Pred::Range { var: 0, attr: "x".into(), lo: None, hi: None },
        ];
        let domain = d.table("parent").unwrap().domain("x").unwrap();
        let mut mask = vec![true; domain.card()];
        for p in &preds {
            p.fill_mask(domain, &mut mask);
            let from_mask: Vec<u32> = mask
                .iter()
                .enumerate()
                .filter(|(_, &ok)| ok)
                .map(|(c, _)| c as u32)
                .collect();
            assert_eq!(from_mask, p.matching_codes(&d, "parent").unwrap(), "{p:?}");
        }
    }
}
