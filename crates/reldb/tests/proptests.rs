//! Property-based tests: the linear-time join-tree executor must agree
//! with brute-force nested-loop evaluation on arbitrary databases and
//! queries, and the core encodings must round-trip.

use proptest::prelude::*;
use reldb::{
    result_size, result_size_bruteforce, Cell, Database, DatabaseBuilder, Domain, Query,
    TableBuilder, Value,
};

/// A random two-table database: parent(x), child(fk → parent, y).
fn arb_db() -> impl Strategy<Value = Database> {
    (
        1usize..8,                                 // parent rows
        proptest::collection::vec(0u32..4, 1..40), // child rows: fk choice seeds
        proptest::collection::vec(0u32..3, 1..40), // child y codes
        proptest::collection::vec(0u32..3, 1..8),  // parent x codes
    )
        .prop_map(|(n_parent, fk_seeds, ys, xs)| {
            let mut p = TableBuilder::new("parent").key("id").col("x");
            for i in 0..n_parent {
                let x = xs[i % xs.len()];
                p.push_row(vec![Cell::Key(i as i64), Cell::Val(Value::Int(x as i64))])
                    .unwrap();
            }
            let n_child = fk_seeds.len().min(ys.len());
            let mut c =
                TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
            for i in 0..n_child {
                let target = (fk_seeds[i] as usize) % n_parent;
                c.push_row(vec![
                    Cell::Key(i as i64),
                    Cell::Key(target as i64),
                    Cell::Val(Value::Int(ys[i] as i64)),
                ])
                .unwrap();
            }
            DatabaseBuilder::new()
                .add_table(p.finish().unwrap())
                .add_table(c.finish().unwrap())
                .finish()
                .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn executor_matches_bruteforce_on_join_queries(
        db in arb_db(),
        x in 0i64..3,
        y in 0i64..3,
    ) {
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p).eq(p, "x", x).eq(c, "y", y);
        let q = b.build();
        prop_assert_eq!(
            result_size(&db, &q).unwrap(),
            result_size_bruteforce(&db, &q).unwrap()
        );
    }

    #[test]
    fn executor_matches_bruteforce_on_star_queries(
        db in arb_db(),
        y1 in 0i64..3,
        y2 in 0i64..3,
    ) {
        // Two child variables sharing one parent variable.
        let mut b = Query::builder();
        let c1 = b.var("child");
        let c2 = b.var("child");
        let p = b.var("parent");
        b.join(c1, "parent", p).join(c2, "parent", p).eq(c1, "y", y1).eq(c2, "y", y2);
        let q = b.build();
        prop_assert_eq!(
            result_size(&db, &q).unwrap(),
            result_size_bruteforce(&db, &q).unwrap()
        );
    }

    #[test]
    fn executor_matches_bruteforce_on_cross_products(
        db in arb_db(),
        x in 0i64..3,
    ) {
        let mut b = Query::builder();
        let p1 = b.var("parent");
        let _p2 = b.var("parent");
        b.eq(p1, "x", x);
        let q = b.build();
        prop_assert_eq!(
            result_size(&db, &q).unwrap(),
            result_size_bruteforce(&db, &q).unwrap()
        );
    }

    #[test]
    fn range_equals_explicit_in_set(db in arb_db(), lo in 0i64..3, width in 0i64..3) {
        let hi = lo + width;
        let mut b1 = Query::builder();
        let c1 = b1.var("child");
        b1.range(c1, "y", Some(lo), Some(hi));
        let mut b2 = Query::builder();
        let c2 = b2.var("child");
        b2.isin(c2, "y", (lo..=hi).map(Value::Int).collect());
        prop_assert_eq!(
            result_size(&db, &b1.build()).unwrap(),
            result_size(&db, &b2.build()).unwrap()
        );
    }

    #[test]
    fn domain_round_trips(values in proptest::collection::vec(-50i64..50, 1..30)) {
        let domain = Domain::new(values.iter().copied().map(Value::Int).collect());
        for code in 0..domain.card() as u32 {
            let v = domain.value(code).clone();
            prop_assert_eq!(domain.code(&v), Some(code));
        }
        // Codes are sorted by value for integers.
        for w in 0..domain.card().saturating_sub(1) as u32 {
            prop_assert!(domain.value(w) < domain.value(w + 1));
        }
    }

    #[test]
    fn unconstrained_join_equals_child_count(db in arb_db()) {
        // Referential integrity: |child ⋈ parent| == |child|.
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p);
        let n_child = db.table("child").unwrap().n_rows() as u64;
        prop_assert_eq!(result_size(&db, &b.build()).unwrap(), n_child);
    }

    #[test]
    fn sql_rendering_round_trips_random_queries(
        db in arb_db(),
        x in 0i64..3,
        lo in 0i64..3,
        width in 0i64..2,
    ) {
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p)
            .eq(p, "x", x)
            .range(c, "y", Some(lo), Some(lo + width))
            .isin(c, "y", vec![Value::Int(0), Value::Int(2)]);
        let q = b.build();
        let rendered = reldb::to_sql(&q);
        let reparsed = reldb::parse_query(&rendered).unwrap();
        prop_assert_eq!(&q, &reparsed, "rendered: {}", rendered);
        // And both evaluate identically.
        prop_assert_eq!(
            result_size(&db, &q).unwrap(),
            result_size(&db, &reparsed).unwrap()
        );
    }

    #[test]
    fn groupby_counts_sum_to_rows(db in arb_db()) {
        let spec = reldb::GroupSpec {
            base_table: "child".into(),
            cols: vec![
                reldb::ResolvedCol::local("y"),
                reldb::ResolvedCol::via("parent", "x"),
            ],
        };
        let counts = reldb::stats::counts(&db, &spec).unwrap();
        prop_assert_eq!(counts.total(), db.table("child").unwrap().n_rows() as u64);
        // Marginalizing preserves totals.
        prop_assert_eq!(counts.marginalize(&[0]).total(), counts.total());
        prop_assert_eq!(counts.marginalize(&[]).total(), counts.total());
    }
}
