//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace ships the small slice of the `rand` 0.8 API it
//! actually uses: [`rngs::StdRng`] (here xoshiro256++ seeded through
//! SplitMix64), [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom`]. Streams are
//! deterministic per seed, which is all the tests and synthetic workload
//! generators rely on — no code in the repo depends on bit-compatibility
//! with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values samplable from uniform bits (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods over any bit source.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic stream).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with its state
    /// expanded from the seed by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
