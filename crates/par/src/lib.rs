//! # prmsel-par — persistent-pool data-parallelism for the workspace
//!
//! A dependency-free fork/join layer over a process-wide pool of parked
//! worker threads. The workspace builds offline with stand-in crates, so
//! rayon is not an option; this crate provides the small subset the
//! estimation stack actually needs:
//!
//! * [`map`] — apply a function to every element of a slice, in parallel,
//!   returning results **in input order**;
//! * [`chunks`] — split an index range `0..n` into one contiguous chunk
//!   per worker and collect the per-chunk results **in chunk order**
//!   (the building block for partitioned scans with thread-local
//!   accumulators merged by the caller);
//! * [`chunks_with`] — same, with an explicit worker count.
//!
//! ## The pool
//!
//! Workers are spawned once, on first use, and then park on a condvar
//! waiting for jobs — a parallel region costs one enqueue + wakeup
//! (~µs) instead of `t` thread spawns (~100 µs), which is what made
//! small `estimate_batch` calls scale flat. The caller always executes
//! chunk 0 itself and then *helps* drain the queue while waiting for its
//! remaining chunks, so nested parallel regions make progress even when
//! every pool worker is busy (no deadlock by construction) and a region
//! never blocks on a parked thread being available. Worker panics are
//! caught, carried back, and re-raised on the calling thread.
//!
//! ## Degree of parallelism
//!
//! [`threads`] resolves the worker count: a process-wide programmatic
//! override ([`set_threads`], used by benches and determinism tests)
//! wins over the `PRMSEL_THREADS` environment variable, which wins over
//! [`std::thread::available_parallelism`]. With one worker every entry
//! point runs inline on the caller's thread — no dispatch, same code
//! path, so `PRMSEL_THREADS=1` behaves exactly like the pre-parallel
//! code.
//!
//! ## Determinism
//!
//! Work is split by *position*, never by completion order: chunk
//! boundaries depend only on `(n, threads)` and results are joined in
//! chunk order. Callers that fold per-chunk partials therefore see the
//! same sequence of partials for a given thread count, and callers whose
//! merge is order-insensitive (integer count merges, stable best-move
//! scans) produce bit-identical output for *every* thread count.
//!
//! ## Telemetry
//!
//! Every parallel region records into the process-global [`obs`]
//! registry: `par.pool.tasks` (counter, tasks dispatched),
//! `par.pool.threads` (gauge, workers used by the most recent region),
//! `par.task.ns` (histogram, per-task wall clock) and
//! `par.pool.dispatch.ns` (histogram, enqueue→dequeue latency per job —
//! the cost the persistent pool exists to keep small).

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// `0` = no override; anything else is the forced worker count.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker count process-wide (`None` restores the
/// `PRMSEL_THREADS` / `available_parallelism` resolution). Intended for
/// benches and determinism tests; parallel regions already in flight are
/// unaffected.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count parallel regions will use: [`set_threads`] override,
/// else `PRMSEL_THREADS` (a positive integer), else
/// [`std::thread::available_parallelism`].
pub fn threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    std::env::var("PRMSEL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// A unit of work queued to the pool. The closure owns its own panic
/// handling and completion signalling; `enqueued` feeds the
/// `par.pool.dispatch.ns` histogram when the job is dequeued.
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    enqueued: Instant,
}

/// State shared between the callers and the parked workers.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
}

impl PoolShared {
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
    }
}

/// The process-wide pool, spawned on first parallel region. One worker
/// fewer than the hardware thread count (the caller always runs a chunk
/// itself), and at least one so single-core machines still drain queues.
fn pool() -> &'static Arc<PoolShared> {
    static POOL: OnceLock<Arc<PoolShared>> = OnceLock::new();
    POOL.get_or_init(|| {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        });
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        for i in 0..hw.saturating_sub(1).max(1) {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("prmsel-par-{i}"))
                .spawn(move || worker_loop(&s))
                .expect("spawn pool worker");
        }
        shared
    })
}

/// Park on the condvar; run jobs as they arrive. Workers live for the
/// whole process — job closures catch their own panics, so the loop
/// never unwinds.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = shared.work_ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_job(job);
    }
}

fn run_job(job: Job) {
    obs::histogram!("par.pool.dispatch.ns").record_duration(job.enqueued.elapsed());
    (job.run)();
}

/// Completion latch for one parallel region: counts outstanding pool
/// jobs and carries the first worker panic back to the caller.
struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(n),
            mutex: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn arrive(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.mutex.lock().unwrap_or_else(PoisonError::into_inner);
            self.done_cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Blocks until every job arrived — but *helps* by running queued
    /// jobs (from any region) instead of sleeping while work is
    /// available. This is what makes nested parallel regions
    /// deadlock-free: a caller whose jobs are stuck behind busy workers
    /// simply executes them itself.
    fn wait_helping(&self, shared: &PoolShared) {
        while !self.is_done() {
            match shared.try_pop() {
                Some(job) => run_job(job),
                None => {
                    let g = self.mutex.lock().unwrap_or_else(PoisonError::into_inner);
                    if self.is_done() {
                        return;
                    }
                    // Timeout keeps the help loop live if a job is queued
                    // between the try_pop miss and the wait.
                    let _ = self
                        .done_cv
                        .wait_timeout(g, Duration::from_millis(1))
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

/// A `*mut` that may cross threads; used for disjoint-index result slots
/// whose writes are ordered by the latch.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// Splits `0..n` into `threads` contiguous chunks (sizes differing by at
/// most one), runs `f` on each chunk — chunk 0 on the calling thread,
/// the rest on the persistent pool — and returns the per-chunk results
/// in chunk order. With one worker (or one element) `f` runs inline on
/// the caller's thread. `n == 0` returns an empty vector without calling
/// `f`.
pub fn chunks_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let t = threads.max(1).min(n);
    obs::gauge!("par.pool.threads").set(t as f64);
    obs::counter!("par.pool.tasks").add(t as u64);
    if t == 1 {
        let start = Instant::now();
        let out = f(0..n);
        obs::histogram!("par.task.ns").record_duration(start.elapsed());
        return vec![out];
    }
    // Balanced partition: the first `n % t` chunks get one extra element.
    let base = n / t;
    let extra = n % t;
    let mut ranges = Vec::with_capacity(t);
    let mut lo = 0usize;
    for i in 0..t {
        let hi = lo + base + usize::from(i < extra);
        ranges.push(lo..hi);
        lo = hi;
    }

    let shared = pool();
    let latch = Latch::new(t - 1);
    let mut results: Vec<Option<R>> = Vec::with_capacity(t);
    results.resize_with(t, || None);
    let out0;
    {
        let f = &f;
        let latch_ref = &latch;
        let slots = SendPtr(results.as_mut_ptr());
        {
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            for (i, range) in ranges.iter().cloned().enumerate().skip(1) {
                let job = move || {
                    // Capture the `SendPtr` wrapper, not its raw field.
                    let slots = slots;
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let start = Instant::now();
                        let out = f(range);
                        obs::histogram!("par.task.ns").record_duration(start.elapsed());
                        out
                    }));
                    match outcome {
                        // SAFETY: each job writes only its own slot `i`,
                        // the caller reads the slots only after the latch
                        // reports every job arrived (AcqRel/Acquire on
                        // `remaining` orders the writes), and the
                        // wait-guard below keeps the vector alive until
                        // then.
                        Ok(v) => unsafe { *slots.0.add(i) = Some(v) },
                        Err(payload) => latch_ref.record_panic(payload),
                    }
                    latch_ref.arrive();
                };
                let run: Box<dyn FnOnce() + Send + '_> = Box::new(job);
                // SAFETY: extends the closure's borrows (of `f`, the
                // latch, and the result slots) to 'static so it can sit
                // in the process-wide queue. The wait-guard below does
                // not return — even on panic — until every job has run,
                // so no borrow outlives its referent.
                let run: Box<dyn FnOnce() + Send + 'static> =
                    unsafe { std::mem::transmute(run) };
                q.push_back(Job { run, enqueued: Instant::now() });
            }
            shared.work_ready.notify_all();
        }
        // Run chunk 0 inline; the guard waits out the pool jobs even if
        // `f` panics here, so queued borrows never dangle.
        struct WaitGuard<'a>(&'a Latch, &'a PoolShared);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait_helping(self.1);
            }
        }
        let guard = WaitGuard(&latch, shared);
        let start = Instant::now();
        out0 = f(ranges[0].clone());
        obs::histogram!("par.task.ns").record_duration(start.elapsed());
        drop(guard);
    }
    results[0] = Some(out0);
    if let Some(payload) =
        latch.panic.lock().unwrap_or_else(PoisonError::into_inner).take()
    {
        std::panic::resume_unwind(payload);
    }
    results.into_iter().map(|r| r.expect("par worker panicked")).collect()
}

/// [`chunks_with`] at the ambient worker count ([`threads`]).
pub fn chunks<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    chunks_with(threads(), n, f)
}

/// Applies `f` to every element of `items` across the pool and returns
/// the results in input order.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let parts =
        chunks(items.len(), |range| items[range].iter().map(&f).collect::<Vec<R>>());
    let mut out = Vec::with_capacity(items.len());
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests mutate the process-wide override; serialize them.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_threads(Some(n));
        let out = f();
        set_threads(None);
        out
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for t in [1, 3, 8] {
            let out = with_threads(t, || map(&items, |&x| x * 2));
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>(), "t={t}");
        }
    }

    #[test]
    fn chunks_partition_exactly_in_order() {
        for (n, t) in [(10, 3), (7, 7), (5, 8), (1, 4), (100, 1)] {
            let ranges = chunks_with(t, n, |r| r);
            assert_eq!(ranges.len(), t.min(n));
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "n={n} t={t}");
                assert!(!w[1].is_empty());
            }
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "n={n} t={t} sizes={sizes:?}");
        }
    }

    #[test]
    fn empty_input_never_calls_the_closure() {
        let out = chunks_with(4, 0, |_| panic!("must not be called"));
        assert!(out.is_empty());
        let mapped: Vec<u32> = map(&[] as &[u32], |_| panic!("must not be called"));
        assert!(mapped.is_empty());
    }

    #[test]
    fn override_wins_and_resets() {
        with_threads(3, || assert_eq!(threads(), 3));
        // After reset, the count is whatever env/hardware dictates — just
        // check it is sane.
        assert!(threads() >= 1);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let data: Vec<u64> = (0..10_000).map(|i| i % 97).collect();
        let serial: u64 = data.iter().sum();
        for t in [2, 5, 16] {
            let partials =
                with_threads(t, || chunks(data.len(), |r| data[r].iter().sum::<u64>()));
            assert_eq!(partials.iter().sum::<u64>(), serial, "t={t}");
        }
    }

    #[test]
    fn pool_metrics_are_recorded() {
        with_threads(2, || {
            let before = obs::counter!("par.pool.tasks").get();
            let _ = chunks(8, |r| r.len());
            assert_eq!(obs::counter!("par.pool.tasks").get(), before + 2);
            assert_eq!(obs::registry().snapshot().gauge("par.pool.threads"), Some(2.0));
        });
    }

    #[test]
    fn nested_regions_do_not_deadlock() {
        // An inner parallel region inside a pool job must complete even when
        // every worker is busy — callers help drain the queue while waiting.
        let out = chunks_with(4, 8, |outer| {
            let inner = chunks_with(4, 8, |r| r.len());
            outer.len() + inner.iter().sum::<usize>()
        });
        assert_eq!(out.iter().sum::<usize>(), 8 + 4 * 8);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let caught = std::panic::catch_unwind(|| {
            chunks_with(4, 8, |r| {
                if r.start > 0 {
                    panic!("boom in worker");
                }
                r.len()
            })
        });
        let payload = caught.expect_err("worker panic must reach the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom in worker");
    }

    #[test]
    fn dispatch_latency_is_recorded_for_pool_jobs() {
        let before = obs::registry()
            .snapshot()
            .histogram("par.pool.dispatch.ns")
            .map_or(0, |h| h.count);
        let _ = chunks_with(2, 8, |r| r.len());
        let after = obs::registry()
            .snapshot()
            .histogram("par.pool.dispatch.ns")
            .map_or(0, |h| h.count);
        assert!(after > before, "pool dispatch should record enqueue→dequeue latency");
    }
}
