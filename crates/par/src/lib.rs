//! # prmsel-par — scoped data-parallelism for the workspace
//!
//! A dependency-free fork/join layer over [`std::thread::scope`]. The
//! workspace builds offline with stand-in crates, so rayon is not an
//! option; this crate provides the small subset the estimation stack
//! actually needs:
//!
//! * [`map`] — apply a function to every element of a slice, in parallel,
//!   returning results **in input order**;
//! * [`chunks`] — split an index range `0..n` into one contiguous chunk
//!   per worker and collect the per-chunk results **in chunk order**
//!   (the building block for partitioned scans with thread-local
//!   accumulators merged by the caller);
//! * [`chunks_with`] — same, with an explicit worker count.
//!
//! ## Degree of parallelism
//!
//! [`threads`] resolves the worker count: a process-wide programmatic
//! override ([`set_threads`], used by benches and determinism tests)
//! wins over the `PRMSEL_THREADS` environment variable, which wins over
//! [`std::thread::available_parallelism`]. With one worker every entry
//! point runs inline on the caller's thread — no spawn, same code path,
//! so `PRMSEL_THREADS=1` behaves exactly like the pre-parallel code.
//!
//! ## Determinism
//!
//! Work is split by *position*, never by completion order: chunk
//! boundaries depend only on `(n, threads)` and results are joined in
//! chunk order. Callers that fold per-chunk partials therefore see the
//! same sequence of partials for a given thread count, and callers whose
//! merge is order-insensitive (integer count merges, stable best-move
//! scans) produce bit-identical output for *every* thread count.
//!
//! ## Telemetry
//!
//! Every parallel region records into the process-global [`obs`]
//! registry: `par.pool.tasks` (counter, tasks dispatched),
//! `par.pool.threads` (gauge, workers used by the most recent region)
//! and `par.task.ns` (histogram, per-task wall clock).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// `0` = no override; anything else is the forced worker count.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker count process-wide (`None` restores the
/// `PRMSEL_THREADS` / `available_parallelism` resolution). Intended for
/// benches and determinism tests; parallel regions already in flight are
/// unaffected.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count parallel regions will use: [`set_threads`] override,
/// else `PRMSEL_THREADS` (a positive integer), else
/// [`std::thread::available_parallelism`].
pub fn threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    std::env::var("PRMSEL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
}

/// Splits `0..n` into `threads` contiguous chunks (sizes differing by at
/// most one), runs `f` on each chunk across that many scoped workers, and
/// returns the per-chunk results in chunk order. With one worker (or one
/// element) `f` runs inline on the caller's thread. `n == 0` returns an
/// empty vector without calling `f`.
pub fn chunks_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let t = threads.max(1).min(n);
    obs::gauge!("par.pool.threads").set(t as f64);
    obs::counter!("par.pool.tasks").add(t as u64);
    if t == 1 {
        let start = Instant::now();
        let out = f(0..n);
        obs::histogram!("par.task.ns").record_duration(start.elapsed());
        return vec![out];
    }
    // Balanced partition: the first `n % t` chunks get one extra element.
    let base = n / t;
    let extra = n % t;
    let f = &f;
    std::thread::scope(|scope| {
        let mut lo = 0usize;
        let handles: Vec<_> = (0..t)
            .map(|i| {
                let hi = lo + base + usize::from(i < extra);
                let range = lo..hi;
                lo = hi;
                scope.spawn(move || {
                    let start = Instant::now();
                    let out = f(range);
                    obs::histogram!("par.task.ns").record_duration(start.elapsed());
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par worker panicked")).collect()
    })
}

/// [`chunks_with`] at the ambient worker count ([`threads`]).
pub fn chunks<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    chunks_with(threads(), n, f)
}

/// Applies `f` to every element of `items` across the pool and returns
/// the results in input order.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let parts =
        chunks(items.len(), |range| items[range].iter().map(&f).collect::<Vec<R>>());
    let mut out = Vec::with_capacity(items.len());
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests mutate the process-wide override; serialize them.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_threads(Some(n));
        let out = f();
        set_threads(None);
        out
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for t in [1, 3, 8] {
            let out = with_threads(t, || map(&items, |&x| x * 2));
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>(), "t={t}");
        }
    }

    #[test]
    fn chunks_partition_exactly_in_order() {
        for (n, t) in [(10, 3), (7, 7), (5, 8), (1, 4), (100, 1)] {
            let ranges = chunks_with(t, n, |r| r);
            assert_eq!(ranges.len(), t.min(n));
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "n={n} t={t}");
                assert!(!w[1].is_empty());
            }
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "n={n} t={t} sizes={sizes:?}");
        }
    }

    #[test]
    fn empty_input_never_calls_the_closure() {
        let out = chunks_with(4, 0, |_| panic!("must not be called"));
        assert!(out.is_empty());
        let mapped: Vec<u32> = map(&[] as &[u32], |_| panic!("must not be called"));
        assert!(mapped.is_empty());
    }

    #[test]
    fn override_wins_and_resets() {
        with_threads(3, || assert_eq!(threads(), 3));
        // After reset, the count is whatever env/hardware dictates — just
        // check it is sane.
        assert!(threads() >= 1);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let data: Vec<u64> = (0..10_000).map(|i| i % 97).collect();
        let serial: u64 = data.iter().sum();
        for t in [2, 5, 16] {
            let partials =
                with_threads(t, || chunks(data.len(), |r| data[r].iter().sum::<u64>()));
            assert_eq!(partials.iter().sum::<u64>(), serial, "t={t}");
        }
    }

    #[test]
    fn pool_metrics_are_recorded() {
        with_threads(2, || {
            let before = obs::counter!("par.pool.tasks").get();
            let _ = chunks(8, |r| r.len());
            assert_eq!(obs::counter!("par.pool.tasks").get(), before + 2);
            assert_eq!(obs::registry().snapshot().gauge("par.pool.threads"), Some(2.0));
        });
    }
}
