//! # prmsel-httpd — a minimal HTTP/1.1 plane for observability endpoints
//!
//! The estimation service needs exactly one network capability today:
//! answering `GET` requests for metrics, traces, and health — scrapes by
//! Prometheus, `curl`, and `prmsel stats --from-url`. This crate provides
//! that and nothing more, on `std` alone (the workspace builds offline):
//!
//! * [`Server`] — a [`std::net::TcpListener`] shared by a small fixed
//!   pool of accept workers (the same scoped-worker discipline as
//!   `prmsel-par`, made persistent). Each worker handles one connection
//!   at a time, so the pool size *is* the concurrent-connection bound;
//!   the kernel accept backlog absorbs bursts.
//! * Per-connection **read deadlines** ([`Config::read_timeout`]) and a
//!   request-size cap, so a stalled or hostile client cannot wedge a
//!   worker.
//! * **Graceful shutdown**: [`Server::shutdown`] flips an atomic flag and
//!   nudges each worker with a loopback connection; workers finish their
//!   in-flight response and exit, and the call joins them.
//! * [`Router`] — exact-path `GET` routing to boxed handlers. Anything
//!   that is not a well-formed `GET` gets `400`/`405`; unknown paths get
//!   `404`.
//! * [`get`] — a tiny blocking client for tests, smoke scripts, and
//!   `prmsel stats --from-url`.
//!
//! Requests are served one per connection (`Connection: close`), which
//! keeps the state machine trivial and is exactly how scrapers behave.
//!
//! ## Telemetry
//!
//! The server records itself into the process-global [`obs`] registry:
//! `httpd.requests` (counter), `httpd.request.ns` (histogram), and
//! `httpd.bad_requests` (counter of parse failures / non-GET methods).
//!
//! ## Example
//!
//! ```
//! let router = httpd::Router::new()
//!     .get("/ping", |_req| httpd::Response::text(200, "pong"));
//! let server = httpd::Server::bind("127.0.0.1:0", router).unwrap();
//! let addr = server.addr().to_string();
//! let (status, body) = httpd::get(&addr, "/ping").unwrap();
//! assert_eq!((status, body.as_str()), (200, "pong"));
//! server.shutdown();
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A parsed (enough) incoming request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Decoded path, without the query string (e.g. `/metrics`).
    pub path: String,
    /// The raw query string after `?` (empty when absent).
    pub query: String,
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain; version=0.0.4` response (the Prometheus exposition
    /// content type, also fine for plain text).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// The standard `404`.
    pub fn not_found() -> Response {
        Response::text(404, "not found\n")
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// Exact-path `GET` routing table.
#[derive(Default)]
pub struct Router {
    routes: Vec<(String, Box<Handler>)>,
}

impl Router {
    /// An empty router (every request answers `404`).
    pub fn new() -> Router {
        Router::default()
    }

    /// Adds a handler for `GET path` (exact match on the decoded path).
    pub fn get(
        mut self,
        path: impl Into<String>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push((path.into(), Box::new(handler)));
        self
    }

    fn dispatch(&self, req: &Request) -> Response {
        match self.routes.iter().find(|(p, _)| *p == req.path) {
            Some((_, h)) => h(req),
            None => Response::not_found(),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Accept workers — also the concurrent-connection bound.
    pub workers: usize,
    /// Per-connection read deadline: a client that has not delivered a
    /// full request header within this window is answered `408` and
    /// dropped.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Maximum request-header bytes accepted before answering `413`.
    pub max_request_bytes: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: 4,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_request_bytes: 8 * 1024,
        }
    }
}

/// A running HTTP server. Dropping it shuts it down (gracefully, joining
/// the workers).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving `router` on the default [`Config`].
    pub fn bind(addr: &str, router: Router) -> std::io::Result<Server> {
        Server::bind_with(addr, router, Config::default())
    }

    /// [`Server::bind`] with explicit tuning.
    pub fn bind_with(
        addr: &str,
        router: Router,
        config: Config,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let router = Arc::new(router);
        let shutdown = Arc::new(AtomicBool::new(false));
        let config = Arc::new(config);
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let router = Arc::clone(&router);
                let shutdown = Arc::clone(&shutdown);
                let config = Arc::clone(&config);
                std::thread::Builder::new()
                    .name(format!("httpd-{i}"))
                    .spawn(move || {
                        while !shutdown.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    if shutdown.load(Ordering::Relaxed) {
                                        break;
                                    }
                                    handle_connection(stream, &router, &config);
                                }
                                // Transient accept errors (EMFILE,
                                // ECONNABORTED): brief backoff, retry.
                                Err(_) => std::thread::sleep(Duration::from_millis(10)),
                            }
                        }
                    })
                    .expect("spawn httpd worker")
            })
            .collect();
        Ok(Server { addr, shutdown, workers })
    }

    /// The bound address (resolves the actual port for `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, finishes in-flight responses, and joins the
    /// workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::Relaxed) {
            return;
        }
        // Wake each worker blocked in accept() with a loopback connection.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one request from `stream`, dispatches it, writes one response.
fn handle_connection(mut stream: TcpStream, router: &Router, config: &Config) {
    let start = Instant::now();
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let response = match read_request(&mut stream, config.max_request_bytes) {
        Ok(req) => {
            obs::counter!("httpd.requests").inc();
            router.dispatch(&req)
        }
        Err(status) => {
            obs::counter!("httpd.bad_requests").inc();
            Response::text(status, format!("{} {}\n", status, reason(status)))
        }
    };
    write_response(&mut stream, &response);
    obs::histogram!("httpd.request.ns").record_duration(start.elapsed());
}

/// Reads and parses the request head; returns the failing status code on
/// any protocol violation (including a read deadline, mapped to `408`).
fn read_request(stream: &mut TcpStream, max_bytes: usize) -> Result<Request, u16> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if find_header_end(&buf).is_some() {
            break;
        }
        if buf.len() >= max_bytes {
            return Err(413);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(400),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(408)
            }
            Err(_) => return Err(400),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = (
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
    );
    if !version.starts_with("HTTP/1.") || target.is_empty() {
        return Err(400);
    }
    if method != "GET" {
        return Err(405);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request { path: path.to_owned(), query: query.to_owned() })
}

/// Offset just past the `\r\n\r\n` (or bare `\n\n`) terminator, if seen.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

fn write_response(stream: &mut TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(&response.body);
    let _ = stream.flush();
}

/// Default client timeout for [`get`].
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Blocking `GET http://{addr}{path}`; returns `(status, body)`.
///
/// `addr` is a `host:port` pair (a bare `host:port` from
/// `prmsel monitor`'s output works as-is); `path` must start with `/`.
pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    get_with_timeout(addr, path, CLIENT_TIMEOUT)
}

/// [`get`] with an explicit connect/read/write deadline.
pub fn get_with_timeout(
    addr: &str,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable address")
    })?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_client_response(&raw).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })
}

fn parse_client_response(raw: &[u8]) -> Option<(u16, String)> {
    let body_at = find_header_end(raw)?;
    let head = std::str::from_utf8(&raw[..body_at]).ok()?;
    let status: u16 = head.lines().next()?.split_whitespace().nth(1)?.parse().ok()?;
    let body = String::from_utf8_lossy(&raw[body_at..]).into_owned();
    Some((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> Server {
        let router = Router::new()
            .get("/ping", |_| Response::text(200, "pong"))
            .get("/echo", |req: &Request| {
                Response::json(200, format!("{{\"q\":\"{}\"}}", req.query))
            })
            .get("/fail", |_| Response::text(503, "degraded"));
        Server::bind("127.0.0.1:0", router).expect("bind ephemeral")
    }

    #[test]
    fn routes_and_serves_gets() {
        let server = test_server();
        let addr = server.addr().to_string();
        assert_eq!(get(&addr, "/ping").unwrap(), (200, "pong".to_owned()));
        assert_eq!(get(&addr, "/echo?x=1").unwrap(), (200, "{\"q\":\"x=1\"}".to_owned()));
        assert_eq!(get(&addr, "/fail").unwrap().0, 503);
        assert_eq!(get(&addr, "/nope").unwrap().0, 404);
        server.shutdown();
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let server = test_server();
        let addr = server.addr();
        let post = {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /ping HTTP/1.1\r\n\r\n").unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            String::from_utf8_lossy(&out).into_owned()
        };
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        let garbage = {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"definitely not http\r\n\r\n").unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            String::from_utf8_lossy(&out).into_owned()
        };
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");
        server.shutdown();
    }

    #[test]
    fn stalled_client_hits_the_read_deadline() {
        let router = Router::new().get("/ping", |_| Response::text(200, "pong"));
        let config =
            Config { read_timeout: Duration::from_millis(100), ..Config::default() };
        let server = Server::bind_with("127.0.0.1:0", router, config).expect("bind");
        let addr = server.addr();
        // Open a connection and send nothing: the worker must free itself.
        let mut stalled = TcpStream::connect(addr).unwrap();
        let mut out = Vec::new();
        stalled.read_to_end(&mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 408"));
        // And the server still answers afterwards.
        assert_eq!(get(&addr.to_string(), "/ping").unwrap().0, 200);
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_all_answered() {
        let server = test_server();
        let addr = server.addr().to_string();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    let addr = addr.clone();
                    scope.spawn(move || get(&addr, "/ping").unwrap())
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), (200, "pong".to_owned()));
            }
        });
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let server = test_server();
        let addr = server.addr();
        server.shutdown();
        // The listener is closed: a fresh bind to the same port works.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "{rebind:?}");
    }
}
