//! # prmsel-failpoint — named fault-injection sites
//!
//! Chaos tests need to prove that the estimation stack survives faults at
//! every layer: a corrupt model file, a compiler bug, an inference blowup,
//! a poisoned CSV row. This crate compiles *named sites* into those hot
//! paths — [`fail_point!`] — that cost **one relaxed atomic load** when no
//! site is armed, and inject a typed error, a panic, or a delay when armed.
//!
//! Sites are armed either programmatically ([`arm`], for in-process tests)
//! or through the environment at first use:
//!
//! ```text
//! PRMSEL_FAILPOINTS=site=err|panic|delay:ms[,site=...]
//! PRMSEL_FAILPOINTS=infer.eliminate=err,csv.row=panic,persist.load=delay:5
//! ```
//!
//! A site that is armed `err` makes [`fail_point!`] return
//! `Err(`[`Injected`]`)`, which the caller maps into its own error type;
//! `panic` panics with a recognizable message (for `catch_unwind`
//! isolation tests); `delay:ms` sleeps and then passes, for deadline and
//! timeout testing.
//!
//! The workspace's canonical sites are `persist.load`, `plan.compile`,
//! `infer.eliminate`, `estimate.query`, and `csv.row` (see each crate for
//! the exact placement).
//!
//! ## Example
//!
//! ```
//! fn fallible() -> Result<u32, String> {
//!     failpoint::fail_point!("demo.site").map_err(|e| e.to_string())?;
//!     Ok(42)
//! }
//! assert_eq!(fallible(), Ok(42)); // disarmed: one atomic load
//! failpoint::arm("demo.site", failpoint::Action::Err);
//! assert!(fallible().is_err());
//! failpoint::clear();
//! assert_eq!(fallible(), Ok(42));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// What an armed site does when crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return `Err(Injected)` from [`fail_point!`].
    Err,
    /// Panic with a `failpoint {site}` message (exercises `catch_unwind`
    /// isolation).
    Panic,
    /// Sleep for the given number of milliseconds, then pass (exercises
    /// deadline guards).
    Delay(u64),
}

/// The typed error an `err`-armed site injects; callers map it into their
/// own error taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injected {
    /// The site that fired.
    pub site: &'static str,
}

impl fmt::Display for Injected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site)
    }
}

impl std::error::Error for Injected {}

/// Tri-state so the fast path stays a single relaxed load: `UNINIT` routes
/// to the env parse exactly once, after which the flag is `OFF` or `ON`.
const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static SITES: Mutex<Option<HashMap<String, Action>>> = Mutex::new(None);

/// True when at least one site is armed. This is the gate [`fail_point!`]
/// loads; when it returns `false` the macro does nothing else.
#[inline]
pub fn armed() -> bool {
    match STATE.load(Ordering::Relaxed) {
        OFF => false,
        ON => true,
        _ => init_from_env(),
    }
}

/// Parses `PRMSEL_FAILPOINTS` (idempotent; called lazily by [`armed`]).
/// Returns whether any site ended up armed. Unparseable entries are
/// ignored rather than erroring — a chaos harness with a typo'd site name
/// must not take the process down, which is the whole point.
fn init_from_env() -> bool {
    let mut sites = lock();
    if sites.is_none() {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("PRMSEL_FAILPOINTS") {
            for entry in spec.split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                if let Some((site, action)) = entry.split_once('=') {
                    if let Some(action) = parse_action(action.trim()) {
                        map.insert(site.trim().to_owned(), action);
                    }
                }
            }
        }
        let on = !map.is_empty();
        *sites = Some(map);
        STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
        on
    } else {
        STATE.load(Ordering::Relaxed) == ON
    }
}

fn parse_action(text: &str) -> Option<Action> {
    match text {
        "err" => Some(Action::Err),
        "panic" => Some(Action::Panic),
        _ => text
            .strip_prefix("delay:")
            .and_then(|ms| ms.trim().parse::<u64>().ok())
            .map(Action::Delay),
    }
}

fn lock() -> std::sync::MutexGuard<'static, Option<HashMap<String, Action>>> {
    SITES.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms `site` with `action` (programmatic alternative to the env var).
pub fn arm(site: &str, action: Action) {
    let mut sites = lock();
    sites.get_or_insert_with(HashMap::new).insert(site.to_owned(), action);
    STATE.store(ON, Ordering::Relaxed);
}

/// Disarms one site (other armed sites stay armed).
pub fn disarm(site: &str) {
    let mut sites = lock();
    if let Some(map) = sites.as_mut() {
        map.remove(site);
        if map.is_empty() {
            STATE.store(OFF, Ordering::Relaxed);
        }
    }
}

/// Disarms every site (including env-armed ones).
pub fn clear() {
    let mut sites = lock();
    *sites = Some(HashMap::new());
    STATE.store(OFF, Ordering::Relaxed);
}

/// The names of all currently armed sites, sorted (for harness logging).
pub fn armed_sites() -> Vec<String> {
    armed(); // force env parse
    let sites = lock();
    let mut names: Vec<String> =
        sites.as_ref().map(|m| m.keys().cloned().collect()).unwrap_or_default();
    names.sort();
    names
}

/// Slow path of [`fail_point!`]: looks `site` up and performs its action.
/// Only reached when [`armed`] is true, so the lock never sits on the
/// disarmed hot path.
pub fn eval(site: &'static str) -> Result<(), Injected> {
    let action = { lock().as_ref().and_then(|m| m.get(site)).copied() };
    match action {
        None => Ok(()),
        Some(Action::Err) => Err(Injected { site }),
        Some(Action::Panic) => panic!("failpoint {site} panic"),
        Some(Action::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
    }
}

/// The injection site: `fail_point!("name")` evaluates to
/// `Result<(), Injected>`. Disarmed cost is one relaxed atomic load.
#[macro_export]
macro_rules! fail_point {
    ($site:literal) => {
        if $crate::armed() {
            $crate::eval($site)
        } else {
            Ok(())
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The site map is process-global; tests serialize on it.
    fn exclusive(f: impl FnOnce()) {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        clear();
        f();
        clear();
    }

    fn cross(site_result: Result<(), Injected>) -> Result<(), Injected> {
        site_result
    }

    #[test]
    fn disarmed_site_passes() {
        exclusive(|| {
            assert!(cross(fail_point!("t.a")).is_ok());
        });
    }

    #[test]
    fn err_mode_injects_typed_error() {
        exclusive(|| {
            arm("t.b", Action::Err);
            let err = cross(fail_point!("t.b")).unwrap_err();
            assert_eq!(err.site, "t.b");
            assert!(err.to_string().contains("t.b"));
            // Other sites are unaffected.
            assert!(cross(fail_point!("t.other")).is_ok());
        });
    }

    #[test]
    fn panic_mode_panics_with_site_name() {
        exclusive(|| {
            arm("t.c", Action::Panic);
            let r = std::panic::catch_unwind(|| {
                let _ = fail_point!("t.c");
            });
            let msg = *r.unwrap_err().downcast::<String>().unwrap();
            assert!(msg.contains("failpoint t.c"), "{msg}");
        });
    }

    #[test]
    fn delay_mode_sleeps_then_passes() {
        exclusive(|| {
            arm("t.d", Action::Delay(10));
            let start = std::time::Instant::now();
            assert!(cross(fail_point!("t.d")).is_ok());
            assert!(start.elapsed().as_millis() >= 10);
        });
    }

    #[test]
    fn disarm_restores_the_site() {
        exclusive(|| {
            arm("t.e", Action::Err);
            assert!(cross(fail_point!("t.e")).is_err());
            disarm("t.e");
            assert!(cross(fail_point!("t.e")).is_ok());
            assert!(!armed());
        });
    }

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        assert_eq!(parse_action("err"), Some(Action::Err));
        assert_eq!(parse_action("panic"), Some(Action::Panic));
        assert_eq!(parse_action("delay:25"), Some(Action::Delay(25)));
        assert_eq!(parse_action("delay:"), None);
        assert_eq!(parse_action("frob"), None);
    }

    #[test]
    fn armed_sites_lists_sorted_names() {
        exclusive(|| {
            arm("t.z", Action::Err);
            arm("t.a", Action::Panic);
            assert_eq!(armed_sites(), vec!["t.a".to_owned(), "t.z".to_owned()]);
        });
    }
}
