//! End-to-end flight-recorder test: record traces through the public
//! hook API, export them as Chrome `trace_event` JSON, and round-trip
//! the spans back out with a minimal JSON scanner — validating the
//! structure a `chrome://tracing` / Perfetto import depends on.

use obs::flight;

/// A minimal parser for the subset of JSON the Chrome exporter emits:
/// extracts every object in the `traceEvents` array as a flat list of
/// `key:value` string pairs (values kept as raw JSON text).
fn parse_trace_events(json: &str) -> Vec<Vec<(String, String)>> {
    let start = json.find("\"traceEvents\":[").expect("traceEvents array") + 15;
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = 0usize;
    let bytes = json.as_bytes();
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => {
                if depth == 0 {
                    obj_start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    events.push(parse_flat_object(&json[obj_start..=i]));
                }
            }
            b']' if depth == 0 => break,
            _ => {}
        }
    }
    events
}

/// Splits one flat-ish JSON object into top-level key/value pairs (the
/// nested `args` object is kept whole as a raw value).
fn parse_flat_object(obj: &str) -> Vec<(String, String)> {
    let inner = &obj[1..obj.len() - 1];
    let mut pairs = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut field_start = 0usize;
    let bytes = inner.as_bytes();
    let mut fields = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b',' if depth == 0 => {
                fields.push(&inner[field_start..i]);
                field_start = i + 1;
            }
            _ => {}
        }
    }
    fields.push(&inner[field_start..]);
    for f in fields {
        let (k, v) = f.split_once(':').expect("key:value");
        pairs.push((k.trim().trim_matches('"').to_owned(), v.trim().to_owned()));
    }
    pairs
}

/// Recording and the ring are process-global; tests serialize here.
fn with_flight_lock(f: impl FnOnce()) {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    f();
    flight::set_recording(false);
}

fn get<'a>(event: &'a [(String, String)], key: &str) -> &'a str {
    event
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("event missing key {key}"))
}

/// Records one synthetic trace through the hook API and returns it.
fn record_one(label: &str, n_steps: usize) -> flight::QueryTrace {
    assert!(flight::begin(|| label.to_owned()));
    {
        let _p = flight::phase("decode");
        flight::pred_mask(0, 3, 8);
    }
    flight::plan_cache(false);
    {
        let _outer = flight::phase("eliminate");
        for v in 0..n_steps {
            let t0 = flight::now_ns();
            flight::elim_step(v, 2, &[v, v + 1], 16, t0, 10);
        }
    }
    flight::finish(42.5);
    let id = flight::last_finished_id();
    flight::ring().find(id).expect("trace deposited in ring")
}

#[test]
fn chrome_export_round_trips_spans() {
    let mut recorded = None;
    with_flight_lock(|| {
        flight::set_recording(true);
        let a = record_one("t1 JOIN t2 WHERE t1.x", 3);
        let b = record_one("t3 WHERE t3.y", 1);
        flight::set_recording(false);
        recorded = Some((a, b));
    });
    let (a, b) = recorded.unwrap();

    let json = flight::to_chrome_trace(&[a.clone(), b.clone()]);
    // Document-level shape chrome://tracing requires.
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"displayTimeUnit\":\"ns\""), "{json}");

    let events = parse_trace_events(&json);
    assert_eq!(
        events.len(),
        a.chrome_event_count() + b.chrome_event_count(),
        "every query, phase, and elimination step exports one event"
    );

    // Every event is a complete event on pid 1 with numeric ts/dur.
    for e in &events {
        assert_eq!(get(e, "ph"), "\"X\"");
        assert_eq!(get(e, "pid"), "1");
        let ts: f64 = get(e, "ts").parse().expect("numeric ts");
        let dur: f64 = get(e, "dur").parse().expect("numeric dur");
        assert!(ts >= 0.0 && dur >= 0.0);
    }

    // Events land on one track (tid) per query id.
    for trace in [&a, &b] {
        let tid = trace.id.to_string();
        let on_track: Vec<_> = events.iter().filter(|e| get(e, "tid") == tid).collect();
        assert_eq!(on_track.len(), trace.chrome_event_count());
        // The query-level event spans its phases: ts(query) <= ts(child)
        // and the whole child fits inside the query duration.
        let query_event = on_track
            .iter()
            .find(|e| get(e, "cat") == "\"query\"")
            .expect("query-level event");
        let q_ts: f64 = get(query_event, "ts").parse().unwrap();
        let q_dur: f64 = get(query_event, "dur").parse().unwrap();
        for child in on_track.iter().filter(|e| get(e, "cat") != "\"query\"") {
            let ts: f64 = get(child, "ts").parse().unwrap();
            let dur: f64 = get(child, "dur").parse().unwrap();
            assert!(ts >= q_ts, "child starts inside the query span");
            assert!(ts + dur <= q_ts + q_dur + 1e-3, "child ends inside the query span");
        }
    }

    // Elimination steps carry their factor metadata in args.
    let elim_events: Vec<_> =
        events.iter().filter(|e| get(e, "cat") == "\"elim\"").collect();
    assert_eq!(elim_events.len(), a.elim_steps.len() + b.elim_steps.len());
    for e in &elim_events {
        let args = get(e, "args");
        assert!(args.contains("\"factors\""), "{args}");
        assert!(args.contains("\"width\""), "{args}");
        assert!(args.contains("\"scope\""), "{args}");
    }

    // The query event of the miss-recorded trace carries the plan outcome.
    let q_a = events
        .iter()
        .find(|e| get(e, "tid") == a.id.to_string() && get(e, "cat") == "\"query\"")
        .unwrap();
    assert!(get(q_a, "args").contains("\"plan\":\"miss\""));
}

#[test]
fn ring_retains_worst_traces_under_pressure() {
    with_flight_lock(|| {
        flight::ring().clear();
        flight::ring().set_capacity(4);
        flight::set_recording(true);
        // One slow trace, then a burst of fast ones.
        assert!(flight::begin(|| "slow".to_owned()));
        std::thread::sleep(std::time::Duration::from_millis(5));
        flight::finish(1.0);
        let slow_id = flight::last_finished_id();
        for i in 0..16 {
            assert!(flight::begin(|| format!("fast {i}")));
            flight::finish(1.0);
        }
        flight::set_recording(false);
        // The slow trace was rotated out of the recent window but
        // survives in the worst-by-latency pin.
        let snapshot = flight::ring().snapshot();
        assert!(
            snapshot.iter().any(|t| t.id == slow_id),
            "worst-latency trace must be pinned past eviction"
        );
        flight::ring().clear();
        flight::ring().set_capacity(flight::DEFAULT_RING_CAPACITY);
    });
}
