//! Black-box edge cases for the OpenMetrics exposition: empty registry,
//! name/label escaping, zero-observation histograms, saturated counters,
//! and the render → parse round trip. These build [`obs::Snapshot`]s
//! directly (the fields are public) so they are independent of the
//! process-global registry and can run in parallel with anything.

use obs::openmetrics::{labeled, lint, parse, render, split_labels};
use obs::{HistogramSnapshot, Snapshot};

#[test]
fn empty_registry_renders_to_a_lintable_eof_only_document() {
    let doc = render(&Snapshot::default());
    assert_eq!(doc, "# EOF\n");
    lint(&doc).expect("empty document must lint");
    let back = parse(&doc).expect("empty document must parse");
    assert!(back.counters.is_empty());
    assert!(back.gauges.is_empty());
    assert!(back.histograms.is_empty());
}

#[test]
fn hostile_names_and_label_values_escape_cleanly() {
    let mut snap = Snapshot::default();
    // Dots, dashes, a leading digit, and a label value exercising every
    // escape (`\`, `"`, newline) plus non-ASCII.
    snap.counters.push(("9lives.meow-count".to_owned(), 3));
    snap.gauges.push((labeled("weird.gauge", &[("path", "a\\b \"c\"\nd—é")]), 1.5));
    let doc = render(&snap);
    lint(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
    assert!(doc.contains("# TYPE _9lives_meow_count counter"), "{doc}");
    assert!(doc.contains("_9lives_meow_count_total 3"), "{doc}");
    // The escapes survive verbatim in the exposition...
    assert!(doc.contains("path=\"a\\\\b \\\"c\\\"\\nd—é\""), "{doc}");
    // ...and decode back to the original value.
    let back = parse(&doc).expect("parse");
    let (_, labels) = split_labels(&back.gauges[0].0);
    assert_eq!(labels, vec![("path".to_owned(), "a\\b \"c\"\nd—é".to_owned())]);
}

#[test]
fn zero_observation_histogram_is_well_formed() {
    let mut snap = Snapshot::default();
    snap.histograms.push((
        "idle.ns".to_owned(),
        HistogramSnapshot { count: 0, sum: 0, min: 0, max: 0, buckets: vec![] },
    ));
    let doc = render(&snap);
    lint(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
    // Even with no observations the histogram keeps its mandatory series.
    assert!(doc.contains("idle_ns_bucket{le=\"+Inf\"} 0"), "{doc}");
    assert!(doc.contains("idle_ns_sum 0"), "{doc}");
    assert!(doc.contains("idle_ns_count 0"), "{doc}");
    let back = parse(&doc).expect("parse");
    assert_eq!(back.histograms[0].1.count, 0);
    assert!(back.histograms[0].1.buckets.is_empty());
}

#[test]
fn saturated_counter_round_trips_at_u64_max() {
    let mut snap = Snapshot::default();
    snap.counters.push(("overflowed".to_owned(), u64::MAX));
    let doc = render(&snap);
    lint(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
    assert!(doc.contains(&format!("overflowed_total {}", u64::MAX)), "{doc}");
    let back = parse(&doc).expect("parse");
    assert_eq!(back.counter("overflowed"), Some(u64::MAX));
}

#[test]
fn live_registry_snapshot_renders_and_round_trips() {
    // Unique names so parallel tests sharing the process registry cannot
    // collide; the whole-document lint covers whatever else is in there.
    obs::counter!("omtest.requests").add(7);
    obs::gauge!("omtest.ratio").set(0.25);
    for v in [1u64, 100, 40_000] {
        obs::histogram!("omtest.latency.ns").record(v);
    }
    obs::registry()
        .histogram(&labeled("omtest.latency.ns", &[("template", "deadbeef")]))
        .record(512);

    let doc = render(&obs::registry().snapshot());
    lint(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
    // The labeled and unlabeled series share one TYPE declaration.
    assert_eq!(doc.matches("# TYPE omtest_latency_ns histogram").count(), 1, "{doc}");
    assert!(
        doc.contains("omtest_latency_ns_bucket{template=\"deadbeef\",le=\"+Inf\"} 1"),
        "{doc}"
    );

    // Name sanitization is one-way: the parsed snapshot carries the
    // exposition names (`.` → `_`), values intact.
    let back = parse(&doc).expect("parse");
    assert_eq!(back.counter("omtest_requests"), Some(7));
    assert_eq!(back.gauge("omtest_ratio"), Some(0.25));
    let h = back.histogram("omtest_latency_ns").expect("histogram survives");
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 40_101);
}
