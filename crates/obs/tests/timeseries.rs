//! Concurrency suite for the windowed time-series plane: a 4-thread
//! `estimate_batch` mutates the registry while the background sampler
//! ticks and four scraper threads hammer a live `/timeseries` endpoint.
//! Every emitted window must be monotone in time with non-negative
//! rates, and `/metrics` must stay lint-valid throughout — the same
//! torn-read discipline the PR 6 scrape gate enforces, extended to the
//! sampler's snapshot ring.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use obs::json::Json;
use obs::timeseries::{sample_now, series, Sampler};
use prmsel::{estimate_batch, PrmEstimator, PrmLearnConfig};
use workloads::census::census_database;

/// The sampler ring and watchdog are process-global; every test in this
/// file serializes here and leaves clean state behind.
fn with_series_lock(f: impl FnOnce()) {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    series().clear();
    obs::watchdog::reset_for_tests();
    f();
    series().clear();
    obs::watchdog::reset_for_tests();
}

/// The `/timeseries` + `/metrics` router the CLI serves, rebuilt inline
/// (obs cannot depend on the cli crate, even for tests, without a
/// non-dev cycle).
fn router() -> httpd::Router {
    httpd::Router::new()
        .get("/timeseries", |_| httpd::Response::json(200, obs::timeseries::to_json(120)))
        .get("/metrics", |_| {
            httpd::Response::text(
                200,
                obs::openmetrics::render(&obs::registry().snapshot()),
            )
        })
}

/// Asserts the `/timeseries` document's invariants: windows ordered and
/// contiguous in time, every rate and ratio non-negative.
fn check_timeseries_doc(body: &str) {
    let doc = obs::json::parse(body).expect("timeseries JSON parses");
    let windows = doc.get("windows").and_then(Json::as_array).expect("windows array");
    let mut prev_end: Option<u64> = None;
    for w in windows {
        let t0 = w.get("t0_ms").and_then(Json::as_u64).expect("t0_ms");
        let t1 = w.get("t1_ms").and_then(Json::as_u64).expect("t1_ms");
        assert!(t0 <= t1, "window runs backwards: {t0}..{t1}");
        if let Some(end) = prev_end {
            assert!(t0 >= end, "windows overlap: {t0} < {end}");
        }
        prev_end = Some(t1);
        let qps = w.get("qps").and_then(Json::as_f64).expect("qps");
        assert!(qps >= 0.0, "negative qps {qps}");
        for key in ["plan_hit_ratio", "memo_hit_ratio", "fallback_ratio"] {
            if let Some(r) = w.get(key).and_then(Json::as_f64) {
                assert!((0.0..=1.0).contains(&r), "{key} out of range: {r}");
            }
        }
        for hist in ["latency_ns", "qerror_milli"] {
            let h = w.get(hist).expect(hist);
            let n = h.get("n").and_then(Json::as_u64).expect("n");
            let p50 = h.get("p50").and_then(Json::as_u64).expect("p50");
            let p99 = h.get("p99").and_then(Json::as_u64).expect("p99");
            if n > 0 {
                assert!(p50 <= p99, "{hist}: p50 {p50} > p99 {p99}");
            }
        }
    }
}

#[test]
fn concurrent_sampler_scrapers_and_estimation_hold_invariants() {
    with_series_lock(|| {
        let db = census_database(3_000, 7);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let suite =
            workloads::single_table_eq_suite(&db, "census", &["age", "income"]).unwrap();

        let server = httpd::Server::bind("127.0.0.1:0", router()).unwrap();
        let addr = server.addr().to_string();
        let sampler = Sampler::start_with(Duration::from_millis(25));
        assert!(obs::timeseries::on());

        par::set_threads(Some(4));
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let estimator = scope.spawn(|| {
                let deadline = Instant::now() + Duration::from_millis(800);
                while Instant::now() < deadline {
                    estimate_batch(&est, &suite.queries).unwrap();
                }
                stop.store(true, Ordering::Relaxed);
            });
            let scrapers: Vec<_> = (0..4)
                .map(|_| {
                    let addr = addr.clone();
                    let stop = &stop;
                    scope.spawn(move || {
                        let mut scrapes = 0u32;
                        while !stop.load(Ordering::Relaxed) || scrapes < 3 {
                            let (status, body) =
                                httpd::get(&addr, "/timeseries").unwrap();
                            assert_eq!(status, 200);
                            check_timeseries_doc(&body);
                            let (status, metrics) =
                                httpd::get(&addr, "/metrics").unwrap();
                            assert_eq!(status, 200);
                            obs::openmetrics::lint(&metrics)
                                .unwrap_or_else(|e| panic!("lint: {e}"));
                            scrapes += 1;
                        }
                        scrapes
                    })
                })
                .collect();
            estimator.join().unwrap();
            for s in scrapers {
                assert!(s.join().unwrap() >= 3);
            }
        });
        par::set_threads(None);
        sampler.stop();
        assert!(!obs::timeseries::on());

        // The sampler really ran: the ring has multiple samples and at
        // least one closed window saw the batch's queries.
        assert!(series().len() >= 3, "only {} samples", series().len());
        let windows = series().windows(usize::MAX);
        assert!(
            windows.iter().any(|w| w.queries > 0),
            "no window captured any of the batch's estimates"
        );
        assert!(windows.iter().all(|w| w.t0_ms <= w.t1_ms));
        server.shutdown();
    });
}

#[test]
fn manual_samples_derive_windows_without_a_sampler_thread() {
    with_series_lock(|| {
        let db = census_database(1_000, 3);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let suite = workloads::single_table_eq_suite(&db, "census", &["age"]).unwrap();

        sample_now();
        estimate_batch(&est, &suite.queries).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        sample_now();
        let windows = series().windows(usize::MAX);
        assert!(!windows.is_empty());
        let w = windows.last().unwrap();
        assert!(w.queries >= suite.queries.len() as u64, "{}", w.queries);
        assert!(w.qps > 0.0);
        assert!(w.latency.count >= w.queries, "estimates recorded latency");
    });
}
