//! Leveled event tracing and timed spans.
//!
//! Filtering follows `RUST_LOG` conventions: `PRMSEL_LOG` (preferred) or
//! `RUST_LOG` holds comma-separated directives, each `level` or
//! `target=level`, where a target matches any module path it prefixes:
//!
//! ```text
//! PRMSEL_LOG=warn                       # global threshold
//! PRMSEL_LOG=info,prmsel::learn=trace   # per-module override
//! ```
//!
//! The check on a disabled event is one relaxed atomic load (the global
//! maximum across directives), so leaving instrumentation in hot paths
//! costs nothing measurable when logging is off. Events print to stderr.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Suspicious conditions the caller should know about.
    Warn = 2,
    /// Phase-level progress (one event per build phase, not per step).
    Info = 3,
    /// Step-level detail (structure-search moves, per-query records).
    Debug = 4,
    /// Everything, including span enter/exit.
    Trace = 5,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// `0` = everything off.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

struct Filter {
    /// Threshold for targets matching no directive.
    global: u8,
    /// `(module-path prefix, threshold)` directives, most specific last.
    directives: Vec<(String, u8)>,
}

static FILTER: OnceLock<Mutex<Filter>> = OnceLock::new();

fn filter() -> &'static Mutex<Filter> {
    FILTER.get_or_init(|| Mutex::new(Filter { global: 0, directives: Vec::new() }))
}

fn recompute_max() {
    let f = filter().lock().expect("filter poisoned");
    let max =
        f.directives.iter().map(|&(_, lvl)| lvl).chain([f.global]).max().unwrap_or(0);
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Sets the global threshold (keeps per-target directives).
pub fn set_max_level(level: Option<Level>) {
    filter().lock().expect("filter poisoned").global =
        level.map(|l| l as u8).unwrap_or(0);
    recompute_max();
}

/// Parses a directive string (`level` / `target=level`, comma-separated)
/// and installs it, replacing earlier directives.
pub fn apply_directives(spec: &str) {
    let mut global = 0u8;
    let mut directives = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('=') {
            None => {
                if let Some(lvl) = Level::parse(part) {
                    global = lvl as u8;
                } else if part.eq_ignore_ascii_case("off") {
                    global = 0;
                }
            }
            Some((target, lvl)) => {
                let threshold = if lvl.trim().eq_ignore_ascii_case("off") {
                    0
                } else {
                    match Level::parse(lvl) {
                        Some(l) => l as u8,
                        None => continue,
                    }
                };
                directives.push((target.trim().to_owned(), threshold));
            }
        }
    }
    // Longer (more specific) prefixes win: sort so lookup scans once.
    directives.sort_by_key(|(t, _)| std::cmp::Reverse(t.len()));
    {
        let mut f = filter().lock().expect("filter poisoned");
        f.global = global;
        f.directives = directives;
    }
    recompute_max();
}

/// Initializes the filter from `PRMSEL_LOG` (or, failing that,
/// `RUST_LOG`). Safe to call more than once; later calls re-read the
/// environment.
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("PRMSEL_LOG").or_else(|_| std::env::var("RUST_LOG")) {
        apply_directives(&spec);
    }
}

/// Whether an event at `level` for `target` would print.
#[inline]
pub fn enabled(level: Level, target: &str) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if (level as u8) > max {
        return false;
    }
    let f = filter().lock().expect("filter poisoned");
    for (prefix, threshold) in &f.directives {
        if target.starts_with(prefix.as_str()) {
            return level as u8 <= *threshold;
        }
    }
    level as u8 <= f.global
}

/// Prints one event (already filtered by the caller / macros).
pub fn emit(level: Level, target: &str, message: &std::fmt::Arguments<'_>) {
    eprintln!("[{:<5} {target}] {message}", level.label());
}

/// A timed scope. On drop, the elapsed wall-clock time is recorded into
/// the `span.<name>.ns` histogram and, when `Trace` is enabled for
/// `obs::span`, an exit event is printed.
#[must_use = "a span measures until dropped; binding it to `_` drops immediately"]
pub struct Span {
    name: &'static str,
    start: Instant,
}

/// Opens a span named `name`.
pub fn span(name: &'static str) -> Span {
    Span { name, start: Instant::now() }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        crate::registry()
            .histogram(&format!("span.{}.ns", self.name))
            .record_duration(elapsed);
        if enabled(Level::Trace, "obs::span") {
            emit(
                Level::Trace,
                "obs::span",
                &format_args!("{} took {:.3} ms", self.name, elapsed.as_secs_f64() * 1e3),
            );
        }
    }
}

/// Logs at a given level with `format!` syntax; the event target is the
/// calling module's path.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $($arg:tt)+) => {{
        let lvl: $crate::Level = $lvl;
        if $crate::enabled(lvl, module_path!()) {
            $crate::trace::emit(lvl, module_path!(), &format_args!($($arg)+));
        }
    }};
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Error, $($arg)+) };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Warn, $($arg)+) };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Info, $($arg)+) };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Debug, $($arg)+) };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Trace, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Filter state is process-global; tests that mutate it serialize
    /// here and restore the everything-off default on exit.
    fn with_filter_lock(f: impl FnOnce()) {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f();
        apply_directives("off");
        set_max_level(None);
    }

    #[test]
    fn directives_filter_by_level_and_target() {
        with_filter_lock(|| {
            directives_filter_by_level_and_target_impl();
        });
    }

    fn directives_filter_by_level_and_target_impl() {
        apply_directives("warn");
        assert!(enabled(Level::Warn, "prmsel::learn"));
        assert!(enabled(Level::Error, "anywhere"));
        assert!(!enabled(Level::Info, "prmsel::learn"));

        apply_directives("info,prmsel::learn=trace,reldb=off");
        assert!(enabled(Level::Trace, "prmsel::learn::search"));
        assert!(enabled(Level::Info, "bayesnet::jointree"));
        assert!(!enabled(Level::Debug, "bayesnet::jointree"));
        assert!(!enabled(Level::Error, "reldb::exec"));

        apply_directives("off");
        assert!(!enabled(Level::Error, "prmsel"));

        set_max_level(Some(Level::Debug));
        assert!(enabled(Level::Debug, "x"));
        assert!(!enabled(Level::Trace, "x"));
        set_max_level(None);
        assert!(!enabled(Level::Error, "x"));
    }

    #[test]
    fn empty_and_whitespace_directives_are_ignored() {
        with_filter_lock(|| {
            // Empty parts contribute nothing; the spec below is just `info`.
            apply_directives(",, info , ,");
            assert!(enabled(Level::Info, "anywhere"));
            assert!(!enabled(Level::Debug, "anywhere"));
            // A fully empty spec leaves everything off.
            apply_directives("");
            assert!(!enabled(Level::Error, "anywhere"));
        });
    }

    #[test]
    fn unknown_levels_fall_back_without_clobbering() {
        with_filter_lock(|| {
            // An unknown global level is ignored (global stays off)...
            apply_directives("loud");
            assert!(!enabled(Level::Error, "x"));
            // ...and an unknown per-target level drops only that
            // directive, keeping the rest of the spec.
            apply_directives("warn,prmsel::learn=verbose,reldb=debug");
            assert!(enabled(Level::Warn, "prmsel::learn"));
            assert!(
                !enabled(Level::Info, "prmsel::learn"),
                "bad directive must not apply"
            );
            assert!(enabled(Level::Debug, "reldb::exec"));
        });
    }

    #[test]
    fn most_specific_module_prefix_wins() {
        with_filter_lock(|| {
            // Declaration order must not matter: the longest matching
            // prefix decides, for both widening and narrowing overrides.
            for spec in [
                "error,prmsel=warn,prmsel::learn=trace,prmsel::learn::search=off",
                "prmsel::learn::search=off,prmsel::learn=trace,prmsel=warn,error",
            ] {
                apply_directives(spec);
                assert!(enabled(Level::Warn, "prmsel::qebn"), "{spec}");
                assert!(!enabled(Level::Info, "prmsel::qebn"), "{spec}");
                assert!(enabled(Level::Trace, "prmsel::learn"), "{spec}");
                assert!(enabled(Level::Trace, "prmsel::learn::score"), "{spec}");
                assert!(!enabled(Level::Error, "prmsel::learn::search"), "{spec}");
                assert!(!enabled(Level::Warn, "reldb"), "{spec}");
                assert!(enabled(Level::Error, "reldb"), "{spec}");
            }
        });
    }

    #[test]
    fn spans_record_into_the_registry() {
        {
            let _s = span("trace_test_span");
        }
        let snap = crate::registry().snapshot();
        let h = snap.histogram("span.trace_test_span.ns").expect("span histogram");
        assert!(h.count >= 1);
    }
}
