//! Windowed time-series telemetry: a bounded ring of periodic registry
//! snapshots plus the derivations that turn cumulative counters into
//! *rates* and cumulative log₂ histograms into *windowed* quantiles.
//!
//! The registry (§ [`crate::registry`]) is cumulative-since-boot, which
//! answers "how has this process done overall" but not "what is it doing
//! *now*" — the question a long-lived estimator's operator (and the
//! drift watchdog in [`crate::watchdog`]) actually asks. This module adds
//! the time dimension without touching any hot path:
//!
//! * a background **sampler** thread ([`Sampler`]) takes one full
//!   registry snapshot every `PRMSEL_TS_INTERVAL_MS` (default 1000 ms)
//!   and pushes it into a fixed-capacity ring bounded by
//!   `PRMSEL_TS_WINDOW` samples (default 300 — five minutes at the
//!   default cadence), so memory is `window × registry size`, constant
//!   over any uptime;
//! * consecutive ring entries are differenced into [`WindowStats`]:
//!   counter deltas become per-second rates (queries/s, windowed
//!   plan/memo hit ratios), and histogram deltas are **exact** interval
//!   histograms — the log₂ buckets are cumulative counters, so bucket
//!   subtraction ([`crate::HistogramSnapshot::delta`]) reconstructs the
//!   interval's distribution, from which windowed p50/p99 fall out;
//! * estimation hot paths never touch any of this. The only shared state
//!   is the metrics registry they already write; the sampler's off gate
//!   ([`on`]) is one relaxed load, and the ring's short mutex is taken
//!   only by the sampler tick and by `/timeseries` scrapers.
//!
//! After every tick the sampler hands the newest window to
//! [`crate::watchdog::evaluate`], which turns drift into typed alerts.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::JsonWriter;
use crate::registry::{registry, HistogramSnapshot, Snapshot};

/// Default sampler cadence (`PRMSEL_TS_INTERVAL_MS`).
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(1000);

/// Default ring capacity in samples (`PRMSEL_TS_WINDOW`).
pub const DEFAULT_WINDOW: usize = 300;

/// Sampler cadence: `PRMSEL_TS_INTERVAL_MS`, default 1000 ms (clamped to
/// ≥ 10 ms — a sub-10 ms cadence would spend more time snapshotting than
/// sampling).
pub fn interval_from_env() -> Duration {
    let ms = std::env::var("PRMSEL_TS_INTERVAL_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_INTERVAL.as_millis() as u64);
    Duration::from_millis(ms.max(10))
}

/// Ring capacity: `PRMSEL_TS_WINDOW`, default 300 samples (≥ 2 — one
/// window needs two snapshots).
pub fn window_from_env() -> usize {
    std::env::var("PRMSEL_TS_WINDOW")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_WINDOW)
        .max(2)
}

/// One periodic observation: the whole registry at a point in time.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Milliseconds since the process-local epoch (first use of this
    /// module). Monotone — taken from [`Instant`], never wall clock.
    pub at_ms: u64,
    /// The full registry snapshot.
    pub snap: Snapshot,
}

/// Milliseconds since the process-local monotonic epoch.
pub fn now_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// The bounded snapshot ring.
pub struct TimeSeries {
    cap: usize,
    inner: Mutex<VecDeque<Arc<Sample>>>,
}

impl TimeSeries {
    /// An empty ring holding at most `cap` samples (min 2).
    pub fn new(cap: usize) -> TimeSeries {
        TimeSeries { cap: cap.max(2), inner: Mutex::new(VecDeque::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<Sample>>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends a sample, evicting the oldest beyond capacity.
    pub fn push(&self, sample: Sample) {
        let mut ring = self.lock();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(Arc::new(sample));
    }

    /// Every retained sample, oldest first. `Arc` clones — the snapshots
    /// themselves are shared, not copied.
    pub fn samples(&self) -> Vec<Arc<Sample>> {
        self.lock().iter().cloned().collect()
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<Arc<Sample>> {
        self.lock().back().cloned()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Ring capacity in samples.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Drops every sample (test isolation, `replace_model`).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// The last `n` windows (consecutive-sample differences), oldest
    /// first. Fewer are returned when the ring holds fewer samples.
    pub fn windows(&self, n: usize) -> Vec<WindowStats> {
        let samples = self.samples();
        let pairs = samples.len().saturating_sub(1).min(n);
        samples[samples.len() - 1 - pairs..]
            .windows(2)
            .map(|w| WindowStats::between(&w[0], &w[1]))
            .collect()
    }
}

/// The process-global ring (capacity from `PRMSEL_TS_WINDOW` at first
/// use).
pub fn series() -> &'static TimeSeries {
    static SERIES: OnceLock<TimeSeries> = OnceLock::new();
    SERIES.get_or_init(|| TimeSeries::new(window_from_env()))
}

/// Whether a sampler is currently running — one relaxed load, the same
/// cost discipline as the flight-recorder gate. Hot paths do not consult
/// this (they have nothing to do for the sampler); it exists so idle
/// periods cost nothing and so tests/endpoints can report sampler state.
pub fn on() -> bool {
    SAMPLING.load(Ordering::Relaxed)
}

static SAMPLING: AtomicBool = AtomicBool::new(false);

/// Takes one snapshot now, pushes it into the global ring, and runs the
/// watchdog over the newest window. The sampler thread calls this every
/// interval; tests call it directly for deterministic timing.
pub fn sample_now() {
    let sample = Sample { at_ms: now_ms(), snap: registry().snapshot() };
    series().push(sample);
    crate::counter!("obs.ts.samples").inc();
    let samples = series().samples();
    if samples.len() >= 2 {
        let w = WindowStats::between(
            &samples[samples.len() - 2],
            &samples[samples.len() - 1],
        );
        crate::watchdog::evaluate(&w);
    }
}

/// A running background sampler. Dropping it (or calling
/// [`Sampler::stop`]) stops the thread and joins it.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling at the environment cadence
    /// (`PRMSEL_TS_INTERVAL_MS`).
    pub fn start() -> Sampler {
        Sampler::start_with(interval_from_env())
    }

    /// Starts sampling every `interval`. Only one sampler should run at
    /// a time (a second one would double the tick rate; nothing breaks,
    /// but windows halve).
    pub fn start_with(interval: Duration) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        SAMPLING.store(true, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name("prmsel-ts-sampler".to_owned())
            .spawn(move || {
                // Anchor the first sample immediately so the first
                // window closes after one interval, not two.
                sample_now();
                let mut next = Instant::now() + interval;
                while !thread_stop.load(Ordering::Relaxed) {
                    // Sleep in short slices so stop() returns promptly
                    // even at multi-second intervals.
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep((next - now).min(Duration::from_millis(25)));
                        continue;
                    }
                    sample_now();
                    // Skip missed ticks rather than bursting to catch
                    // up — a stalled host should not fabricate windows.
                    while next <= Instant::now() {
                        next += interval;
                    }
                }
            })
            .expect("spawn timeseries sampler");
        Sampler { stop, handle: Some(handle) }
    }

    /// Stops the thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
            SAMPLING.store(false, Ordering::Relaxed);
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Derived statistics of one window (the interval between two ring
/// samples). Counter fields are deltas clamped at zero; ratio fields are
/// `None` when the window saw no relevant events.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Window start (ms since process epoch).
    pub t0_ms: u64,
    /// Window end.
    pub t1_ms: u64,
    /// Estimates answered in the window (`prm.estimate.calls` delta).
    pub queries: u64,
    /// Queries per second over the window.
    pub qps: f64,
    /// Interval histogram of `prm.estimate.ns` (warm + cold estimates);
    /// `latency.p50()`/`p99()` are the windowed latency quantiles.
    pub latency: HistogramSnapshot,
    /// Interval histogram of `quality.qerror_milli` (q-error × 1000).
    pub qerror: HistogramSnapshot,
    /// Plan-cache hit ratio over the window, if any lookups happened.
    pub plan_hit_ratio: Option<f64>,
    /// `P(E)` signature-memo hit ratio over the window.
    pub memo_hit_ratio: Option<f64>,
    /// Degradation-ladder fallback ratio over the window (fallback
    /// answers / ladder queries), if the ladder ran.
    pub fallback_ratio: Option<f64>,
    /// Guard panics in the window.
    pub guard_panics: u64,
}

/// Delta of counter `name` between two snapshots, clamped at zero (a
/// registry reset between samples must not wrap).
fn counter_delta(earlier: &Snapshot, later: &Snapshot, name: &str) -> u64 {
    later.counter(name).unwrap_or(0).saturating_sub(earlier.counter(name).unwrap_or(0))
}

/// Interval histogram of `name` between two snapshots (empty when the
/// histogram is absent from either).
fn hist_delta(earlier: &Snapshot, later: &Snapshot, name: &str) -> HistogramSnapshot {
    match (earlier.histogram(name), later.histogram(name)) {
        (Some(e), Some(l)) => l.delta(e),
        (None, Some(l)) => l.clone(),
        _ => HistogramSnapshot { count: 0, sum: 0, min: 0, max: 0, buckets: Vec::new() },
    }
}

fn ratio(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

impl WindowStats {
    /// Differences two samples (`earlier` must precede `later`).
    pub fn between(earlier: &Sample, later: &Sample) -> WindowStats {
        let dt_ms = later.at_ms.saturating_sub(earlier.at_ms).max(1);
        let queries = counter_delta(&earlier.snap, &later.snap, "prm.estimate.calls");
        let guard_queries =
            counter_delta(&earlier.snap, &later.snap, "prm.guard.queries");
        let fallback = counter_delta(&earlier.snap, &later.snap, "prm.guard.fallback");
        WindowStats {
            t0_ms: earlier.at_ms,
            t1_ms: later.at_ms,
            queries,
            qps: queries as f64 * 1000.0 / dt_ms as f64,
            latency: hist_delta(&earlier.snap, &later.snap, "prm.estimate.ns"),
            qerror: hist_delta(&earlier.snap, &later.snap, "quality.qerror_milli"),
            plan_hit_ratio: ratio(
                counter_delta(&earlier.snap, &later.snap, "prm.plan.hit"),
                counter_delta(&earlier.snap, &later.snap, "prm.plan.miss"),
            ),
            memo_hit_ratio: ratio(
                counter_delta(&earlier.snap, &later.snap, "prm.plan.reduce.hit"),
                counter_delta(&earlier.snap, &later.snap, "prm.plan.reduce.miss"),
            ),
            fallback_ratio: (guard_queries > 0)
                .then(|| fallback as f64 / guard_queries as f64),
            guard_panics: counter_delta(&earlier.snap, &later.snap, "prm.guard.panic"),
        }
    }

    /// Window length in milliseconds (≥ 1).
    pub fn dt_ms(&self) -> u64 {
        self.t1_ms.saturating_sub(self.t0_ms).max(1)
    }
}

/// Per-template windowed q-error: one entry per
/// `quality.qerror_milli{template=…}` series with activity in the
/// interval, as `(template hash label, interval histogram)`.
pub fn template_qerror_windows(
    earlier: &Sample,
    later: &Sample,
) -> Vec<(String, HistogramSnapshot)> {
    let mut out = Vec::new();
    for (name, l) in &later.snap.histograms {
        let (family, labels) = crate::openmetrics::split_labels(name);
        if family != "quality.qerror_milli" {
            continue;
        }
        let Some(tpl) = labels.iter().find(|(k, _)| k == "template").map(|(_, v)| v)
        else {
            continue;
        };
        let d = match earlier.snap.histogram(name) {
            Some(e) => l.delta(e),
            None => l.clone(),
        };
        if d.count > 0 {
            out.push((tpl.clone(), d));
        }
    }
    out
}

fn write_hist_summary(w: &mut JsonWriter, h: &HistogramSnapshot) {
    w.begin_object();
    w.key("n");
    w.uint(h.count);
    w.key("mean");
    w.float(h.mean());
    w.key("p50");
    w.uint(h.p50());
    w.key("p90");
    w.uint(h.p90());
    w.key("p99");
    w.uint(h.p99());
    w.end_object();
}

fn opt_ratio(w: &mut JsonWriter, key: &str, v: Option<f64>) {
    w.key(key);
    match v {
        Some(r) => w.float(r),
        None => w.float(f64::NAN), // renders as null
    }
}

/// Renders the last `n` windows of the global ring (plus per-template
/// q-error over the newest window and sampler metadata) as the
/// `/timeseries` JSON document.
pub fn to_json(n: usize) -> String {
    let samples = series().samples();
    let windows: Vec<WindowStats> =
        samples.windows(2).map(|w| WindowStats::between(&w[0], &w[1])).collect();
    let windows = &windows[windows.len().saturating_sub(n)..];

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("sampling");
    w.raw(if on() { "true" } else { "false" });
    w.key("interval_ms");
    w.uint(interval_from_env().as_millis() as u64);
    w.key("capacity");
    w.uint(series().capacity() as u64);
    w.key("samples");
    w.uint(samples.len() as u64);
    w.key("now_ms");
    w.uint(now_ms());
    w.key("windows");
    w.begin_array();
    for win in windows {
        w.begin_object();
        w.key("t0_ms");
        w.uint(win.t0_ms);
        w.key("t1_ms");
        w.uint(win.t1_ms);
        w.key("queries");
        w.uint(win.queries);
        w.key("qps");
        w.float(win.qps);
        w.key("latency_ns");
        write_hist_summary(&mut w, &win.latency);
        w.key("qerror_milli");
        write_hist_summary(&mut w, &win.qerror);
        opt_ratio(&mut w, "plan_hit_ratio", win.plan_hit_ratio);
        opt_ratio(&mut w, "memo_hit_ratio", win.memo_hit_ratio);
        opt_ratio(&mut w, "fallback_ratio", win.fallback_ratio);
        w.key("guard_panics");
        w.uint(win.guard_panics);
        w.end_object();
    }
    w.end_array();
    w.key("templates");
    w.begin_array();
    if samples.len() >= 2 {
        let (earlier, later) = (&samples[samples.len() - 2], &samples[samples.len() - 1]);
        for (tpl, h) in template_qerror_windows(earlier, later) {
            w.begin_object();
            w.key("template");
            w.string(&tpl);
            w.key("qerror_milli");
            write_hist_summary(&mut w, &h);
            w.end_object();
        }
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(counters: &[(&str, u64)], hist: &[(&str, &[u64])]) -> Snapshot {
        let mut s = Snapshot::default();
        for &(name, v) in counters {
            s.counters.push((name.to_owned(), v));
        }
        for &(name, obs) in hist {
            let h = crate::registry::Histogram::default();
            for &v in obs {
                h.record(v);
            }
            s.histograms.push((name.to_owned(), h.snapshot()));
        }
        s
    }

    #[test]
    fn window_rates_and_quantiles_derive_from_deltas() {
        let earlier = Sample {
            at_ms: 1000,
            snap: snap_with(
                &[
                    ("prm.estimate.calls", 100),
                    ("prm.plan.hit", 90),
                    ("prm.plan.miss", 10),
                ],
                &[("prm.estimate.ns", &[1000, 1000])],
            ),
        };
        let later = Sample {
            at_ms: 3000,
            snap: snap_with(
                &[
                    ("prm.estimate.calls", 300),
                    ("prm.plan.hit", 289),
                    ("prm.plan.miss", 11),
                ],
                &[("prm.estimate.ns", &[1000, 1000, 1000, 1000, 64_000])],
            ),
        };
        let w = WindowStats::between(&earlier, &later);
        assert_eq!((w.t0_ms, w.t1_ms, w.queries), (1000, 3000, 200));
        assert!((w.qps - 100.0).abs() < 1e-9, "{}", w.qps);
        // Interval latency: 2 obs at ~1 µs, one at ~64 µs.
        assert_eq!(w.latency.count, 3);
        let bound =
            |v| crate::registry::bucket_upper_bound(crate::registry::bucket_of(v));
        assert_eq!(w.latency.p50(), bound(1000));
        assert_eq!(w.latency.p99(), bound(64_000));
        // 199 hits / 1 miss in the window.
        assert!((w.plan_hit_ratio.unwrap() - 199.0 / 200.0).abs() < 1e-9);
        assert_eq!(w.memo_hit_ratio, None, "no memo counters in snapshots");
        assert_eq!(w.fallback_ratio, None, "ladder never ran");
    }

    #[test]
    fn window_survives_a_registry_reset_between_samples() {
        let earlier = Sample {
            at_ms: 0,
            snap: snap_with(
                &[("prm.estimate.calls", 500)],
                &[("prm.estimate.ns", &[100, 100, 100])],
            ),
        };
        let later = Sample {
            at_ms: 1000,
            snap: snap_with(
                &[("prm.estimate.calls", 20)],
                &[("prm.estimate.ns", &[100])],
            ),
        };
        let w = WindowStats::between(&earlier, &later);
        assert_eq!(w.queries, 0, "counter delta clamps");
        assert_eq!(w.qps, 0.0);
        assert_eq!(w.latency.count, 0, "bucket deltas clamp");
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let ts = TimeSeries::new(3);
        for i in 0..10u64 {
            ts.push(Sample { at_ms: i, snap: Snapshot::default() });
        }
        let samples = ts.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(
            samples.iter().map(|s| s.at_ms).collect::<Vec<_>>(),
            vec![7, 8, 9],
            "oldest evicted, order preserved"
        );
        assert_eq!(ts.latest().unwrap().at_ms, 9);
        ts.clear();
        assert!(ts.is_empty());
    }

    #[test]
    fn windows_pairs_consecutive_samples() {
        let ts = TimeSeries::new(8);
        for i in 0..5u64 {
            ts.push(Sample { at_ms: i * 1000, snap: Snapshot::default() });
        }
        let all = ts.windows(usize::MAX);
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|p| p[0].t1_ms == p[1].t0_ms));
        let last2 = ts.windows(2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[1].t1_ms, 4000);
        assert!(ts.windows(0).is_empty());
    }

    #[test]
    fn sampler_fills_the_global_ring_and_gates() {
        // Serialize against other tests using the global ring.
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        series().clear();
        assert!(!on());
        let sampler = Sampler::start_with(Duration::from_millis(20));
        assert!(on());
        let deadline = Instant::now() + Duration::from_secs(5);
        while series().len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        assert!(!on());
        let samples = series().samples();
        assert!(samples.len() >= 3, "sampler too slow: {}", samples.len());
        assert!(samples.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        // JSON renders and parses.
        let doc = to_json(16);
        let v = crate::json::parse(&doc).expect("timeseries JSON parses");
        assert!(v.get("samples").unwrap().as_u64().unwrap() >= 3);
        assert!(v.get("windows").unwrap().as_array().unwrap().len() >= 2);
        series().clear();
    }
}
