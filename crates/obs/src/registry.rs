//! The process-global metrics registry.
//!
//! Handles are `&'static` and updates are relaxed atomics, so metric
//! updates never contend with each other or with readers; only the first
//! registration of a name takes a lock. Snapshots read the same atomics,
//! so they are cheap, lock-free for the values themselves, and safe to
//! take at any time (values are monotone counters or last-write gauges;
//! a snapshot is not a consistent cut and does not need to be).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::json::JsonWriter;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets the value if it exceeds the current one.
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, and the last bucket is open-ended.
pub const N_BUCKETS: usize = 64;

/// A log₂-scale histogram of `u64` observations (latencies in ns, sizes,
/// counts). Relative error of any reconstructed quantile is < 2×, which
/// is plenty for order-of-magnitude latency and size tracking.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(N_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` (saturating for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Reads the current state. Buckets are read before `count`, and
    /// `count` is clamped to at least their sum: `record` bumps the
    /// bucket first, so a concurrent recorder could otherwise leave a
    /// snapshot whose cumulative buckets exceed its total — which an
    /// OpenMetrics lint rightly rejects.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect();
        let count = self.count().max(buckets.iter().map(|&(_, n)| n).sum());
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// `(inclusive upper bound, count)` for every non-empty bucket, in
    /// increasing bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile: the upper bound of the bucket holding
    /// the `⌈q·count⌉`-th observation.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        self.max
    }

    /// Median estimate (upper bound of the p50 bucket).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// p90 estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// p99 estimate — the tail the latency SLOs care about.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The observations recorded between `earlier` and `self` — exact,
    /// because the log₂ buckets are cumulative counters, so subtracting
    /// per-bucket counts of two snapshots of the *same* histogram yields
    /// the per-bucket counts of the interval.
    ///
    /// Every per-bucket difference is **clamped to 0**: a registry reset
    /// or `replace_model` between the two snapshots can leave `earlier`
    /// with larger counts than `self` (the same race class as the
    /// "+Inf below last bucket" scrape fix), and a window must never
    /// report negative activity. `count` is re-derived from the clamped
    /// buckets so quantiles stay consistent; `sum` saturates for the same
    /// reason. `min`/`max` are all-time extremes, not interval ones — the
    /// delta keeps `self`'s values as the best available bound.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len());
        let mut i = 0;
        for &(bound, n) in &self.buckets {
            // Advance through `earlier` (both are sorted by bound).
            let mut prev = 0;
            while i < earlier.buckets.len() && earlier.buckets[i].0 <= bound {
                if earlier.buckets[i].0 == bound {
                    prev = earlier.buckets[i].1;
                }
                i += 1;
            }
            let d = n.saturating_sub(prev);
            if d > 0 {
                buckets.push((bound, d));
            }
        }
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: if count == 0 { 0 } else { self.min },
            max: if count == 0 { 0 } else { self.max },
            buckets,
        }
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// A named collection of metrics.
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    fn new() -> Self {
        Registry { metrics: Mutex::new(BTreeMap::new()) }
    }

    /// Interns (registering on first use) the counter `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map =
            self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
        {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` already registered with another kind"),
        }
    }

    /// Interns the gauge `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map =
            self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
        {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` already registered with another kind"),
        }
    }

    /// Interns the histogram `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map =
            self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::default())))
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` already registered with another kind"),
        }
    }

    /// Reads every metric.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut snap = Snapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => {
                    snap.histograms.push((name.clone(), h.snapshot()))
                }
            }
        }
        snap
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Zeroes every registered metric. Test-only affordance: metric handles
/// are process-global, so integration tests reset between assertions
/// instead of fighting other tests' residue.
pub fn reset_for_tests() {
    let map =
        registry().metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for metric in map.values() {
        match metric {
            Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.bits.store(0f64.to_bits(), Ordering::Relaxed),
            Metric::Histogram(h) => {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
                h.min.store(u64::MAX, Ordering::Relaxed);
                h.max.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Point-in-time view of the whole registry (names sorted).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, state)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Name equality modulo OpenMetrics mangling: the exposition renders the
/// registry's `prm.plan.hit` as `prm_plan_hit`, and the scrape parser
/// cannot un-mangle, so snapshot lookups treat `.` and `_` as the same
/// character — a snapshot answers the same dotted name whether it came
/// from the local registry or a remote `/metrics` scrape.
fn name_eq(a: &str, b: &str) -> bool {
    a.len() == b.len()
        && a.bytes()
            .zip(b.bytes())
            .all(|(x, y)| x == y || (x == b'.' || x == b'_') && (y == b'.' || y == b'_'))
}

impl Snapshot {
    /// Value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| name_eq(n, name)).map(|&(_, v)| v)
    }

    /// Value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| name_eq(n, name)).map(|&(_, v)| v)
    }

    /// State of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| name_eq(n, name)).map(|(_, h)| h)
    }

    /// Machine-readable JSON rendering (stable key order).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, v) in &self.counters {
            w.key(name);
            w.uint(*v);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, v) in &self.gauges {
            w.key(name);
            w.float(*v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.uint(h.count);
            w.key("sum");
            w.uint(h.sum);
            w.key("min");
            w.uint(h.min);
            w.key("max");
            w.uint(h.max);
            w.key("mean");
            w.float(h.mean());
            w.key("p50");
            w.uint(h.p50());
            w.key("p90");
            w.uint(h.p90());
            w.key("p99");
            w.uint(h.p99());
            w.key("buckets");
            w.begin_array();
            for &(bound, n) in &h.buckets {
                w.begin_object();
                w.key("le");
                w.uint(bound);
                w.key("n");
                w.uint(n);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Human-readable table rendering.
    pub fn to_pretty(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<48} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<48} {v:.4}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<48} n={} mean={:.1} min={} p50={} p90={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max,
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics registered)\n");
        }
        out
    }
}

/// Interns a counter once per call site and returns the `&'static` handle.
///
/// ```
/// obs::counter!("docs.counter.example").add(3);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Interns a gauge once per call site and returns the `&'static` handle.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Interns a histogram once per call site and returns the `&'static` handle.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_exact_under_concurrency() {
        let c = registry().counter("test.registry.concurrent");
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }

    #[test]
    fn interning_returns_the_same_handle() {
        let a = registry().counter("test.registry.interned") as *const Counter;
        let b = registry().counter("test.registry.interned") as *const Counter;
        assert_eq!(a, b);
        let m1 = counter!("test.registry.macro") as *const Counter;
        let m2 = counter!("test.registry.macro") as *const Counter;
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        registry().counter("test.registry.mismatch");
        registry().gauge("test.registry.mismatch");
    }

    #[test]
    fn gauge_set_max_is_monotone() {
        let g = Gauge::default();
        g.set_max(3.0);
        g.set_max(1.0);
        assert_eq!(g.get(), 3.0);
        g.set_max(7.5);
        assert_eq!(g.get(), 7.5);
        g.set(2.0);
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        // Every value is ≤ its bucket's upper bound and (for i ≥ 1)
        // > the previous bucket's upper bound.
        for v in [0u64, 1, 2, 5, 100, 4096, 1 << 40, u64::MAX] {
            let i = bucket_of(v);
            assert!(v <= bucket_upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 10, 100, 1000, 1000, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 3111);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 3111.0 / 7.0).abs() < 1e-9);
        // 1000 lands in bucket (512, 1023]; median of 7 obs is the 4th.
        assert_eq!(s.quantile(0.5), bucket_upper_bound(bucket_of(100)));
        assert_eq!(s.quantile(1.0), bucket_upper_bound(bucket_of(1000)));
        assert_eq!(s.quantile(0.0), 0);
        // p50/p90/p99 are shorthands for the corresponding quantiles; the
        // 90th and 99th percentiles of 7 obs are both the last (1000).
        assert_eq!(s.p50(), s.quantile(0.5));
        assert_eq!(s.p90(), bucket_upper_bound(bucket_of(1000)));
        assert_eq!(s.p99(), bucket_upper_bound(bucket_of(1000)));

        let empty = Histogram::default().snapshot();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.min, 0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn snapshot_json_round_trips_through_a_parser() {
        let r = registry();
        r.counter("test.json.counter").add(42);
        r.gauge("test.json.gauge").set(1.25);
        r.histogram("test.json.hist").record(300);
        let json = registry().snapshot().to_json();

        let v = crate::json::parse(&json).expect("snapshot JSON must parse");
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("test.json.counter").unwrap().as_u64(), Some(42));
        let gauges = v.get("gauges").unwrap();
        assert_eq!(gauges.get("test.json.gauge").unwrap().as_f64(), Some(1.25));
        let hist = v.get("histograms").unwrap().get("test.json.hist").unwrap();
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(300));
        let buckets = hist.get("buckets").unwrap().as_array().unwrap();
        assert!(!buckets.is_empty());
    }

    #[test]
    fn histogram_delta_is_exact_between_snapshots() {
        let h = Histogram::default();
        for v in [1u64, 10, 100] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [10u64, 1000, 1000] {
            h.record(v);
        }
        let later = h.snapshot();
        let d = later.delta(&earlier);
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 2010);
        // The interval holds one obs in the 10-bucket, two in the
        // 1000-bucket; quantiles reconstruct from exactly those.
        assert_eq!(d.quantile(0.3), bucket_upper_bound(bucket_of(10)));
        assert_eq!(d.p99(), bucket_upper_bound(bucket_of(1000)));
        // Self-delta is empty.
        let zero = later.delta(&later);
        assert_eq!(zero.count, 0);
        assert_eq!(zero.sum, 0);
        assert!(zero.buckets.is_empty());
        assert_eq!(zero.quantile(0.5), 0);
    }

    #[test]
    fn histogram_delta_clamps_negative_buckets_after_a_reset_race() {
        // Regression: a registry reset (replace_model, reset_for_tests)
        // between two sampler ticks makes the *earlier* snapshot larger
        // than the later one. Every bucket difference must clamp to 0 —
        // a negative window count would render as a u64 wraparound and
        // poison every rate/quantile derived from it.
        let h = Histogram::default();
        for v in [5u64, 5, 5, 700, 700] {
            h.record(v);
        }
        let earlier = h.snapshot();
        // Simulate the reset: a fresh histogram with fewer observations,
        // including a bucket the earlier snapshot never saw.
        let h2 = Histogram::default();
        h2.record(5);
        h2.record(1_000_000);
        let later = h2.snapshot();
        let d = later.delta(&earlier);
        // 5-bucket: 1 - 3 clamps to 0; 700-bucket: 0 - 2 clamps to 0;
        // the new 1M bucket survives as 1 - 0 = 1.
        assert_eq!(d.count, 1);
        assert_eq!(d.buckets, vec![(bucket_upper_bound(bucket_of(1_000_000)), 1)]);
        // Fully-reset case: nothing recorded after the reset — every
        // field (including the saturating sum) pins to zero.
        let empty = Histogram::default().snapshot().delta(&earlier);
        assert_eq!(empty.count, 0);
        assert!(empty.buckets.is_empty());
        assert_eq!(empty.sum, 0, "sum saturates instead of wrapping");
        assert_eq!(empty.min, 0);
        assert_eq!(empty.max, 0);
    }
}
