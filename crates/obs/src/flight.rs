//! Per-query flight recorder.
//!
//! The metrics registry aggregates process-global counters and
//! histograms; it answers "how is the fleet doing" but not "why was
//! *this* query slow / badly estimated". The flight recorder closes that
//! gap: while recording is on, each estimate builds a [`QueryTrace`] —
//! phase timings, per-elimination-step records with factor scopes and
//! widths, plan-cache hit/miss, decoded predicate masks, the final
//! estimate, and (when ground truth is later supplied) the q-error —
//! and deposits it in a bounded ring ([`TraceRing`]) that retains the
//! most recent traces plus the worst-by-latency and worst-by-q-error
//! ones.
//!
//! ## Cost discipline
//!
//! Recording is off by default. Every hook first checks a single relaxed
//! atomic ([`on`]); when recording is off no thread-local is touched and
//! nothing allocates, so the hooks can live permanently on the warm
//! estimate path (the `trace_overhead` bench gates the disabled-hook
//! cost at < 2% of warm latency). Label construction is lazy: [`begin`]
//! takes a closure that only runs when a trace is actually started.
//!
//! ## Threading
//!
//! The live trace is thread-local, so `estimate_batch` workers record
//! concurrently without coordination; query ids come from one process
//! atomic, so they stay unique under fan-out. Only [`finish`] (and the
//! later quality attach) takes the ring lock.
//!
//! ## Exporters
//!
//! * [`QueryTrace::to_explain_tree`] — a human-readable `EXPLAIN`-style
//!   tree (the `prmsel explain` output);
//! * [`to_chrome_trace`] — Chrome `trace_event` JSON, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) (each
//!   query renders as one track of nested slices).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonWriter;

/// Global recording switch (one relaxed load on the hot path).
static RECORDING: AtomicBool = AtomicBool::new(false);

/// Process-unique query-id source.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Whether recording is on. All other hooks no-op when this is false.
#[inline]
pub fn on() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Turns recording on or off (traces already in the ring are kept).
pub fn set_recording(enabled: bool) {
    RECORDING.store(enabled, Ordering::Relaxed);
}

/// The process timing epoch; all trace timestamps are nanoseconds since
/// the first call.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process timing epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// One timed phase of a query (compile, decode, eliminate, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRec {
    /// Phase name (static: phases are code locations, not data).
    pub name: &'static str,
    /// Start, ns since the process epoch.
    pub start_ns: u64,
    /// Wall-clock duration in ns.
    pub dur_ns: u64,
    /// Nesting depth at open time (0 = top level) — for tree rendering.
    pub depth: usize,
}

/// One variable elimination inside the inference replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ElimStepRec {
    /// Variable summed out.
    pub var: usize,
    /// Number of factors whose scopes contained it.
    pub n_factors: usize,
    /// Scope of the resulting (post-marginalization) factor.
    pub scope: Vec<usize>,
    /// Cells in the resulting factor (its dense width).
    pub width: u64,
    /// Start, ns since the process epoch.
    pub start_ns: u64,
    /// Wall-clock duration in ns.
    pub dur_ns: u64,
}

/// One decoded predicate mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredMaskRec {
    /// Network node the mask applies to.
    pub node: usize,
    /// Number of allowed codes.
    pub allowed: usize,
    /// Cardinality of the node's domain.
    pub card: usize,
}

/// The flight record of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Process-unique query id (unique across threads).
    pub id: u64,
    /// Human-readable query label.
    pub label: String,
    /// Start, ns since the process epoch.
    pub start_ns: u64,
    /// End-to-end duration in ns (set by [`finish`]).
    pub total_ns: u64,
    /// Timed phases, in open order.
    pub phases: Vec<PhaseRec>,
    /// Per-elimination-step records, in execution order.
    pub elim_steps: Vec<ElimStepRec>,
    /// Decoded predicate masks, in predicate order.
    pub pred_masks: Vec<PredMaskRec>,
    /// `Some(true)` = plan-cache hit, `Some(false)` = miss + compile,
    /// `None` = the path did not consult the plan cache.
    pub plan_hit: Option<bool>,
    /// The final estimate.
    pub estimate: Option<f64>,
    /// Exact result size, when later supplied.
    pub truth: Option<u64>,
    /// q-error `max(S/Ŝ, Ŝ/S)` (sides clamped to ≥ 1), when truth known.
    pub q_error: Option<f64>,
}

impl QueryTrace {
    fn new(id: u64, label: String) -> Self {
        QueryTrace {
            id,
            label,
            start_ns: now_ns(),
            total_ns: 0,
            phases: Vec::new(),
            elim_steps: Vec::new(),
            pred_masks: Vec::new(),
            plan_hit: None,
            estimate: None,
            truth: None,
            q_error: None,
        }
    }
}

/// The live (being-recorded) trace of this thread.
struct ActiveTrace {
    trace: QueryTrace,
    /// Indices into `trace.phases` of the currently open phases.
    open: Vec<usize>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Box<ActiveTrace>>> = const { RefCell::new(None) };
    /// Id of the last trace this thread finished (quality attach target).
    static LAST_FINISHED: Cell<u64> = const { Cell::new(0) };
}

/// True when recording is on **and** this thread has a live trace — the
/// gate instrumentation uses before doing per-event work.
#[inline]
pub fn active() -> bool {
    on() && ACTIVE.with(|a| a.borrow().is_some())
}

/// Starts a trace for one query on this thread and returns whether it is
/// being recorded. `label` is only invoked when recording is on. A stale
/// live trace (a prior query that errored before [`finish`]) is
/// discarded.
pub fn begin(label: impl FnOnce() -> String) -> bool {
    if !on() {
        return false;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let trace = QueryTrace::new(id, label());
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(Box::new(ActiveTrace { trace, open: Vec::new() }))
    });
    true
}

/// Closes this thread's live trace with its final `estimate` and deposits
/// it in the ring. No-op when nothing is being recorded.
pub fn finish(estimate: f64) {
    if !on() {
        return;
    }
    let Some(mut active) = ACTIVE.with(|a| a.borrow_mut().take()) else {
        return;
    };
    active.trace.estimate = Some(estimate);
    active.trace.total_ns = now_ns().saturating_sub(active.trace.start_ns);
    // Close any phase left open by an early return.
    while let Some(idx) = active.open.pop() {
        let p = &mut active.trace.phases[idx];
        p.dur_ns = now_ns().saturating_sub(p.start_ns);
    }
    LAST_FINISHED.with(|l| l.set(active.trace.id));
    ring().push(active.trace);
}

/// Opens a timed phase on the live trace. The phase closes when the
/// returned guard drops. Free (no thread-local touched) when recording is
/// off.
#[must_use = "a phase measures until dropped"]
pub fn phase(name: &'static str) -> PhaseGuard {
    if !on() {
        return PhaseGuard { armed: false };
    }
    let armed = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let Some(active) = a.as_mut() else { return false };
        let depth = active.open.len();
        let idx = active.trace.phases.len();
        active.trace.phases.push(PhaseRec { name, start_ns: now_ns(), dur_ns: 0, depth });
        active.open.push(idx);
        true
    });
    PhaseGuard { armed }
}

/// Guard returned by [`phase`]; closes the phase on drop.
pub struct PhaseGuard {
    armed: bool,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            let Some(active) = a.as_mut() else { return };
            let Some(idx) = active.open.pop() else { return };
            let p = &mut active.trace.phases[idx];
            p.dur_ns = now_ns().saturating_sub(p.start_ns);
        });
    }
}

/// Records the plan-cache outcome on the live trace.
pub fn plan_cache(hit: bool) {
    if !on() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            active.trace.plan_hit = Some(hit);
        }
    });
}

/// Records one decoded predicate mask on the live trace.
pub fn pred_mask(node: usize, allowed: usize, card: usize) {
    if !on() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            active.trace.pred_masks.push(PredMaskRec { node, allowed, card });
        }
    });
}

/// Records one elimination step on the live trace. Callers should gate on
/// [`active`] so scope/width extraction is skipped when off.
pub fn elim_step(
    var: usize,
    n_factors: usize,
    scope: &[usize],
    width: u64,
    start_ns: u64,
    dur_ns: u64,
) {
    if !on() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            active.trace.elim_steps.push(ElimStepRec {
                var,
                n_factors,
                scope: scope.to_vec(),
                width,
                start_ns,
                dur_ns,
            });
        }
    });
}

/// Id of the trace this thread finished most recently (`0` = none yet).
/// The race-free way to retrieve a trace you just recorded — unlike
/// [`TraceRing::latest`], concurrent recorders on other threads cannot
/// interleave.
pub fn last_finished_id() -> u64 {
    LAST_FINISHED.with(|l| l.get())
}

/// Attaches ground truth (and the derived q-error) to the trace this
/// thread finished most recently. Suite evaluators estimate and then
/// score on the same worker thread, so the last-finished trace is the
/// right target.
pub fn attach_quality(truth: u64, q_error: f64) {
    if !on() {
        return;
    }
    let id = LAST_FINISHED.with(|l| l.get());
    if id == 0 {
        return;
    }
    ring().attach_quality(id, truth, q_error);
}

// ---------------------------------------------------------------------
// The ring.
// ---------------------------------------------------------------------

/// Default ring capacity when `PRMSEL_TRACE_RING` is unset.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Bounded store of finished traces: the `capacity` most recent, plus
/// the worst-by-latency and worst-by-q-error traces pinned so a burst of
/// healthy queries cannot rotate the interesting ones out.
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    capacity: usize,
    recent: VecDeque<QueryTrace>,
    worst_latency: Option<QueryTrace>,
    worst_q_error: Option<QueryTrace>,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        TraceRing {
            inner: Mutex::new(RingInner {
                capacity,
                recent: VecDeque::new(),
                worst_latency: None,
                worst_q_error: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push(&self, trace: QueryTrace) {
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return;
        }
        inner.recent.push_back(trace);
        while inner.recent.len() > inner.capacity {
            let evicted = inner.recent.pop_front().expect("ring is non-empty");
            inner.consider_pin(evicted);
        }
    }

    fn attach_quality(&self, id: u64, truth: u64, q_error: f64) {
        let mut inner = self.lock();
        // Most recently finished → search from the back.
        if let Some(t) = inner.recent.iter_mut().rev().find(|t| t.id == id) {
            t.truth = Some(truth);
            t.q_error = Some(q_error);
        }
    }

    /// Every retained trace: pinned worst cases first, then the recent
    /// window in finish order (deduplicated by id).
    pub fn snapshot(&self) -> Vec<QueryTrace> {
        let inner = self.lock();
        let mut out: Vec<QueryTrace> = Vec::with_capacity(inner.recent.len() + 2);
        let pinned = inner
            .worst_latency
            .iter()
            .chain(inner.worst_q_error.iter())
            .chain(inner.recent.iter());
        for t in pinned {
            if !out.iter().any(|o| o.id == t.id) {
                out.push(t.clone());
            }
        }
        out
    }

    /// The most recently finished trace, if any.
    pub fn latest(&self) -> Option<QueryTrace> {
        self.lock().recent.back().cloned()
    }

    /// The trace with `id`, if retained.
    pub fn find(&self, id: u64) -> Option<QueryTrace> {
        let inner = self.lock();
        inner
            .recent
            .iter()
            .rev()
            .chain(inner.worst_latency.iter())
            .chain(inner.worst_q_error.iter())
            .find(|t| t.id == id)
            .cloned()
    }

    /// Number of retained traces (recent window + distinct pinned).
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.lock().recent.is_empty()
    }

    /// Drops every retained trace (capacity is kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.recent.clear();
        inner.worst_latency = None;
        inner.worst_q_error = None;
    }

    /// The pinned worst traces: `(worst by latency, worst by q-error)`.
    /// A trace is pinned when it is evicted from the recent window while
    /// being the worst seen so far on its axis, so a trace still inside
    /// the window may be worse than either pin — callers wanting the true
    /// worst should scan [`TraceRing::snapshot`] too.
    pub fn worst(&self) -> (Option<QueryTrace>, Option<QueryTrace>) {
        let inner = self.lock();
        (inner.worst_latency.clone(), inner.worst_q_error.clone())
    }

    /// Changes the recent-window capacity, evicting oldest entries into
    /// the pinned slots if over the new bound. `0` disables retention.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        while inner.recent.len() > capacity {
            let evicted = inner.recent.pop_front().expect("ring is non-empty");
            inner.consider_pin(evicted);
        }
    }
}

impl RingInner {
    /// An evicted trace survives if it is the worst seen so far on either
    /// axis.
    fn consider_pin(&mut self, evicted: QueryTrace) {
        let slower =
            self.worst_latency.as_ref().is_none_or(|w| evicted.total_ns > w.total_ns);
        if slower {
            self.worst_latency = Some(evicted.clone());
        }
        if let Some(q) = evicted.q_error {
            let worse =
                self.worst_q_error.as_ref().is_none_or(|w| q > w.q_error.unwrap_or(0.0));
            if worse {
                self.worst_q_error = Some(evicted);
            }
        }
    }
}

/// The process-global trace ring, sized by `PRMSEL_TRACE_RING` (default
/// [`DEFAULT_RING_CAPACITY`]) at first use.
pub fn ring() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(|| {
        let capacity = std::env::var("PRMSEL_TRACE_RING")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_RING_CAPACITY);
        TraceRing::new(capacity)
    })
}

// ---------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------

fn fmt_us(ns: u64) -> String {
    format!("{:.1} us", ns as f64 / 1e3)
}

impl QueryTrace {
    /// Renders the trace as a human-readable `EXPLAIN`-style tree: plan
    /// cache outcome, phases with timings, per-elimination-step factor
    /// scopes and widths, decoded predicate masks, and the estimate plus
    /// q-error when truth is known.
    pub fn to_explain_tree(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query #{}: {}  [{}]",
            self.id,
            self.label,
            fmt_us(self.total_ns)
        );
        let _ = writeln!(
            out,
            "├─ plan cache: {}",
            match self.plan_hit {
                Some(true) => "HIT (replay only)",
                Some(false) => "MISS (compiled this call)",
                None => "not consulted",
            }
        );
        if !self.pred_masks.is_empty() {
            let _ = writeln!(out, "├─ predicate masks:");
            for m in &self.pred_masks {
                let _ = writeln!(
                    out,
                    "│    node v{}: {}/{} codes allowed",
                    m.node, m.allowed, m.card
                );
            }
        }
        for p in &self.phases {
            let indent = "  ".repeat(p.depth);
            let _ = writeln!(out, "├─ {indent}phase {:<12} {}", p.name, fmt_us(p.dur_ns));
        }
        if !self.elim_steps.is_empty() {
            let _ = writeln!(out, "├─ elimination ({} steps):", self.elim_steps.len());
            for (i, s) in self.elim_steps.iter().enumerate() {
                let scope: Vec<String> =
                    s.scope.iter().map(|v| format!("v{v}")).collect();
                let _ = writeln!(
                    out,
                    "│    step {:>2}: sum out v{} ({} factors -> scope {{{}}}, width {})  {}",
                    i + 1,
                    s.var,
                    s.n_factors,
                    scope.join(","),
                    s.width,
                    fmt_us(s.dur_ns)
                );
            }
        }
        match self.estimate {
            Some(e) => {
                let _ = writeln!(out, "├─ estimate: {e:.1}");
            }
            None => {
                let _ = writeln!(out, "├─ estimate: (not finished)");
            }
        }
        match (self.truth, self.q_error) {
            (Some(t), Some(q)) => {
                let _ = writeln!(out, "└─ truth: {t}  q-error: {q:.2}");
            }
            _ => {
                let _ = writeln!(out, "└─ truth: (not supplied)");
            }
        }
        out
    }

    /// Appends this trace's Chrome `trace_event` complete events (`"ph":
    /// "X"`, timestamps in microseconds) to an open JSON array. Each
    /// query renders as its own track (`tid` = query id).
    fn write_chrome_events(&self, w: &mut JsonWriter) {
        let us = |ns: u64| ns as f64 / 1e3;
        let mut event = |name: &str,
                         cat: &str,
                         start_ns: u64,
                         dur_ns: u64,
                         args: &[(&str, String)]| {
            w.begin_object();
            w.key("name");
            w.string(name);
            w.key("cat");
            w.string(cat);
            w.key("ph");
            w.string("X");
            w.key("ts");
            w.float(us(start_ns));
            w.key("dur");
            w.float(us(dur_ns));
            w.key("pid");
            w.uint(1);
            w.key("tid");
            w.uint(self.id);
            if !args.is_empty() {
                w.key("args");
                w.begin_object();
                for (k, v) in args {
                    w.key(k);
                    w.string(v);
                }
                w.end_object();
            }
            w.end_object();
        };
        let mut args: Vec<(&str, String)> = vec![(
            "plan",
            match self.plan_hit {
                Some(true) => "hit".to_owned(),
                Some(false) => "miss".to_owned(),
                None => "-".to_owned(),
            },
        )];
        if let Some(e) = self.estimate {
            args.push(("estimate", format!("{e}")));
        }
        if let Some(q) = self.q_error {
            args.push(("q_error", format!("{q}")));
        }
        event(
            &format!("query {}", self.label),
            "query",
            self.start_ns,
            self.total_ns,
            &args,
        );
        for p in &self.phases {
            event(p.name, "phase", p.start_ns, p.dur_ns, &[]);
        }
        for s in &self.elim_steps {
            event(
                &format!("sum out v{}", s.var),
                "elim",
                s.start_ns,
                s.dur_ns,
                &[
                    ("factors", s.n_factors.to_string()),
                    ("width", s.width.to_string()),
                    (
                        "scope",
                        format!(
                            "[{}]",
                            s.scope
                                .iter()
                                .map(|v| v.to_string())
                                .collect::<Vec<_>>()
                                .join(",")
                        ),
                    ),
                ],
            );
        }
    }

    /// Number of Chrome events this trace exports (1 per query + 1 per
    /// phase + 1 per elimination step).
    pub fn chrome_event_count(&self) -> usize {
        1 + self.phases.len() + self.elim_steps.len()
    }
}

/// Renders traces as a plain JSON array of summary objects — the
/// `/traces` HTTP endpoint payload. Per trace: id, label, timing, plan
/// cache outcome, estimate/truth/q-error, the phase list with durations,
/// and counts of elimination steps and predicate masks (full step detail
/// stays in the Chrome export, which has a viewer for it).
pub fn to_json(traces: &[QueryTrace]) -> String {
    let mut w = JsonWriter::new();
    w.begin_array();
    for t in traces {
        w.begin_object();
        w.key("id");
        w.uint(t.id);
        w.key("label");
        w.string(&t.label);
        w.key("start_ns");
        w.uint(t.start_ns);
        w.key("total_ns");
        w.uint(t.total_ns);
        w.key("plan");
        match t.plan_hit {
            Some(true) => w.string("hit"),
            Some(false) => w.string("miss"),
            None => w.raw("null"),
        }
        w.key("estimate");
        match t.estimate {
            Some(e) => w.float(e),
            None => w.raw("null"),
        }
        w.key("truth");
        match t.truth {
            Some(v) => w.uint(v),
            None => w.raw("null"),
        }
        w.key("q_error");
        match t.q_error {
            Some(q) => w.float(q),
            None => w.raw("null"),
        }
        w.key("phases");
        w.begin_array();
        for p in &t.phases {
            w.begin_object();
            w.key("name");
            w.string(p.name);
            w.key("dur_ns");
            w.uint(p.dur_ns);
            w.key("depth");
            w.uint(p.depth as u64);
            w.end_object();
        }
        w.end_array();
        w.key("elim_steps");
        w.uint(t.elim_steps.len() as u64);
        w.key("pred_masks");
        w.uint(t.pred_masks.len() as u64);
        w.end_object();
    }
    w.end_array();
    w.finish()
}

/// Renders traces as one Chrome `trace_event` JSON document (the object
/// form, `{"traceEvents": [...]}`), loadable in `chrome://tracing` and
/// Perfetto.
pub fn to_chrome_trace(traces: &[QueryTrace]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit");
    w.string("ns");
    w.key("traceEvents");
    w.begin_array();
    for t in traces {
        t.write_chrome_events(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recording is process-global; tests that toggle it serialize here.
    fn with_recording<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_recording(true);
        let out = f();
        set_recording(false);
        out
    }

    fn record_one(label: &str, estimate: f64) -> u64 {
        assert!(begin(|| label.to_owned()));
        {
            let _p = phase("decode");
            pred_mask(3, 2, 18);
        }
        {
            let _p = phase("eliminate");
            elim_step(5, 2, &[1, 3], 126, now_ns(), 1_000);
        }
        plan_cache(true);
        finish(estimate);
        ring().latest().expect("trace retained").id
    }

    #[test]
    fn hooks_are_inert_when_off() {
        assert!(!on());
        assert!(!begin(|| panic!("label must not be built")));
        let _p = phase("never");
        pred_mask(0, 1, 2);
        elim_step(0, 1, &[], 1, 0, 0);
        plan_cache(true);
        finish(1.0);
        assert!(!active());
    }

    #[test]
    fn records_phases_steps_and_quality() {
        with_recording(|| {
            ring().clear();
            let id = record_one("t JOIN a", 42.0);
            attach_quality(21, 2.0);
            let t = ring().find(id).expect("trace in ring");
            assert_eq!(t.label, "t JOIN a");
            assert_eq!(t.phases.len(), 2);
            assert_eq!(t.phases[0].name, "decode");
            assert_eq!(t.elim_steps.len(), 1);
            assert_eq!(t.elim_steps[0].scope, vec![1, 3]);
            assert_eq!(t.elim_steps[0].width, 126);
            assert_eq!(t.pred_masks, vec![PredMaskRec { node: 3, allowed: 2, card: 18 }]);
            assert_eq!(t.plan_hit, Some(true));
            assert_eq!(t.estimate, Some(42.0));
            assert_eq!(t.truth, Some(21));
            assert_eq!(t.q_error, Some(2.0));
            let tree = t.to_explain_tree();
            assert!(tree.contains("plan cache: HIT"), "{tree}");
            assert!(tree.contains("width 126"), "{tree}");
            assert!(tree.contains("q-error: 2.00"), "{tree}");
        });
    }

    #[test]
    fn ring_retains_recent_and_worst() {
        with_recording(|| {
            let r = ring();
            r.clear();
            r.set_capacity(2);
            // A slow, badly-estimated query that will be evicted...
            assert!(begin(|| "slow".to_owned()));
            ACTIVE.with(|a| {
                a.borrow_mut().as_mut().unwrap().trace.start_ns =
                    now_ns().saturating_sub(5_000_000_000);
            });
            finish(1.0);
            attach_quality(1_000, 1_000.0);
            // ...by a burst of healthy ones.
            for i in 0..4 {
                record_one(&format!("fast {i}"), 1.0);
                attach_quality(1, 1.0);
            }
            let snap = r.snapshot();
            let labels: Vec<&str> = snap.iter().map(|t| t.label.as_str()).collect();
            assert!(labels.contains(&"slow"), "worst trace evicted: {labels:?}");
            assert!(labels.contains(&"fast 3"), "most recent missing: {labels:?}");
            assert_eq!(snap.iter().filter(|t| t.label == "slow").count(), 1);
            let worst = snap.iter().find(|t| t.label == "slow").unwrap();
            assert_eq!(worst.q_error, Some(1_000.0));
            r.set_capacity(DEFAULT_RING_CAPACITY);
            r.clear();
        });
    }

    #[test]
    fn stale_trace_is_discarded_by_the_next_begin() {
        with_recording(|| {
            ring().clear();
            assert!(begin(|| "errored".to_owned()));
            // No finish — simulates an estimate that returned Err.
            let id = record_one("after error", 7.0);
            assert_eq!(ring().find(id).unwrap().label, "after error");
            assert!(ring().snapshot().iter().all(|t| t.label != "errored"));
        });
    }

    #[test]
    fn chrome_export_counts_and_escapes() {
        with_recording(|| {
            ring().clear();
            let id = record_one("census \"age\"", 9.0);
            let t = ring().find(id).unwrap();
            let json = to_chrome_trace(std::slice::from_ref(&t));
            assert!(json.starts_with('{') && json.ends_with('}'));
            assert_eq!(json.matches("\"ph\":\"X\"").count(), t.chrome_event_count());
            assert!(json.contains("census \\\"age\\\""), "{json}");
        });
    }
}
