//! OpenMetrics / Prometheus text exposition of a registry [`Snapshot`],
//! plus the matching parser and lint.
//!
//! Three consumers share this module:
//!
//! * the `/metrics` endpoint ([`render`]) — what Prometheus scrapes;
//! * `prmsel stats --from-url` ([`parse`]) — rebuilds a [`Snapshot`] from
//!   a live process's exposition so the existing renderers work on it;
//! * tests and CI smoke scripts ([`lint`]) — validate that every scrape
//!   is well-formed (names, escaping, histogram cumulativity, `# EOF`).
//!
//! ## Name mapping
//!
//! Registry names are dotted (`prm.plan.hit`); the exposition format
//! allows `[a-zA-Z_:][a-zA-Z0-9_:]*`, so every invalid character becomes
//! `_` (`prm_plan_hit`). Counters gain the conventional `_total` suffix;
//! histograms render as cumulative `_bucket{le="..."}` series (the log₂
//! bucket upper bounds are inclusive, exactly the `le` contract) plus
//! `_sum` and `_count`.
//!
//! ## Labels
//!
//! The registry itself is label-unaware; labeled series are registered
//! under a canonical `family{key="value"}` name built by [`labeled`]
//! (escaping `\`, `"`, and newlines per the exposition format). The
//! renderer splits that form back into family + label set, so e.g. every
//! `quality.qerror_milli{template="…"}` histogram lands under one
//! `# TYPE quality_qerror_milli histogram` declaration.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{HistogramSnapshot, Snapshot};

/// Builds the canonical registry name for a labeled series:
/// `family{k1="v1",k2="v2"}` with label values escaped per the exposition
/// format. Registering metrics under this name makes [`render`] emit them
/// as proper labeled series of the `family` metric.
///
/// ```
/// let name = obs::openmetrics::labeled("quality.qerror_milli", &[("template", "ab12")]);
/// assert_eq!(name, "quality.qerror_milli{template=\"ab12\"}");
/// ```
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(family.len() + 16 * labels.len());
    out.push_str(family);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out
}

/// Escapes a label value per the exposition format (`\` → `\\`, `"` →
/// `\"`, newline → `\n`).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Maps a registry name onto a valid exposition metric name: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is
/// prefixed with `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic()
            || c == '_'
            || c == ':'
            || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Splits a canonical registry name into `(family, labels)` — the inverse
/// of [`labeled`]. Names without a `{` have no labels. A malformed label
/// block is kept verbatim in the family (then sanitized into `_`s rather
/// than dropped, so no metric silently disappears).
pub fn split_labels(name: &str) -> (String, Vec<(String, String)>) {
    let Some(open) = name.find('{') else {
        return (name.to_owned(), Vec::new());
    };
    if !name.ends_with('}') {
        return (name.to_owned(), Vec::new());
    }
    match parse_label_block(&name[open + 1..name.len() - 1]) {
        Some(labels) => (name[..open].to_owned(), labels),
        None => (name.to_owned(), Vec::new()),
    }
}

/// Parses `k1="v1",k2="v2"` (escaped values) into pairs.
fn parse_label_block(block: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let bytes = block.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        let eq = block[pos..].find('=')? + pos;
        let key = block[pos..eq].trim().to_owned();
        if key.is_empty() || !is_valid_name(&key) {
            return None;
        }
        if bytes.get(eq + 1) != Some(&b'"') {
            return None;
        }
        let mut value = String::new();
        let mut i = eq + 2;
        loop {
            match bytes.get(i)? {
                b'"' => break,
                b'\\' => {
                    match bytes.get(i + 1)? {
                        b'\\' => value.push('\\'),
                        b'"' => value.push('"'),
                        b'n' => value.push('\n'),
                        _ => return None,
                    }
                    i += 2;
                }
                _ => {
                    // Advance one whole UTF-8 character.
                    let rest = &block[i..];
                    let c = rest.chars().next()?;
                    value.push(c);
                    i += c.len_utf8();
                }
            }
        }
        labels.push((key, value));
        pos = i + 1;
        if bytes.get(pos) == Some(&b',') {
            pos += 1;
        } else if pos < bytes.len() {
            return None;
        }
    }
    Some(labels)
}

/// Whether `name` is a valid exposition metric/label name.
fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic()
                || c == '_'
                || c == ':'
                || (i > 0 && c.is_ascii_digit())
        })
}

fn render_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    out.push('}');
}

fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v:?}")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One series grouped under a family.
enum Series<'a> {
    Counter(Vec<(String, String)>, u64),
    Gauge(Vec<(String, String)>, f64),
    Histogram(Vec<(String, String)>, &'a HistogramSnapshot),
}

/// Renders `snap` in the Prometheus/OpenMetrics text exposition format,
/// terminated by `# EOF`. Series sharing a family (labeled variants of
/// one metric) are grouped under a single `# TYPE` declaration.
pub fn render(snap: &Snapshot) -> String {
    // family -> (kind, series). BTreeMap gives a stable, sorted output.
    let mut families: BTreeMap<String, (Kind, Vec<Series<'_>>)> = BTreeMap::new();
    fn add<'a>(
        families: &mut BTreeMap<String, (Kind, Vec<Series<'a>>)>,
        name: &str,
        kind: Kind,
        series: Series<'a>,
    ) {
        let (raw_family, raw_labels) = split_labels(name);
        let mut family = sanitize_name(&raw_family);
        if families.get(&family).is_some_and(|(k, _)| *k != kind) {
            // A post-sanitize family collision across kinds (e.g. `a.b`
            // counter vs `a_b` gauge): keep exposition validity by
            // shunting the latecomer into its own kind-suffixed family.
            family.push('_');
            family.push_str(kind.as_str());
        }
        families
            .entry(family)
            .or_insert_with(|| (kind, Vec::new()))
            .1
            .push(Series::relabel(series, raw_labels));
    }
    for (name, v) in &snap.counters {
        add(&mut families, name, Kind::Counter, Series::Counter(Vec::new(), *v));
    }
    for (name, v) in &snap.gauges {
        add(&mut families, name, Kind::Gauge, Series::Gauge(Vec::new(), *v));
    }
    for (name, h) in &snap.histograms {
        add(&mut families, name, Kind::Histogram, Series::Histogram(Vec::new(), h));
    }

    let mut out = String::new();
    for (family, (kind, series)) in &families {
        let _ = writeln!(out, "# TYPE {family} {}", kind.as_str());
        for s in series {
            match s {
                Series::Counter(labels, v) => {
                    let _ = write!(out, "{family}_total");
                    render_labels(&mut out, labels);
                    let _ = writeln!(out, " {v}");
                }
                Series::Gauge(labels, v) => {
                    out.push_str(family);
                    render_labels(&mut out, labels);
                    let _ = writeln!(out, " {}", render_f64(*v));
                }
                Series::Histogram(labels, h) => {
                    let mut cum = 0u64;
                    for &(bound, n) in &h.buckets {
                        cum += n;
                        let mut with_le = labels.clone();
                        with_le.push(("le".to_owned(), bound.to_string()));
                        let _ = write!(out, "{family}_bucket");
                        render_labels(&mut out, &with_le);
                        let _ = writeln!(out, " {cum}");
                    }
                    let mut with_le = labels.clone();
                    with_le.push(("le".to_owned(), "+Inf".to_owned()));
                    let _ = write!(out, "{family}_bucket");
                    render_labels(&mut out, &with_le);
                    let _ = writeln!(out, " {}", h.count);
                    let _ = write!(out, "{family}_sum");
                    render_labels(&mut out, labels);
                    let _ = writeln!(out, " {}", h.sum);
                    let _ = write!(out, "{family}_count");
                    render_labels(&mut out, labels);
                    let _ = writeln!(out, " {}", h.count);
                }
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

impl<'a> Series<'a> {
    fn relabel(self, labels: Vec<(String, String)>) -> Series<'a> {
        match self {
            Series::Counter(_, v) => Series::Counter(labels, v),
            Series::Gauge(_, v) => Series::Gauge(labels, v),
            Series::Histogram(_, h) => Series::Histogram(labels, h),
        }
    }
}

// ---------------------------------------------------------------------
// Line-level parsing, shared by the lint and the parser.
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Line {
    Type { family: String, kind: Kind },
    Comment,
    Eof,
    Sample { name: String, labels: Vec<(String, String)>, value: f64 },
}

fn parse_line(line: &str) -> Result<Option<Line>, String> {
    let trimmed = line.trim_end_matches('\r');
    if trimmed.is_empty() {
        return Ok(None);
    }
    if let Some(rest) = trimmed.strip_prefix('#') {
        let rest = rest.trim_start();
        if rest == "EOF" {
            return Ok(Some(Line::Eof));
        }
        if let Some(decl) = rest.strip_prefix("TYPE ") {
            let mut parts = decl.split_whitespace();
            let family = parts.next().ok_or("TYPE line missing metric name")?;
            let kind = match parts.next() {
                Some("counter") => Kind::Counter,
                Some("gauge") => Kind::Gauge,
                Some("histogram") => Kind::Histogram,
                Some(other) => return Err(format!("unsupported TYPE `{other}`")),
                None => return Err("TYPE line missing kind".to_owned()),
            };
            if !is_valid_name(family) {
                return Err(format!("invalid metric name `{family}` in TYPE"));
            }
            return Ok(Some(Line::Type { family: family.to_owned(), kind }));
        }
        // # HELP / # UNIT / free comments are all legal and skipped.
        return Ok(Some(Line::Comment));
    }
    // Sample: name[{labels}] value [timestamp]
    let name_end = trimmed
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| format!("malformed sample line `{trimmed}`"))?;
    let name = &trimmed[..name_end];
    if !is_valid_name(name) {
        return Err(format!("invalid metric name `{name}`"));
    }
    let mut rest = &trimmed[name_end..];
    let mut labels = Vec::new();
    if let Some(inner) = rest.strip_prefix('{') {
        let close = inner
            .find('}')
            .ok_or_else(|| format!("unterminated label block in `{trimmed}`"))?;
        // `}` cannot appear inside a value unescaped per the format, and
        // [`escape_label_value`] never emits one, so the first `}` ends
        // the block.
        labels = parse_label_block(&inner[..close])
            .ok_or_else(|| format!("malformed label block in `{trimmed}`"))?;
        rest = &inner[close + 1..];
    }
    let mut fields = rest.split_whitespace();
    let value_text =
        fields.next().ok_or_else(|| format!("sample `{trimmed}` missing value"))?;
    let value = match value_text {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse::<f64>().map_err(|_| format!("bad sample value `{v}`"))?,
    };
    if let Some(ts) = fields.next() {
        ts.parse::<f64>().map_err(|_| format!("bad timestamp `{ts}`"))?;
    }
    if fields.next().is_some() {
        return Err(format!("trailing tokens on sample `{trimmed}`"));
    }
    Ok(Some(Line::Sample { name: name.to_owned(), labels, value }))
}

/// The family a sample belongs to, given the declared families: strips
/// the `_total` / `_bucket` / `_sum` / `_count` suffix when the stripped
/// base is declared with the matching kind.
fn family_of<'a>(
    name: &'a str,
    families: &BTreeMap<String, Kind>,
) -> Option<(&'a str, Kind)> {
    for (suffix, kind) in [
        ("_total", Kind::Counter),
        ("_bucket", Kind::Histogram),
        ("_sum", Kind::Histogram),
        ("_count", Kind::Histogram),
    ] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families.get(base) == Some(&kind) {
                return Some((base, kind));
            }
        }
    }
    families.get(name).map(|&k| (name, k))
}

/// Validates an exposition document: every line parses, metric and label
/// names are legal, every sample's family has a prior `# TYPE`
/// declaration of the matching kind, histogram `_bucket` series are
/// cumulative (non-decreasing in `le` order) and end with an `+Inf`
/// bucket equal to `_count`, and the document ends with `# EOF`.
pub fn lint(text: &str) -> Result<(), String> {
    let mut families: BTreeMap<String, Kind> = BTreeMap::new();
    // (family, labels-without-le) -> (buckets seen, +Inf value, count value)
    type HistKey = (String, Vec<(String, String)>);
    type HistState = (Vec<(f64, f64)>, Option<f64>, Option<f64>);
    let mut hists: BTreeMap<HistKey, HistState> = BTreeMap::new();
    let mut saw_eof = false;
    for (no, raw) in text.lines().enumerate() {
        let lineno = no + 1;
        if saw_eof && !raw.trim().is_empty() {
            return Err(format!("line {lineno}: content after # EOF"));
        }
        let line = parse_line(raw).map_err(|e| format!("line {lineno}: {e}"))?;
        match line {
            None | Some(Line::Comment) => {}
            Some(Line::Eof) => saw_eof = true,
            Some(Line::Type { family, kind }) => {
                if families.insert(family.clone(), kind).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for `{family}`"));
                }
            }
            Some(Line::Sample { name, labels, value }) => {
                let Some((family, kind)) = family_of(&name, &families) else {
                    return Err(format!(
                        "line {lineno}: sample `{name}` has no TYPE declaration"
                    ));
                };
                for (k, _) in &labels {
                    if !is_valid_name(k) {
                        return Err(format!("line {lineno}: invalid label name `{k}`"));
                    }
                }
                if kind == Kind::Counter && value < 0.0 {
                    return Err(format!("line {lineno}: negative counter `{name}`"));
                }
                if kind == Kind::Histogram {
                    let mut base_labels = labels.clone();
                    let le = base_labels
                        .iter()
                        .position(|(k, _)| k == "le")
                        .map(|i| base_labels.remove(i).1);
                    let entry = hists
                        .entry((family.to_owned(), base_labels))
                        .or_insert_with(|| (Vec::new(), None, None));
                    if name.ends_with("_bucket") {
                        let Some(le) = le else {
                            return Err(format!(
                                "line {lineno}: `{name}` missing `le` label"
                            ));
                        };
                        let bound = match le.as_str() {
                            "+Inf" => f64::INFINITY,
                            v => v.parse::<f64>().map_err(|_| {
                                format!("line {lineno}: bad le value `{v}`")
                            })?,
                        };
                        if bound.is_infinite() {
                            entry.1 = Some(value);
                        } else {
                            entry.0.push((bound, value));
                        }
                    } else if name.ends_with("_count") {
                        entry.2 = Some(value);
                    }
                }
            }
        }
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_owned());
    }
    for ((family, labels), (buckets, inf, count)) in &hists {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = 0.0;
        for &(bound, cum) in buckets {
            if bound <= prev_bound {
                return Err(format!("histogram `{family}` buckets out of order"));
            }
            if cum < prev_cum {
                return Err(format!(
                    "histogram `{family}`{labels:?} buckets not cumulative"
                ));
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        let inf = inf.ok_or_else(|| {
            format!("histogram `{family}`{labels:?} missing +Inf bucket")
        })?;
        if inf < prev_cum {
            return Err(format!("histogram `{family}` +Inf below last bucket"));
        }
        if let Some(count) = count {
            if (inf - count).abs() > 0.0 {
                return Err(format!("histogram `{family}` +Inf bucket != _count"));
            }
        }
    }
    Ok(())
}

/// Parses an exposition document back into a [`Snapshot`].
///
/// Inverse of [`render`] up to the lossy parts of the exposition format:
/// names come back in their sanitized (underscore) form, labeled series
/// come back under the canonical `family{k="v"}` registry name, and
/// histogram `min`/`max` are reconstructed from the outermost non-empty
/// buckets (the exact observations are not exported).
pub fn parse(text: &str) -> Result<Snapshot, String> {
    lint(text)?;
    let mut families: BTreeMap<String, Kind> = BTreeMap::new();
    let mut snap = Snapshot::default();
    type HistKey = (String, Vec<(String, String)>);
    // (de-cumulated buckets, sum, count) per series.
    type HistAccum = (Vec<(f64, f64)>, u64, u64);
    let mut hists: BTreeMap<HistKey, HistAccum> = BTreeMap::new();
    for raw in text.lines() {
        match parse_line(raw).map_err(|e| e.to_string())? {
            Some(Line::Type { family, kind }) => {
                families.insert(family, kind);
            }
            Some(Line::Sample { name, labels, value }) => {
                let Some((family, kind)) = family_of(&name, &families) else {
                    continue;
                };
                match kind {
                    Kind::Counter => {
                        let key = registry_name(family, &labels);
                        snap.counters.push((key, value.max(0.0) as u64));
                    }
                    Kind::Gauge => {
                        let key = registry_name(family, &labels);
                        snap.gauges.push((key, value));
                    }
                    Kind::Histogram => {
                        let mut base = labels.clone();
                        let le = base
                            .iter()
                            .position(|(k, _)| k == "le")
                            .map(|i| base.remove(i).1);
                        let entry = hists
                            .entry((family.to_owned(), base))
                            .or_insert_with(|| (Vec::new(), 0, 0));
                        if name.ends_with("_bucket") {
                            if let Some(le) = le {
                                if let Ok(bound) = le.parse::<f64>() {
                                    entry.0.push((bound, value));
                                }
                            }
                        } else if name.ends_with("_sum") {
                            entry.1 = value.max(0.0) as u64;
                        } else if name.ends_with("_count") {
                            entry.2 = value.max(0.0) as u64;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    for ((family, labels), (mut buckets, sum, count)) in hists {
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite bounds"));
        // De-cumulate back to per-bucket counts.
        let mut prev = 0.0;
        let mut out_buckets = Vec::new();
        for (bound, cum) in buckets {
            let n = (cum - prev).max(0.0) as u64;
            prev = cum;
            if n > 0 {
                out_buckets.push((bound.min(u64::MAX as f64) as u64, n));
            }
        }
        let min = if count == 0 {
            0
        } else {
            // Lower edge of the first occupied log₂ bucket.
            match out_buckets.first() {
                Some(&(0, _)) | None => 0,
                Some(&(b, _)) => b / 2 + 1,
            }
        };
        let max = out_buckets.last().map(|&(b, _)| b).unwrap_or(0);
        let key = registry_name(&family, &labels);
        snap.histograms.push((
            key,
            HistogramSnapshot { count, sum, min, max, buckets: out_buckets },
        ));
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(snap)
}

/// The canonical registry name for a parsed series.
fn registry_name(family: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        family.to_owned()
    } else {
        let borrowed: Vec<(&str, &str)> =
            labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        labeled(family, &borrowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::bucket_upper_bound;

    fn hist(values: &[u64]) -> HistogramSnapshot {
        let h = crate::registry::Histogram::default();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn renders_all_three_kinds_and_lints() {
        let snap = Snapshot {
            counters: vec![("prm.plan.hit".into(), 42)],
            gauges: vec![("prm.plan.hit_ratio".into(), 0.75)],
            histograms: vec![("prm.estimate.ns".into(), hist(&[100, 2000, 2000]))],
        };
        let text = render(&snap);
        lint(&text).expect("valid exposition");
        assert!(text.contains("# TYPE prm_plan_hit counter\n"), "{text}");
        assert!(text.contains("prm_plan_hit_total 42\n"), "{text}");
        assert!(text.contains("prm_plan_hit_ratio 0.75\n"), "{text}");
        assert!(text.contains("# TYPE prm_estimate_ns histogram\n"), "{text}");
        let b100 = bucket_upper_bound(7); // 100 ∈ (63, 127]
        assert!(text.contains(&format!("prm_estimate_ns_bucket{{le=\"{b100}\"}} 1\n")));
        let b2000 = bucket_upper_bound(11); // 2000 ∈ (1023, 2047]
        assert!(text.contains(&format!("prm_estimate_ns_bucket{{le=\"{b2000}\"}} 3\n")));
        assert!(text.contains("prm_estimate_ns_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("prm_estimate_ns_sum 4100\n"), "{text}");
        assert!(text.contains("prm_estimate_ns_count 3\n"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
    }

    #[test]
    fn labeled_series_group_under_one_family() {
        let a = labeled("quality.qerror_milli", &[("template", "aa")]);
        let b = labeled("quality.qerror_milli", &[("template", "bb")]);
        let snap = Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![(a, hist(&[1000])), (b, hist(&[3000]))],
        };
        let text = render(&snap);
        lint(&text).expect("valid exposition");
        assert_eq!(text.matches("# TYPE quality_qerror_milli histogram").count(), 1);
        assert!(
            text.contains("quality_qerror_milli_bucket{template=\"aa\",le="),
            "{text}"
        );
        assert!(text.contains("quality_qerror_milli_count{template=\"bb\"} 1"), "{text}");
    }

    #[test]
    fn round_trips_through_parse() {
        let snap = Snapshot {
            counters: vec![
                ("a_counter".into(), 7),
                (labeled("b_counter", &[("k", "v")]), 9),
            ],
            gauges: vec![("a_gauge".into(), 1.5)],
            histograms: vec![("a_hist".into(), hist(&[0, 5, 5, 900]))],
        };
        let text = render(&snap);
        let back = parse(&text).expect("parses");
        assert_eq!(back.counter("a_counter"), Some(7));
        assert_eq!(back.counter("b_counter{k=\"v\"}"), Some(9));
        assert_eq!(back.gauge("a_gauge"), Some(1.5));
        let h = back.histogram("a_hist").expect("histogram survives");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 910);
        assert_eq!(h.buckets, snap.histograms[0].1.buckets);
    }

    #[test]
    fn lint_rejects_malformed_documents() {
        assert!(lint("no_type_decl 1\n# EOF\n").is_err());
        assert!(lint("# TYPE a counter\na_total 1\n").is_err(), "missing EOF");
        assert!(lint("# TYPE a counter\na_total -3\n# EOF\n").is_err());
        assert!(lint("# TYPE a counter\na_total 1\n# EOF\nx 2\n").is_err());
        assert!(lint("# TYPE 9bad counter\n# EOF\n").is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n# EOF\n";
        assert!(lint(bad).is_err());
        // Missing +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n# EOF\n";
        assert!(lint(bad).is_err());
    }

    #[test]
    fn name_and_label_escaping() {
        assert_eq!(sanitize_name("prm.plan-cache.hit"), "prm_plan_cache_hit");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        let name = labeled("f", &[("k", "a\"b\\c\nd")]);
        let (family, labels) = split_labels(&name);
        assert_eq!(family, "f");
        assert_eq!(labels, vec![("k".to_owned(), "a\"b\\c\nd".to_owned())]);
        let snap =
            Snapshot { counters: vec![(name, 1)], gauges: vec![], histograms: vec![] };
        let text = render(&snap);
        lint(&text).expect("escaped label value lints");
        assert!(text.contains("f_total{k=\"a\\\"b\\\\c\\nd\"} 1"), "{text}");
    }
}
