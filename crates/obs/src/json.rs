//! A minimal streaming JSON writer (no external deps).
//!
//! Emits compact, valid JSON with correct string escaping and
//! comma/colon placement handled by a small state stack. Floats are
//! rendered with `{:?}` (shortest round-trip form); non-finite floats
//! become `null` per RFC 8259.

/// Streaming writer building one JSON document.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has a first element.
    stack: Vec<bool>,
    /// A key was just written; the next value attaches to it.
    pending_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Writes an object key (value must follow).
    pub fn key(&mut self, k: &str) {
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
        self.write_escaped(k);
        self.out.push(':');
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.before_value();
        self.write_escaped(s);
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float value (`null` when non-finite).
    pub fn float(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a pre-rendered JSON fragment as a value. The caller
    /// guarantees `json` is itself valid JSON (e.g. the output of another
    /// writer or [`crate::Snapshot::to_json`]).
    pub fn raw(&mut self, json: &str) {
        self.before_value();
        self.out.push_str(json);
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32))
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// The finished document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed container");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure_renders_correctly() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.uint(1);
        w.key("b");
        w.begin_array();
        w.uint(2);
        w.float(1.5);
        w.string("x\"y\\z\n");
        w.end_array();
        w.key("c");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":[2,1.5,"x\"y\\z\n"],"c":{}}"#);
    }

    #[test]
    fn raw_fragments_embed_verbatim() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("inner");
        w.raw(r#"{"x":1}"#);
        w.key("n");
        w.uint(2);
        w.end_object();
        assert_eq!(w.finish(), r#"{"inner":{"x":1},"n":2}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.float(f64::NAN);
        w.float(f64::INFINITY);
        w.float(0.25);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,0.25]");
    }
}
