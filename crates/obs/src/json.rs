//! A minimal streaming JSON writer and value parser (no external deps).
//!
//! The writer emits compact, valid JSON with correct string escaping and
//! comma/colon placement handled by a small state stack. Floats are
//! rendered with `{:?}` (shortest round-trip form); non-finite floats
//! become `null` per RFC 8259.
//!
//! The parser ([`parse`]) builds a [`Json`] value tree — enough for the
//! consumers inside this workspace (`prmsel top` reading `/timeseries`
//! and `/alerts`, tests validating exporter output). It accepts any
//! document the writer can produce plus standard JSON from elsewhere;
//! it is not a validator of exotic extensions (no comments, no NaN).

/// Streaming writer building one JSON document.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has a first element.
    stack: Vec<bool>,
    /// A key was just written; the next value attaches to it.
    pending_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Writes an object key (value must follow).
    pub fn key(&mut self, k: &str) {
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
        self.write_escaped(k);
        self.out.push(':');
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.before_value();
        self.write_escaped(s);
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float value (`null` when non-finite).
    pub fn float(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a pre-rendered JSON fragment as a value. The caller
    /// guarantees `json` is itself valid JSON (e.g. the output of another
    /// writer or [`crate::Snapshot::to_json`]).
    pub fn raw(&mut self, json: &str) {
        self.before_value();
        self.out.push_str(json);
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32))
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// The finished document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed container");
        self.out
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (floats and integers share `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept; [`Json::get`]
    /// returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// First value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as `u64` (negative / fractional → `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses one JSON document (the whole input must be consumed, modulo
/// trailing whitespace). Returns `None` on any syntax error.
pub fn parse(s: &str) -> Option<Json> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    (pos == bytes.len()).then_some(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn eat_keyword(b: &[u8], pos: &mut usize, kw: &[u8]) -> Option<()> {
    if b.get(*pos..*pos + kw.len()) == Some(kw) {
        *pos += kw.len();
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return None,
                };
                eat(b, pos, b':')?;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(pairs));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match *b.get(*pos)? {
                    b'"' => {
                        *pos += 1;
                        return Some(Json::Str(out));
                    }
                    b'\\' => {
                        *pos += 1;
                        match *b.get(*pos)? {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = std::str::from_utf8(b.get(*pos + 1..*pos + 5)?)
                                    .ok()?;
                                let cp = u32::from_str_radix(hex, 16).ok()?;
                                out.push(char::from_u32(cp)?);
                                *pos += 4;
                            }
                            _ => return None,
                        }
                        *pos += 1;
                    }
                    _ => {
                        let start = *pos;
                        while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                            *pos += 1;
                        }
                        out.push_str(std::str::from_utf8(&b[start..*pos]).ok()?);
                    }
                }
            }
        }
        b't' => eat_keyword(b, pos, b"true").map(|()| Json::Bool(true)),
        b'f' => eat_keyword(b, pos, b"false").map(|()| Json::Bool(false)),
        b'n' => eat_keyword(b, pos, b"null").map(|()| Json::Null),
        _ => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos]).ok()?.parse().ok().map(Json::Num)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure_renders_correctly() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.uint(1);
        w.key("b");
        w.begin_array();
        w.uint(2);
        w.float(1.5);
        w.string("x\"y\\z\n");
        w.end_array();
        w.key("c");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":[2,1.5,"x\"y\\z\n"],"c":{}}"#);
    }

    #[test]
    fn raw_fragments_embed_verbatim() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("inner");
        w.raw(r#"{"x":1}"#);
        w.key("n");
        w.uint(2);
        w.end_object();
        assert_eq!(w.finish(), r#"{"inner":{"x":1},"n":2}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.float(f64::NAN);
        w.float(f64::INFINITY);
        w.float(0.25);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,0.25]");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("n");
        w.uint(42);
        w.key("f");
        w.float(-1.5);
        w.key("s");
        w.string("a\"b\\c\nd");
        w.key("arr");
        w.begin_array();
        w.uint(1);
        w.float(2.25);
        w.end_array();
        w.key("none");
        w.float(f64::NAN);
        w.end_object();
        let v = parse(&w.finish()).expect("writer output must parse");
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        let arr = v.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].as_f64(), Some(2.25));
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn parser_handles_keywords_and_rejects_garbage() {
        assert_eq!(parse("true"), Some(Json::Bool(true)));
        assert_eq!(parse(" false "), Some(Json::Bool(false)));
        assert_eq!(parse("null"), Some(Json::Null));
        assert_eq!(parse("[]"), Some(Json::Arr(vec![])));
        assert_eq!(parse("{}"), Some(Json::Obj(vec![])));
        assert_eq!(parse("tru"), None);
        assert_eq!(parse("nulls"), None);
        assert_eq!(parse("{\"a\":}"), None);
        assert_eq!(parse("[1,]"), None);
        assert_eq!(parse("{\"a\":1} extra"), None);
        assert_eq!(parse("\"unterminated"), None);
    }

    #[test]
    fn parser_handles_unicode_escapes_and_duplicate_keys() {
        let v = parse("{\"k\":\"\\u0041\\t\",\"k\":2}").unwrap();
        // First key wins through `get`; both are retained in the pairs.
        assert_eq!(v.get("k").unwrap().as_str(), Some("A\t"));
        assert_eq!(v.as_object().unwrap().len(), 2);
    }
}
