//! # prmsel-obs — observability for the selectivity-estimation stack
//!
//! A dependency-free telemetry layer shared by every crate in the
//! workspace. Two halves:
//!
//! * **Metrics** ([`registry`]) — a process-global registry of atomic
//!   [`Counter`]s, [`Gauge`]s, and log₂-bucketed [`Histogram`]s. The hot
//!   path is lock-free: registration interns a handle once (behind a
//!   mutex), after which every update is a single relaxed atomic
//!   operation. Call sites memoize the handle with the [`counter!`],
//!   [`gauge!`], and [`histogram!`] macros, so steady-state cost is one
//!   static load plus one atomic add.
//! * **Tracing** ([`trace`]) — leveled events ([`error!`] … [`trace!`])
//!   and timed [`Span`]s, filtered by the `PRMSEL_LOG` (or `RUST_LOG`)
//!   environment variable with per-module-prefix directives, e.g.
//!   `PRMSEL_LOG=info,prmsel::learn=debug`. Disabled events cost one
//!   relaxed atomic load. Span exit durations are also recorded into
//!   `span.<name>.ns` histograms, so timing shows up in metric snapshots
//!   even when logging is off.
//! * **Flight recorder** ([`flight`]) — opt-in per-query traces (phase
//!   timings, elimination steps, plan-cache outcome, predicate masks,
//!   estimate + q-error) retained in a bounded ring, exported as an
//!   `EXPLAIN`-style tree or Chrome `trace_event` JSON. Disabled hooks
//!   cost one relaxed atomic load and never allocate.
//! * **Time series** ([`timeseries`]) — a background sampler thread that
//!   keeps a bounded ring of periodic registry snapshots and derives
//!   per-window rates (qps, windowed hit ratios) and exact windowed
//!   latency/q-error quantiles by cumulative-bucket subtraction.
//! * **Watchdog** ([`watchdog`]) — a drift/SLO evaluator over those
//!   windows (q-error baseline, warm-latency burn, fallback trend,
//!   guard panics) emitting typed [`watchdog::Alert`]s into a bounded
//!   ring; critical alerts flip the `/health` endpoint to 503.
//!
//! Exporters: [`Registry::snapshot`] → [`Snapshot`], rendered with
//! [`Snapshot::to_json`] (machine-readable, stable field order) or
//! [`Snapshot::to_pretty`] (human-readable table).
//!
//! ## Example
//!
//! ```
//! obs::counter!("demo.requests").inc();
//! obs::histogram!("demo.latency.ns").record(1_500);
//! {
//!     let _span = obs::span("demo_phase"); // records span.demo_phase.ns
//! }
//! let snap = obs::registry().snapshot();
//! assert!(snap.to_json().contains("\"demo.requests\""));
//! ```

pub mod flight;
pub mod json;
pub mod openmetrics;
pub mod registry;
pub mod timeseries;
pub mod trace;
pub mod watchdog;

pub use registry::{
    registry, reset_for_tests, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    Snapshot,
};
pub use trace::{enabled, init_from_env, set_max_level, span, Level, Span};
