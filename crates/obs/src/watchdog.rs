//! Drift / SLO watchdog over the [`crate::timeseries`] windows.
//!
//! The paper's §5 maintenance experiments show PRM estimate quality
//! decaying as the underlying data drifts away from the model that was
//! fit; a long-lived estimator therefore needs an *automatic* signal
//! that quality has left the healthy band, not a human reading charts.
//! This module is that signal. After every sampler tick it receives the
//! newest [`WindowStats`] and checks:
//!
//! * **q-error drift** — the windowed q-error p99 against a baseline
//!   that is either operator-pinned (`PRMSEL_SLO_QERROR`, in q-error
//!   units) or auto-seeded from the first healthy window (4× its p99,
//!   floored at 8.0 — generous enough that normal variance never fires,
//!   tight enough that a degradation to the uniform floor does);
//!   per-template q-error EWMAs (fed by [`observe_qerror`] from the
//!   core's `record_quality`) localise the drift to a query shape;
//! * **warm-latency SLO burn** — windowed latency p99 vs
//!   `PRMSEL_SLO_WARM_NS`; one breached window is a warning, two
//!   consecutive breached windows (a sustained burn, not a GC blip)
//!   escalate to critical;
//! * **fallback-ratio trend** — the degradation ladder's windowed
//!   fallback share vs `PRMSEL_SLO_FALLBACK` (default 0.5): half the
//!   threshold warns, crossing it is critical;
//! * **guard panics** — any panic caught by the estimate guard in the
//!   window is critical outright.
//!
//! Breaches become typed [`Alert`]s: the alerts of the newest window are
//! the *active* set (what `/alerts` leads with and what `/health` folds
//! in — any active critical flips it to 503), and every alert is also
//! appended to a bounded history ring (`PRMSEL_ALERT_RING`, default
//! 256) so a scraper that missed the window still sees the incident.
//!
//! Like the rest of the observability plane, all of this is off the hot
//! path: evaluation runs on the sampler thread, and the only hook that
//! estimation code calls ([`observe_qerror`]) exits on one relaxed load
//! while no sampler is running.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::json::JsonWriter;
use crate::timeseries::WindowStats;

/// How loud an alert is. `Critical` alerts flip `/health` to 503.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Worth a look: a threshold was approached or briefly crossed.
    Warning,
    /// Out of SLO: the estimator should be refit, degraded, or bypassed.
    Critical,
}

impl Severity {
    /// Lower-case label used in JSON and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One threshold breach in one window.
#[derive(Debug, Clone)]
pub struct Alert {
    /// How loud.
    pub severity: Severity,
    /// Which signal fired (e.g. `quality.qerror.p99`).
    pub metric: String,
    /// Window start (ms since process epoch).
    pub t0_ms: u64,
    /// Window end.
    pub t1_ms: u64,
    /// Observed value.
    pub value: f64,
    /// Threshold it breached.
    pub threshold: f64,
    /// Offending template hash, for per-template signals.
    pub template: Option<String>,
}

impl Alert {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("severity");
        w.string(self.severity.as_str());
        w.key("metric");
        w.string(&self.metric);
        w.key("t0_ms");
        w.uint(self.t0_ms);
        w.key("t1_ms");
        w.uint(self.t1_ms);
        w.key("value");
        w.float(self.value);
        w.key("threshold");
        w.float(self.threshold);
        if let Some(tpl) = &self.template {
            w.key("template");
            w.string(tpl);
        }
        w.end_object();
    }

    /// One-line human rendering (used by `prmsel top`).
    pub fn describe(&self) -> String {
        let tpl = self
            .template
            .as_deref()
            .map(|t| format!(" template={t}"))
            .unwrap_or_default();
        format!(
            "[{}] {}{} = {:.3} (threshold {:.3})",
            self.severity.as_str(),
            self.metric,
            tpl,
            self.value,
            self.threshold
        )
    }
}

// ---------------------------------------------------------------------
// Configuration: env defaults with programmatic atomic overrides, the
// same layering as `core::guard` budgets. Overrides win; `f64` values
// are stored as bits with `u64::MAX` (a NaN pattern no caller sets) as
// the UNSET sentinel.
// ---------------------------------------------------------------------

const UNSET: u64 = u64::MAX;

static SLO_QERROR: AtomicU64 = AtomicU64::new(UNSET);
static SLO_WARM_NS: AtomicU64 = AtomicU64::new(UNSET);
static SLO_FALLBACK: AtomicU64 = AtomicU64::new(UNSET);

fn env_f64(var: &'static str, cache: &'static OnceLock<Option<f64>>) -> Option<f64> {
    *cache.get_or_init(|| {
        std::env::var(var).ok().and_then(|v| v.trim().parse::<f64>().ok())
    })
}

fn resolve_env(
    over: &AtomicU64,
    var: &'static str,
    cache: &'static OnceLock<Option<f64>>,
) -> Option<f64> {
    match over.load(Ordering::Relaxed) {
        UNSET => env_f64(var, cache),
        bits => Some(f64::from_bits(bits)),
    }
}

/// Pinned q-error SLO: programmatic override, else `PRMSEL_SLO_QERROR`.
/// `None` means auto-seed from the first healthy window.
pub fn slo_qerror() -> Option<f64> {
    static CACHE: OnceLock<Option<f64>> = OnceLock::new();
    resolve_env(&SLO_QERROR, "PRMSEL_SLO_QERROR", &CACHE)
}

/// Warm-latency SLO in nanoseconds: override, else `PRMSEL_SLO_WARM_NS`.
/// `None` disables the latency check.
pub fn slo_warm_ns() -> Option<f64> {
    static CACHE: OnceLock<Option<f64>> = OnceLock::new();
    resolve_env(&SLO_WARM_NS, "PRMSEL_SLO_WARM_NS", &CACHE)
}

/// Fallback-ratio SLO: override, else `PRMSEL_SLO_FALLBACK`, else 0.5.
pub fn slo_fallback() -> f64 {
    static CACHE: OnceLock<Option<f64>> = OnceLock::new();
    resolve_env(&SLO_FALLBACK, "PRMSEL_SLO_FALLBACK", &CACHE).unwrap_or(0.5)
}

fn set_override(slot: &AtomicU64, v: Option<f64>) {
    slot.store(v.map_or(UNSET, f64::to_bits), Ordering::Relaxed);
}

/// Pins (or with `None`, un-pins back to env) the q-error SLO.
pub fn set_slo_qerror(v: Option<f64>) {
    set_override(&SLO_QERROR, v);
}

/// Pins the warm-latency SLO in nanoseconds.
pub fn set_slo_warm_ns(v: Option<f64>) {
    set_override(&SLO_WARM_NS, v);
}

/// Pins the fallback-ratio SLO.
pub fn set_slo_fallback(v: Option<f64>) {
    set_override(&SLO_FALLBACK, v);
}

/// Alert-history capacity: `PRMSEL_ALERT_RING`, default 256 (min 8).
pub fn alert_ring_from_env() -> usize {
    std::env::var("PRMSEL_ALERT_RING")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(256)
        .max(8)
}

/// A window must hold this many q-error observations before it can seed
/// the baseline or fire drift alerts — a one-query window is noise.
const MIN_QERROR_SAMPLES: u64 = 5;

/// Auto-seeded baseline = first healthy window's p99 × this headroom.
const BASELINE_HEADROOM: f64 = 4.0;

/// Auto-seeded baseline floor: q-error 8 is already far outside the
/// paper's reported healthy band (§5: median ≈ 1–2 on census-style
/// workloads), so any tighter floor would risk false alarms.
const BASELINE_FLOOR: f64 = 8.0;

/// EWMA smoothing for per-template q-error trends.
const EWMA_ALPHA: f64 = 0.2;

struct WatchState {
    /// Effective q-error threshold once known (pinned or auto-seeded).
    baseline_qerror: Option<f64>,
    /// Whether `baseline_qerror` came from auto-seeding.
    baseline_seeded: bool,
    /// Per-template q-error EWMA, keyed by template hash label.
    ewma: Vec<(String, f64)>,
    /// Consecutive windows with warm p99 over the latency SLO.
    latency_burn: u32,
    /// Alerts of the newest evaluated window.
    active: Vec<Alert>,
    /// Bounded ring of every alert ever raised.
    history: VecDeque<Alert>,
    history_cap: usize,
    /// Windows evaluated (exported for tests/JSON).
    evaluated: u64,
}

impl WatchState {
    fn new() -> WatchState {
        WatchState {
            baseline_qerror: None,
            baseline_seeded: false,
            ewma: Vec::new(),
            latency_burn: 0,
            active: Vec::new(),
            history: VecDeque::new(),
            history_cap: alert_ring_from_env(),
            evaluated: 0,
        }
    }
}

fn state() -> MutexGuard<'static, WatchState> {
    static STATE: OnceLock<Mutex<WatchState>> = OnceLock::new();
    STATE
        .get_or_init(|| Mutex::new(WatchState::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Feeds one q-error observation (q ≥ 1, *not* milli-scaled) into the
/// per-template EWMA. Called by the core's `record_quality`; exits on a
/// single relaxed load while no sampler runs.
pub fn observe_qerror(template: &str, q: f64) {
    if !crate::timeseries::on() || !q.is_finite() {
        return;
    }
    let mut st = state();
    match st.ewma.iter_mut().find(|(t, _)| t == template) {
        Some((_, e)) => *e = EWMA_ALPHA * q + (1.0 - EWMA_ALPHA) * *e,
        None => st.ewma.push((template.to_owned(), q)),
    }
}

/// Immediate guard-panic hook: raises a critical alert *now* instead of
/// waiting up to one sampler interval for the windowed `guard_panics`
/// check (which then keeps it active). Called by the core's panic guard;
/// exits on a single relaxed load while no sampler runs.
pub fn observe_panic() {
    if !crate::timeseries::on() {
        return;
    }
    let now = crate::timeseries::now_ms();
    let alert = Alert {
        severity: Severity::Critical,
        metric: "prm.guard.panic".to_owned(),
        t0_ms: now,
        t1_ms: now,
        value: 1.0,
        threshold: 0.0,
        template: None,
    };
    let mut st = state();
    if st.history.len() == st.history_cap {
        st.history.pop_front();
    }
    st.history.push_back(alert.clone());
    st.active.push(alert);
    crate::counter!("obs.watchdog.alerts").inc();
    crate::gauge!("obs.watchdog.critical").set(1.0);
}

/// Current per-template q-error EWMAs, `(template, ewma)`.
pub fn template_ewma() -> Vec<(String, f64)> {
    state().ewma.clone()
}

/// Raises (or refreshes) an alert for `metric` immediately, outside the
/// windowed evaluation — the control-plane entry point (e.g. a failed
/// maintenance cycle). Custom metrics are never in the sampler's judged
/// set, so the alert stays active until [`resolve`] is called; raising
/// the same metric again replaces the previous alert instead of piling
/// up duplicates. Unlike the per-query observe hooks this is not gated
/// on the sampler: maintenance failures are rare control-plane events
/// that must be visible even when no sampler runs.
pub fn raise(severity: Severity, metric: &str, value: f64, threshold: f64) {
    let now = crate::timeseries::now_ms();
    let alert = Alert {
        severity,
        metric: metric.to_owned(),
        t0_ms: now,
        t1_ms: now,
        value,
        threshold,
        template: None,
    };
    let mut st = state();
    st.active.retain(|a| a.metric != metric);
    if st.history.len() == st.history_cap {
        st.history.pop_front();
    }
    st.history.push_back(alert.clone());
    st.active.push(alert);
    crate::counter!("obs.watchdog.alerts").inc();
    if st.active.iter().any(|a| a.severity == Severity::Critical) {
        crate::gauge!("obs.watchdog.critical").set(1.0);
    }
}

/// Clears any active alert for `metric` — the explicit all-clear for
/// alerts raised via [`raise`], which the windowed evaluation never
/// judges and therefore carries forward indefinitely.
pub fn resolve(metric: &str) {
    let mut st = state();
    st.active.retain(|a| a.metric != metric);
    let critical = st.active.iter().any(|a| a.severity == Severity::Critical);
    crate::gauge!("obs.watchdog.critical").set(if critical { 1.0 } else { 0.0 });
}

/// Evaluates one just-closed window, recomputing the active alert set.
/// Called by [`crate::timeseries::sample_now`] on the sampler thread.
///
/// Alerts are *sticky per metric*: a signal with no evidence in this
/// window (e.g. a quiet window with too few q-error samples to judge)
/// carries its previous alert forward instead of clearing it — an
/// incident ends when a window shows the metric healthy again, not when
/// traffic merely pauses. Carried-over alerts are not re-appended to the
/// history ring.
pub fn evaluate(w: &WindowStats) {
    let mut st = state();
    st.evaluated += 1;
    let mut alerts: Vec<Alert> = Vec::new();
    // Metrics that produced (or could have produced) a verdict this
    // window; anything else keeps its previous alert.
    let mut judged: Vec<&'static str> = Vec::new();
    let mk =
        |severity, metric: &str, value: f64, threshold: f64, template: Option<String>| {
            Alert {
                severity,
                metric: metric.to_owned(),
                t0_ms: w.t0_ms,
                t1_ms: w.t1_ms,
                value,
                threshold,
                template,
            }
        };

    // --- q-error drift ------------------------------------------------
    if st.baseline_qerror.is_none() {
        if let Some(pinned) = slo_qerror() {
            st.baseline_qerror = Some(pinned);
        }
    }
    if w.qerror.count >= MIN_QERROR_SAMPLES {
        judged.push("quality.qerror.p99");
        let p99 = w.qerror.p99() as f64 / 1000.0;
        match st.baseline_qerror {
            None => {
                // First healthy window seeds the baseline.
                st.baseline_qerror = Some((p99 * BASELINE_HEADROOM).max(BASELINE_FLOOR));
                st.baseline_seeded = true;
            }
            Some(thr) => {
                if p99 > thr {
                    alerts.push(mk(
                        Severity::Critical,
                        "quality.qerror.p99",
                        p99,
                        thr,
                        None,
                    ));
                } else if p99 > thr * 0.5 {
                    alerts.push(mk(
                        Severity::Warning,
                        "quality.qerror.p99",
                        p99,
                        thr,
                        None,
                    ));
                }
            }
        }
    }
    if let Some(thr) = st.baseline_qerror {
        for (tpl, e) in st.ewma.clone() {
            if e > thr {
                alerts.push(mk(
                    Severity::Warning,
                    "quality.qerror.ewma",
                    e,
                    thr,
                    Some(tpl),
                ));
            }
        }
    }

    // --- warm-latency SLO burn ---------------------------------------
    if let Some(slo) = slo_warm_ns() {
        if w.latency.count > 0 {
            judged.push("prm.estimate.p99_ns");
            let p99 = w.latency.p99() as f64;
            if p99 > slo {
                st.latency_burn += 1;
                let sev = if st.latency_burn >= 2 {
                    Severity::Critical
                } else {
                    Severity::Warning
                };
                alerts.push(mk(sev, "prm.estimate.p99_ns", p99, slo, None));
            } else {
                st.latency_burn = 0;
            }
        }
    }

    // --- fallback-ratio trend ----------------------------------------
    if let Some(r) = w.fallback_ratio {
        judged.push("prm.guard.fallback_ratio");
        let thr = slo_fallback();
        if r > thr {
            alerts.push(mk(Severity::Critical, "prm.guard.fallback_ratio", r, thr, None));
        } else if r > thr * 0.5 {
            alerts.push(mk(Severity::Warning, "prm.guard.fallback_ratio", r, thr, None));
        }
    }

    // --- guard panics -------------------------------------------------
    // A panic-free window only counts as recovery when traffic actually
    // flowed through it.
    if w.guard_panics > 0 || w.queries > 0 {
        judged.push("prm.guard.panic");
        if w.guard_panics > 0 {
            alerts.push(mk(
                Severity::Critical,
                "prm.guard.panic",
                w.guard_panics as f64,
                0.0,
                None,
            ));
        }
    }

    for a in &alerts {
        if st.history.len() == st.history_cap {
            st.history.pop_front();
        }
        st.history.push_back(a.clone());
        crate::counter!("obs.watchdog.alerts").inc();
    }
    // Stickiness: carry forward prior alerts for metrics this window
    // could not judge (EWMA alerts are recomputed every window above).
    for a in std::mem::take(&mut st.active) {
        if a.metric != "quality.qerror.ewma" && !judged.contains(&a.metric.as_str()) {
            alerts.push(a);
        }
    }
    let critical = alerts.iter().any(|a| a.severity == Severity::Critical);
    crate::gauge!("obs.watchdog.critical").set(if critical { 1.0 } else { 0.0 });
    st.active = alerts;
}

/// Alerts of the newest evaluated window.
pub fn active() -> Vec<Alert> {
    state().active.clone()
}

/// Every retained alert, oldest first.
pub fn history() -> Vec<Alert> {
    state().history.iter().cloned().collect()
}

/// Currently-firing critical alerts — non-empty flips `/health` to 503.
pub fn firing_critical() -> Vec<Alert> {
    state().active.iter().filter(|a| a.severity == Severity::Critical).cloned().collect()
}

/// The effective q-error threshold, if one has been pinned or seeded.
pub fn qerror_threshold() -> Option<f64> {
    state().baseline_qerror
}

/// Renders watchdog state as the `/alerts` JSON document.
pub fn to_json() -> String {
    let st = state();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("firing_critical");
    w.raw(if st.active.iter().any(|a| a.severity == Severity::Critical) {
        "true"
    } else {
        "false"
    });
    w.key("windows_evaluated");
    w.uint(st.evaluated);
    w.key("qerror_threshold");
    match st.baseline_qerror {
        Some(t) => w.float(t),
        None => w.float(f64::NAN), // null
    }
    w.key("qerror_threshold_seeded");
    w.raw(if st.baseline_seeded { "true" } else { "false" });
    w.key("slo");
    w.begin_object();
    w.key("warm_ns");
    match slo_warm_ns() {
        Some(t) => w.float(t),
        None => w.float(f64::NAN),
    }
    w.key("fallback_ratio");
    w.float(slo_fallback());
    w.end_object();
    w.key("active");
    w.begin_array();
    for a in &st.active {
        a.write_json(&mut w);
    }
    w.end_array();
    w.key("history");
    w.begin_array();
    for a in &st.history {
        a.write_json(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Clears all watchdog state and SLO overrides (test isolation).
pub fn reset_for_tests() {
    set_slo_qerror(None);
    set_slo_warm_ns(None);
    set_slo_fallback(None);
    let mut st = state();
    *st = WatchState::new();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Histogram, HistogramSnapshot};

    fn empty_hist() -> HistogramSnapshot {
        HistogramSnapshot { count: 0, sum: 0, min: 0, max: 0, buckets: Vec::new() }
    }

    fn hist_of(values: &[u64]) -> HistogramSnapshot {
        let h = Histogram::default();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    fn window(qerror_milli: &[u64], fallback: Option<f64>, panics: u64) -> WindowStats {
        WindowStats {
            t0_ms: 0,
            t1_ms: 1000,
            queries: qerror_milli.len() as u64,
            qps: qerror_milli.len() as f64,
            latency: empty_hist(),
            qerror: hist_of(qerror_milli),
            plan_hit_ratio: None,
            memo_hit_ratio: None,
            fallback_ratio: fallback,
            guard_panics: panics,
        }
    }

    /// Watchdog state is process-global; serialize tests touching it.
    fn with_lock<F: FnOnce()>(f: F) {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        reset_for_tests();
        f();
        reset_for_tests();
    }

    #[test]
    fn healthy_window_seeds_baseline_then_spike_goes_critical() {
        with_lock(|| {
            // Healthy: q ≈ 1–2 ⇒ baseline = max(4·p99, 8) = 8.
            evaluate(&window(&[1000, 1200, 1500, 1100, 2000], None, 0));
            let thr = qerror_threshold().expect("seeded");
            assert!((8.0..=8.5).contains(&thr), "{thr}");
            assert!(active().is_empty(), "seeding window never alerts");
            // Spike to the uniform floor: q ≈ 60 ⇒ critical.
            evaluate(&window(&[60_000, 58_000, 61_000, 59_000, 60_500], None, 0));
            let crit = firing_critical();
            assert_eq!(crit.len(), 1);
            assert_eq!(crit[0].metric, "quality.qerror.p99");
            assert!(crit[0].value > thr);
            // Recovery clears the active set but not the history.
            evaluate(&window(&[1000, 1000, 1000, 1000, 1000], None, 0));
            assert!(firing_critical().is_empty());
            assert!(history().iter().any(|a| a.severity == Severity::Critical));
        });
    }

    #[test]
    fn pinned_slo_beats_auto_seeding_and_small_windows_are_ignored() {
        with_lock(|| {
            set_slo_qerror(Some(10.0));
            // Too few samples: no alert, no seeding side effects.
            evaluate(&window(&[90_000, 95_000], None, 0));
            assert!(active().is_empty());
            assert_eq!(qerror_threshold(), Some(10.0));
            // Enough samples over the pinned SLO: critical immediately
            // (no healthy window was ever needed).
            evaluate(&window(&[90_000; 6], None, 0));
            assert_eq!(firing_critical().len(), 1);
        });
    }

    #[test]
    fn latency_burn_escalates_on_second_consecutive_breach() {
        with_lock(|| {
            set_slo_warm_ns(Some(1000.0));
            let mut w = window(&[], None, 0);
            w.latency = hist_of(&[4000, 4000, 4000]);
            evaluate(&w);
            assert_eq!(active()[0].severity, Severity::Warning);
            evaluate(&w);
            assert_eq!(active()[0].severity, Severity::Critical);
            // A healthy window resets the burn counter.
            let mut ok = window(&[], None, 0);
            ok.latency = hist_of(&[100]);
            evaluate(&ok);
            assert!(active().is_empty());
            evaluate(&w);
            assert_eq!(active()[0].severity, Severity::Warning);
        });
    }

    #[test]
    fn fallback_and_panic_alerts_fire_and_json_renders() {
        with_lock(|| {
            evaluate(&window(&[], Some(0.8), 2));
            let a = active();
            assert_eq!(a.len(), 2);
            assert!(a.iter().any(|x| x.metric == "prm.guard.fallback_ratio"
                && x.severity == Severity::Critical));
            assert!(a.iter().any(|x| x.metric == "prm.guard.panic"));
            let doc = to_json();
            let v = crate::json::parse(&doc).expect("alerts JSON parses");
            assert_eq!(v.get("firing_critical").unwrap().as_str(), None);
            assert_eq!(v.get("active").unwrap().as_array().unwrap().len(), 2);
            assert!(doc.contains("\"firing_critical\":true"));
        });
    }

    #[test]
    fn quiet_windows_keep_alerts_sticky_until_recovery_evidence() {
        with_lock(|| {
            set_slo_qerror(Some(5.0));
            evaluate(&window(&[60_000; 6], None, 0));
            assert_eq!(firing_critical().len(), 1);
            let history_before = history().len();
            // Quiet windows (too few q-error samples to judge) must not
            // clear the incident — or duplicate it in the history.
            evaluate(&window(&[], None, 0));
            evaluate(&window(&[9_000], None, 0));
            assert_eq!(firing_critical().len(), 1, "alert must stay active");
            assert_eq!(history().len(), history_before, "no history duplicates");
            // A judgeable healthy window is real recovery.
            evaluate(&window(&[1_000; 6], None, 0));
            assert!(firing_critical().is_empty());
        });
    }

    #[test]
    fn history_ring_is_bounded() {
        with_lock(|| {
            let cap = alert_ring_from_env();
            for _ in 0..cap + 20 {
                evaluate(&window(&[], None, 1));
            }
            assert_eq!(history().len(), cap);
        });
    }
}
