//! The unified estimator interface and adapters for every method in §5.
//!
//! Everything the paper benchmarks — AVI, MHIST, SAMPLE (single-table and
//! join), BN+UJ, and the PRM — answers relational [`Query`] values through
//! one trait, so the evaluation harness treats them interchangeably and
//! compares error at equal `size_bytes()`.

use std::collections::HashMap;
use std::sync::Arc;

use baselines::sample::JoinPath;
use baselines::{
    AviEstimator, JoinSampleEstimator, MhistEstimator, SampleEstimator, WaveletEstimator,
};
use reldb::{Database, Domain, Pred, Query};

use crate::error::{Error, Result};
use crate::learn::{learn_prm, PrmLearnConfig};
use crate::plan::{FactorCache, FoldCache, PlanCache, PlanKey, QueryPlan};
use crate::prm::Prm;
use crate::qebn::QueryEvalBn;
use crate::schema::SchemaInfo;
use crate::swap::EpochCell;

/// A selectivity estimator: maps a query to an estimated result size.
///
/// Estimators are immutable after construction (`estimate` takes `&self`),
/// and `Sync` is a supertrait so any estimator — including `&dyn` trait
/// objects — can answer independent queries from pool workers (see
/// [`estimate_batch`] and the suite evaluators in [`crate::metrics`]).
pub trait SelectivityEstimator: Sync {
    /// Short display name (e.g. `"PRM"`, `"SAMPLE"`).
    fn name(&self) -> &str;
    /// Storage footprint of the model, in bytes.
    fn size_bytes(&self) -> usize;
    /// Estimated result size (in tuples).
    fn estimate(&self, query: &Query) -> Result<f64>;
}

/// Default for `PRMSEL_PAR_THRESHOLD`: projected batch cost (ns) below
/// which `estimate_batch` stays on the caller's thread. Workers are now
/// persistent parked threads (see `prmsel-par`), so dispatch costs a
/// queue push + condvar wake (microseconds) instead of per-batch thread
/// spawns (milliseconds); ~2 ms of projected work is where fan-out
/// reliably pays for itself even on fast warm suites.
pub const DEFAULT_PAR_THRESHOLD_NS: u64 = 2_000_000;

fn par_threshold_ns() -> u64 {
    std::env::var("PRMSEL_PAR_THRESHOLD")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_PAR_THRESHOLD_NS)
}

/// Estimates a batch of independent queries, returning the estimates in
/// query order (first error wins, matching a serial loop). Queries share
/// no state, so this is pure fan-out; the per-query metrics each
/// estimator records remain exact under concurrency.
///
/// Small batches never reach the pool: the first query is timed as a
/// cost probe, and when the projected remaining work lands under
/// `PRMSEL_PAR_THRESHOLD` nanoseconds ([`DEFAULT_PAR_THRESHOLD_NS`]) the
/// rest runs serially on the caller's thread — dispatch and cross-thread
/// cache contention on a fast suite otherwise cost more than they buy
/// (the small-batch regression where 4-thread throughput landed below
/// 1-thread). The chosen path is counted in `par.batch.serial` /
/// `par.batch.parallel`.
pub fn estimate_batch<E: SelectivityEstimator + ?Sized>(
    estimator: &E,
    queries: &[Query],
) -> Result<Vec<f64>> {
    estimate_batch_with_threshold(estimator, queries, par_threshold_ns())
}

/// [`estimate_batch`] with an explicit serial-cutoff threshold (ns of
/// projected work) — exposed so tests and benches can pin the path.
pub fn estimate_batch_with_threshold<E: SelectivityEstimator + ?Sized>(
    estimator: &E,
    queries: &[Query],
    threshold_ns: u64,
) -> Result<Vec<f64>> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(queries.len());
    // Cost probe: time the first query (it also warms the plan cache for
    // its template, so the projection reflects the warm path the rest of
    // the batch will take only approximately — a miss-heavy batch skews
    // the probe up, which errs toward the pool).
    let probe_start = std::time::Instant::now();
    out.push(estimator.estimate(&queries[0])?);
    let est_cost = probe_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let rest = &queries[1..];
    let projected = est_cost.saturating_mul(rest.len() as u64);
    if par::threads() == 1 || projected < threshold_ns {
        obs::counter!("par.batch.serial").inc();
        for q in rest {
            out.push(estimator.estimate(q)?);
        }
        return Ok(out);
    }
    obs::counter!("par.batch.parallel").inc();
    let chunks = par::chunks(rest.len(), |range| {
        rest[range].iter().map(|q| estimator.estimate(q)).collect::<Vec<_>>()
    });
    for chunk in chunks {
        for r in chunk {
            out.push(r?);
        }
    }
    Ok(out)
}

impl<T: SelectivityEstimator + ?Sized> SelectivityEstimator for &T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn estimate(&self, query: &Query) -> Result<f64> {
        (**self).estimate(query)
    }
}

impl<T: SelectivityEstimator + ?Sized> SelectivityEstimator for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn estimate(&self, query: &Query) -> Result<f64> {
        (**self).estimate(query)
    }
}

/// Maps a predicate to matching dictionary codes using a captured domain.
fn codes_for_pred(domain: &Domain, pred: &Pred) -> Vec<u32> {
    match pred {
        Pred::Eq { value, .. } => domain.code(value).into_iter().collect(),
        Pred::In { values, .. } => {
            let mut codes: Vec<u32> =
                values.iter().filter_map(|v| domain.code(v)).collect();
            codes.sort_unstable();
            codes.dedup();
            codes
        }
        Pred::Range { lo, hi, .. } => domain.codes_in_range(*lo, *hi),
    }
}

/// Compact one-line rendering of a query for flight-recorder trace
/// labels: joined tables plus the predicated attributes, e.g.
/// `person JOIN house WHERE person.age, house.rooms`.
/// A human-readable *template* label for a query: tuple variables and
/// predicate attributes, constants excluded — the display counterpart of
/// [`crate::PlanKey::stable_hash_of`], used by flight-trace labels and
/// the per-template stats table.
pub fn query_label(query: &Query) -> String {
    let mut label = query.vars.join(" JOIN ");
    for (i, p) in query.preds.iter().enumerate() {
        label.push_str(if i == 0 { " WHERE " } else { ", " });
        if query.vars.len() > 1 {
            label.push_str(&query.vars[p.var()]);
            label.push('.');
        }
        label.push_str(p.attr());
    }
    label
}

fn expect_single_table(query: &Query, table: &str) -> Result<()> {
    if !query.is_single_table() || query.vars[0] != table {
        return Err(Error::Schema(reldb::Error::BadJoin(format!(
            "estimator was built for single-table queries over `{table}`"
        ))));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// PRM (and BN / BN+UJ, which are PRMs with restricted structure).
// ---------------------------------------------------------------------

/// How `P(E)` is computed on the unrolled query-evaluation network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InferenceEngine {
    /// Exact variable elimination (the default; unrolled networks are
    /// small, so this is the right choice in practice).
    Exact,
    /// Likelihood-weighting Monte Carlo — the any-time fallback for
    /// pathologically connected models.
    LikelihoodWeighting {
        /// Number of weighted samples per query.
        samples: usize,
        /// RNG seed (deterministic estimates per seed).
        seed: u64,
    },
}

/// One immutable serving generation of the PRM estimator: the model, the
/// schema snapshot it answers against, and every cache derived from them
/// (CPD factors, compiled plans, fold constants). Epochs are published
/// atomically through an [`EpochCell`] — an in-flight estimate pins the
/// epoch it started on and finishes there, so a concurrent
/// [`PrmEstimator::replace_model`] can never mix old parameters with new
/// plans (or vice versa) mid-query.
#[derive(Debug)]
pub struct ModelEpoch {
    /// The model answering queries in this epoch.
    pub prm: Prm,
    /// The schema snapshot captured when the model was (re)built.
    pub schema: SchemaInfo,
    pub(crate) factors: FactorCache,
    pub(crate) plans: PlanCache,
    pub(crate) folds: FoldCache,
    seq: u64,
    created_ms: u64,
}

impl ModelEpoch {
    fn new(prm: Prm, schema: SchemaInfo, seq: u64) -> Self {
        ModelEpoch {
            factors: FactorCache::new(&prm),
            prm,
            schema,
            plans: PlanCache::with_default_capacity(),
            folds: FoldCache::new(),
            seq,
            created_ms: obs::timeseries::now_ms(),
        }
    }

    /// The epoch sequence number (1 for the epoch built with the
    /// estimator, +1 per hot swap).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Wall-clock milliseconds when this epoch was assembled.
    pub fn created_ms(&self) -> u64 {
        self.created_ms
    }

    /// Compiles plans for `keys` into this epoch's plan cache (fanned out
    /// across the worker pool). Returns the number of plans inserted.
    pub fn precompile(&self, keys: &[PlanKey]) -> usize {
        let _span = obs::span("prm.plan.precompile");
        self.plans.precompile(&self.prm, &self.schema, &self.factors, &self.folds, keys)
    }

    /// Precompiles from the manifest named by `PRMSEL_PRECOMPILE`, if
    /// set. Failures (missing/corrupt manifest) are logged, never fatal:
    /// precompilation is an optimization, and the estimator answers
    /// correctly without it.
    fn precompile_from_env(&self) {
        // Register the counter even when idle so operators can tell
        // "precompile off" (0) apart from "not exported".
        obs::counter!("prm.plan.precompiled").add(0);
        let Ok(path) = std::env::var("PRMSEL_PRECOMPILE") else { return };
        if path.is_empty() {
            return;
        }
        let keys = match std::fs::File::open(&path)
            .map_err(|e| crate::Error::Internal(format!("open {path}: {e}")))
            .and_then(|f| crate::persist::load_manifest(std::io::BufReader::new(f)))
        {
            Ok(keys) => keys,
            Err(e) => {
                obs::warn!("PRMSEL_PRECOMPILE={path}: {e}; skipping precompilation");
                return;
            }
        };
        let n = self.precompile(&keys);
        obs::info!("precompiled {n} of {} manifest templates from {path}", keys.len());
    }
}

/// The paper's estimator: a PRM queried through query-evaluation BNs.
///
/// The exact-inference path is compile-once, estimate-many: CPD factors
/// are materialized once per model ([`FactorCache`]) and query templates
/// are compiled once into replayable plans ([`PlanCache`]) — see
/// [`crate::plan`]. Cached and uncached estimates are bit-identical.
///
/// Model state lives in an immutable [`ModelEpoch`] behind an
/// [`EpochCell`], so [`replace_model`](PrmEstimator::replace_model)
/// works through `&self` and hot-swaps the model under live traffic: the
/// new epoch is fully built (factors materialized, hot templates
/// recompiled) *before* it is published, and in-flight estimates finish
/// on the epoch they started with.
#[derive(Debug)]
pub struct PrmEstimator {
    name: String,
    engine: InferenceEngine,
    epochs: EpochCell<ModelEpoch>,
}

impl PrmEstimator {
    fn from_epoch(name: String, epoch: ModelEpoch) -> Self {
        obs::gauge!("prm.model.bytes").set(epoch.prm.size_bytes() as f64);
        crate::maintain::note_model_refreshed(epoch.seq);
        PrmEstimator {
            name,
            engine: InferenceEngine::Exact,
            epochs: EpochCell::new(epoch),
        }
    }

    /// Learns a PRM from the database and wraps it for estimation.
    pub fn build(db: &Database, config: &PrmLearnConfig) -> Result<Self> {
        let _span = obs::span("prm.build");
        let name = if config.allow_foreign_parents || config.max_ji_parents > 0 {
            "PRM"
        } else {
            "BN+UJ"
        };
        let prm = learn_prm(db, config)?;
        let schema = SchemaInfo::from_db(db)?;
        obs::info!(
            "built {} model: {} bytes over {} tables",
            name,
            prm.size_bytes(),
            prm.tables.len()
        );
        Ok(Self::from_epoch(name.to_owned(), ModelEpoch::new(prm, schema, 1)))
    }

    /// Wraps an already-learned PRM.
    pub fn from_prm(prm: Prm, db: &Database, name: impl Into<String>) -> Result<Self> {
        let schema = SchemaInfo::from_db(db)?;
        Ok(Self::from_epoch(name.into(), ModelEpoch::new(prm, schema, 1)))
    }

    /// Assembles an estimator from persisted artifacts (see
    /// [`crate::persist`]) — no database access needed at estimation time.
    pub fn from_parts(prm: Prm, schema: SchemaInfo, name: impl Into<String>) -> Self {
        let epoch = ModelEpoch::new(prm, schema, 1);
        epoch.precompile_from_env();
        Self::from_epoch(name.into(), epoch)
    }

    /// Selects the inference engine used for `P(E)`.
    pub fn set_engine(&mut self, engine: InferenceEngine) {
        self.engine = engine;
    }

    /// The current serving epoch. The returned `Arc` pins model, schema,
    /// and caches together: hold it across related calls when a
    /// consistent view matters (a later `epoch()` may observe a swap).
    pub fn epoch(&self) -> Arc<ModelEpoch> {
        self.epochs.load()
    }

    /// The current epoch sequence number (starts at 1, +1 per swap).
    pub fn epoch_seq(&self) -> u64 {
        self.epochs.seq()
    }

    /// Publishes a refreshed model (and schema snapshot) as a new epoch —
    /// the hot-reload path for maintenance (paper §6). All expensive work
    /// happens *before* the swap, off the request path: the new epoch's
    /// factors are materialized, the old epoch's resident templates are
    /// recompiled against the new model, and any `PRMSEL_PRECOMPILE`
    /// manifest is replayed. Traffic keeps answering from the old epoch
    /// until the single atomic publish; a refreshed model never answers
    /// from stale plans because plans live inside their epoch.
    pub fn replace_model(&self, prm: Prm, schema: SchemaInfo) {
        let _span = obs::span("prm.swap");
        let old = self.epochs.load();
        let next = ModelEpoch::new(prm, schema, old.seq + 1);
        next.plans.set_capacity(old.plans.capacity());
        // Warm the new epoch with the old epoch's hot templates so the
        // first post-swap estimate of each stays on the replay path.
        next.precompile(&old.plans.keys());
        next.precompile_from_env();
        obs::gauge!("prm.model.bytes").set(next.prm.size_bytes() as f64);
        let seq = next.seq;
        self.epochs.swap(Arc::new(next));
        obs::counter!("prm.maintain.swaps").inc();
        crate::maintain::note_model_refreshed(seq);
    }

    /// Caps the number of resident compiled plans (`0` disables plan
    /// caching; every estimate then compiles and discards its plan). The
    /// bound carries forward across [`replace_model`](Self::replace_model).
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        self.epochs.load().plans.set_capacity(capacity);
    }

    /// Drops every compiled plan (cold-cache starting point for benches).
    pub fn clear_plan_cache(&self) {
        self.epochs.load().plans.clear();
    }

    /// Drops every resident plan's evidence-signature memo while keeping
    /// the plans themselves — the memo-*miss* starting point for benches:
    /// the next estimate replays the masked suffix but skips compilation.
    pub fn clear_reduce_memos(&self) {
        self.epochs.load().plans.clear_reduce_memos();
    }

    /// The templates currently resident in the plan cache, most recently
    /// used first — the natural contents of a precompile manifest (see
    /// [`crate::save_manifest`]).
    pub fn plan_keys(&self) -> Vec<PlanKey> {
        self.epochs.load().plans.keys()
    }

    /// Compiles plans for `keys` ahead of queries (fanned out across the
    /// worker pool), so first touches of those templates hit the plan
    /// cache and pay only the evidence-dependent replay suffix. Keys that
    /// are already resident or fail to compile are skipped. Returns the
    /// number of plans inserted.
    pub fn precompile(&self, keys: &[PlanKey]) -> usize {
        self.epochs.load().precompile(keys)
    }

    /// Number of resident compiled plans.
    pub fn plan_cache_len(&self) -> usize {
        self.epochs.load().plans.len()
    }

    /// Whether `query`'s template already has a resident plan.
    pub fn has_cached_plan(&self, query: &Query) -> bool {
        self.epochs.load().plans.contains(&PlanKey::of(query))
    }

    /// Resident entries in the reduced-factor memo of `query`'s plan, or
    /// `None` when no plan is resident — introspection for tests and
    /// tools.
    pub fn reduce_memo_len(&self, query: &Query) -> Option<usize> {
        self.epochs.load().plans.peek(query).map(|p| p.reduce_memo_len())
    }

    /// Builds (without evaluating) the query-evaluation network — exposed
    /// for inspection and tests.
    pub fn unroll(&self, query: &Query) -> Result<QueryEvalBn> {
        let ep = self.epochs.load();
        Ok(QueryEvalBn::build(&ep.prm, &ep.schema, query)?)
    }

    /// Exact estimate that bypasses the plan cache entirely: the template
    /// is compiled fresh and the plan discarded. This is the second rung
    /// of the degradation ladder ([`crate::ResilientEstimator`]) — after a
    /// panic on the cached path, a fresh compile sidesteps any poisoned
    /// resident plan while still answering exactly.
    pub fn estimate_uncached(&self, query: &Query) -> Result<f64> {
        let ep = self.epochs.load();
        ep.schema.validate_query(query)?;
        let plan = QueryPlan::compile(&ep.prm, &ep.schema, &ep.factors, query)?;
        plan.estimate(&ep.schema, query)
    }

    /// Explains an estimate: the upward closure, the unrolled network's
    /// size, the query probability, and the final arithmetic — the trace
    /// a DBA would want when an optimizer picks a surprising plan.
    pub fn explain(&self, query: &Query) -> Result<String> {
        use std::fmt::Write;
        let ep = self.epochs.load();
        let qebn = QueryEvalBn::build(&ep.prm, &ep.schema, query)?;
        let p = bayesnet::probability_of_evidence(&qebn.bn, &qebn.evidence);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "upward closure Q+ ({} tuple variables):",
            qebn.closure_tables.len()
        );
        for (v, &t) in qebn.closure_tables.iter().enumerate() {
            let introduced =
                if v < query.vars.len() { "" } else { "  [introduced by closure]" };
            let _ = writeln!(
                out,
                "  v{v}: {} (|T| = {}){introduced}",
                ep.prm.tables[t].table, ep.prm.tables[t].n_rows
            );
        }
        let _ = writeln!(
            out,
            "query-evaluation network: {} nodes ({} bytes of relevant CPDs)",
            qebn.bn.len(),
            qebn.bn.size_bytes()
        );
        let _ = writeln!(out, "P(selects AND joins) = {p:.3e}");
        let product: f64 =
            qebn.closure_tables.iter().map(|&t| ep.prm.tables[t].n_rows as f64).product();
        let _ = writeln!(out, "estimate = {product:.0} x {p:.3e} = {:.1}", product * p);
        Ok(out)
    }
}

impl SelectivityEstimator for PrmEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn size_bytes(&self) -> usize {
        self.epochs.load().prm.size_bytes()
    }

    fn estimate(&self, query: &Query) -> Result<f64> {
        let start = std::time::Instant::now();
        failpoint::fail_point!("estimate.query").map_err(Error::from)?;
        // Pin the serving epoch once: the whole estimate — validation,
        // plan lookup/compile, replay — runs against one consistent
        // (model, schema, caches) generation even if a swap lands now.
        let ep = self.epochs.load();
        ep.schema.validate_query(query)?;
        obs::flight::begin(|| query_label(query));
        // Template attribution is gated like the flight recorder: one
        // relaxed load when off, hash + thread-local store when on.
        let template = if crate::metrics::template_telemetry_on() {
            let h = PlanKey::stable_hash_of(query);
            crate::metrics::set_current_template(h);
            h
        } else {
            0
        };
        let mut warm = false;
        let est = match self.engine {
            InferenceEngine::Exact => {
                let plan = {
                    let _plan_phase = obs::flight::phase("plan");
                    let (plan, hit) = ep.plans.get_or_compile(query, || {
                        QueryPlan::compile_with(
                            &ep.prm,
                            &ep.schema,
                            &ep.factors,
                            query,
                            Some(&ep.folds),
                        )
                    })?;
                    warm = hit;
                    plan
                };
                obs::histogram!("prm.qebn.nodes").record(plan.n_nodes() as u64);
                plan.estimate(&ep.schema, query)?
            }
            InferenceEngine::LikelihoodWeighting { samples, seed } => {
                let qebn = {
                    let _unroll_phase = obs::flight::phase("unroll");
                    QueryEvalBn::build(&ep.prm, &ep.schema, query)?
                };
                obs::histogram!("prm.qebn.nodes").record(qebn.bn.len() as u64);
                let _sample_phase = obs::flight::phase("sample");
                qebn.estimated_size_approx(&ep.prm, samples, seed)
            }
        };
        obs::flight::finish(est);
        obs::counter!("prm.estimate.calls").inc();
        let elapsed = start.elapsed();
        obs::histogram!("prm.estimate.ns").record_duration(elapsed);
        if template != 0 && warm {
            // Warm latency only: replays of a cached plan are the
            // steady-state a per-template SLO is about — folding the
            // one-off compile in would poison the distribution.
            let name = obs::openmetrics::labeled(
                "prm.estimate.warm.ns",
                &[("template", &crate::metrics::template_label(template))],
            );
            obs::registry().histogram(&name).record_duration(elapsed);
        }
        Ok(est)
    }
}

// ---------------------------------------------------------------------
// AVI.
// ---------------------------------------------------------------------

/// AVI over one table, answering relational queries.
#[derive(Debug)]
pub struct AviAdapter {
    table: String,
    domains: HashMap<String, Domain>,
    inner: AviEstimator,
}

impl AviAdapter {
    /// Builds exact per-attribute histograms for `table`.
    pub fn build(db: &Database, table: &str) -> Result<Self> {
        let t = db.table(table)?;
        let mut domains = HashMap::new();
        for attr in t.schema().value_attrs() {
            domains.insert(attr.to_owned(), t.domain(attr)?.clone());
        }
        Ok(AviAdapter { table: table.to_owned(), domains, inner: AviEstimator::build(t) })
    }
}

impl SelectivityEstimator for AviAdapter {
    fn name(&self) -> &str {
        "AVI"
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn estimate(&self, query: &Query) -> Result<f64> {
        let start = std::time::Instant::now();
        expect_single_table(query, &self.table)?;
        let preds: Vec<(String, Vec<u32>)> = query
            .preds
            .iter()
            .map(|p| {
                let domain = self.domains.get(p.attr()).ok_or_else(|| {
                    Error::Schema(reldb::Error::UnknownAttr {
                        table: self.table.clone(),
                        attr: p.attr().to_owned(),
                    })
                })?;
                Ok((p.attr().to_owned(), codes_for_pred(domain, p)))
            })
            .collect::<Result<_>>()?;
        let est = self.inner.estimate(&preds);
        obs::histogram!("est.avi.estimate.ns").record_duration(start.elapsed());
        Ok(est)
    }
}

// ---------------------------------------------------------------------
// MHIST.
// ---------------------------------------------------------------------

/// MHIST over a fixed attribute subset of one table.
#[derive(Debug)]
pub struct MhistAdapter {
    table: String,
    attrs: Vec<String>,
    domains: Vec<Domain>,
    inner: MhistEstimator,
}

impl MhistAdapter {
    /// Builds an MHIST over `attrs` of `table` within `budget_bytes`.
    pub fn build(
        db: &Database,
        table: &str,
        attrs: &[&str],
        budget_bytes: usize,
    ) -> Result<Self> {
        let t = db.table(table)?;
        let mut columns = Vec::with_capacity(attrs.len());
        let mut cards = Vec::with_capacity(attrs.len());
        let mut domains = Vec::with_capacity(attrs.len());
        for a in attrs {
            columns.push(t.codes(a)?);
            cards.push(t.domain(a)?.card());
            domains.push(t.domain(a)?.clone());
        }
        Ok(MhistAdapter {
            table: table.to_owned(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            domains,
            inner: MhistEstimator::build(&columns, &cards, budget_bytes),
        })
    }
}

impl SelectivityEstimator for MhistAdapter {
    fn name(&self) -> &str {
        "MHIST"
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn estimate(&self, query: &Query) -> Result<f64> {
        let start = std::time::Instant::now();
        expect_single_table(query, &self.table)?;
        // Start unconstrained, then intersect per-predicate.
        let mut allowed: Vec<Vec<u32>> =
            self.domains.iter().map(|d| (0..d.card() as u32).collect()).collect();
        for p in &query.preds {
            let dim = self.attrs.iter().position(|a| a == p.attr()).ok_or_else(|| {
                Error::Schema(reldb::Error::BadPredicate(format!(
                    "attribute `{}` is not covered by this MHIST",
                    p.attr()
                )))
            })?;
            let codes = codes_for_pred(&self.domains[dim], p);
            allowed[dim].retain(|c| codes.contains(c));
        }
        let est = self.inner.estimate(&allowed);
        obs::histogram!("est.mhist.estimate.ns").record_duration(start.elapsed());
        Ok(est)
    }
}

// ---------------------------------------------------------------------
// WAVELET.
// ---------------------------------------------------------------------

/// Thresholded Haar-wavelet approximation over a fixed attribute subset.
#[derive(Debug)]
pub struct WaveletAdapter {
    table: String,
    attrs: Vec<String>,
    domains: Vec<Domain>,
    inner: WaveletEstimator,
}

impl WaveletAdapter {
    /// Builds the wavelet summary over `attrs` of `table` within
    /// `budget_bytes`.
    pub fn build(
        db: &Database,
        table: &str,
        attrs: &[&str],
        budget_bytes: usize,
    ) -> Result<Self> {
        let t = db.table(table)?;
        let mut columns = Vec::with_capacity(attrs.len());
        let mut cards = Vec::with_capacity(attrs.len());
        let mut domains = Vec::with_capacity(attrs.len());
        for a in attrs {
            columns.push(t.codes(a)?);
            cards.push(t.domain(a)?.card());
            domains.push(t.domain(a)?.clone());
        }
        Ok(WaveletAdapter {
            table: table.to_owned(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            domains,
            inner: WaveletEstimator::build(&columns, &cards, budget_bytes),
        })
    }
}

impl SelectivityEstimator for WaveletAdapter {
    fn name(&self) -> &str {
        "WAVELET"
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn estimate(&self, query: &Query) -> Result<f64> {
        let start = std::time::Instant::now();
        expect_single_table(query, &self.table)?;
        let mut allowed: Vec<Vec<u32>> =
            self.domains.iter().map(|d| (0..d.card() as u32).collect()).collect();
        for p in &query.preds {
            let dim = self.attrs.iter().position(|a| a == p.attr()).ok_or_else(|| {
                Error::Schema(reldb::Error::BadPredicate(format!(
                    "attribute `{}` is not covered by this wavelet summary",
                    p.attr()
                )))
            })?;
            let codes = codes_for_pred(&self.domains[dim], p);
            allowed[dim].retain(|c| codes.contains(c));
        }
        let est = self.inner.estimate(&allowed);
        obs::histogram!("est.wavelet.estimate.ns").record_duration(start.elapsed());
        Ok(est)
    }
}

// ---------------------------------------------------------------------
// SAMPLE (single table).
// ---------------------------------------------------------------------

/// Row sampling over one table.
#[derive(Debug)]
pub struct SampleAdapter {
    table: String,
    domains: HashMap<String, Domain>,
    inner: SampleEstimator,
}

impl SampleAdapter {
    /// Reservoir-samples `table` within `budget_bytes`.
    pub fn build(
        db: &Database,
        table: &str,
        budget_bytes: usize,
        seed: u64,
    ) -> Result<Self> {
        let t = db.table(table)?;
        let mut domains = HashMap::new();
        for attr in t.schema().value_attrs() {
            domains.insert(attr.to_owned(), t.domain(attr)?.clone());
        }
        Ok(SampleAdapter {
            table: table.to_owned(),
            domains,
            inner: SampleEstimator::build(t, budget_bytes, seed),
        })
    }
}

impl SelectivityEstimator for SampleAdapter {
    fn name(&self) -> &str {
        "SAMPLE"
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn estimate(&self, query: &Query) -> Result<f64> {
        let start = std::time::Instant::now();
        expect_single_table(query, &self.table)?;
        let preds: Vec<(String, Vec<u32>)> = query
            .preds
            .iter()
            .map(|p| {
                let domain = self.domains.get(p.attr()).ok_or_else(|| {
                    Error::Schema(reldb::Error::UnknownAttr {
                        table: self.table.clone(),
                        attr: p.attr().to_owned(),
                    })
                })?;
                Ok((p.attr().to_owned(), codes_for_pred(domain, p)))
            })
            .collect::<Result<_>>()?;
        let est = self.inner.estimate(&preds);
        obs::histogram!("est.sample.estimate.ns").record_duration(start.elapsed());
        Ok(est)
    }
}

// ---------------------------------------------------------------------
// SAMPLE (join chain).
// ---------------------------------------------------------------------

/// Sampling of the full foreign-key join along a chain of tables.
#[derive(Debug)]
pub struct JoinSampleAdapter {
    /// Tables on the chain, base first.
    chain: Vec<String>,
    domains: HashMap<(String, String), Domain>,
    inner: JoinSampleEstimator,
}

impl JoinSampleAdapter {
    /// Builds the joined sample for the chain starting at `base` and
    /// following `hops` (foreign-key attribute names).
    pub fn build(
        db: &Database,
        base: &str,
        hops: &[&str],
        budget_bytes: usize,
        seed: u64,
    ) -> Result<Self> {
        let path = JoinPath {
            base: base.to_owned(),
            hops: hops.iter().map(|s| s.to_string()).collect(),
        };
        let mut chain = vec![base.to_owned()];
        let mut current = base.to_owned();
        for fk in hops {
            let target = db
                .foreign_keys_of(&current)?
                .into_iter()
                .find(|f| &f.attr == fk)
                .ok_or_else(|| {
                    Error::Schema(reldb::Error::BadJoin(format!(
                        "`{current}.{fk}` is not a foreign key"
                    )))
                })?
                .target;
            chain.push(target.clone());
            current = target;
        }
        let mut domains = HashMap::new();
        for table in &chain {
            let t = db.table(table)?;
            for attr in t.schema().value_attrs() {
                domains.insert((table.clone(), attr.to_owned()), t.domain(attr)?.clone());
            }
        }
        Ok(JoinSampleAdapter {
            chain,
            domains,
            inner: JoinSampleEstimator::build(db, &path, budget_bytes, seed)?,
        })
    }
}

impl SelectivityEstimator for JoinSampleAdapter {
    fn name(&self) -> &str {
        "SAMPLE"
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn estimate(&self, query: &Query) -> Result<f64> {
        // The query must join the full chain: one var per chain table.
        if query.vars.len() != self.chain.len()
            || query.joins.len() + 1 != self.chain.len()
        {
            return Err(Error::Schema(reldb::Error::BadJoin(
                "join-sample estimator answers full-chain queries only".into(),
            )));
        }
        for table in &self.chain {
            if !query.vars.contains(table) {
                return Err(Error::Schema(reldb::Error::BadJoin(format!(
                    "query does not cover chain table `{table}`"
                ))));
            }
        }
        let start = std::time::Instant::now();
        let preds: Vec<((String, String), Vec<u32>)> = query
            .preds
            .iter()
            .map(|p| {
                let table = query.vars[p.var()].clone();
                let key = (table, p.attr().to_owned());
                let domain = self.domains.get(&key).ok_or_else(|| {
                    Error::Schema(reldb::Error::UnknownAttr {
                        table: key.0.clone(),
                        attr: key.1.clone(),
                    })
                })?;
                Ok((key, codes_for_pred(domain, p)))
            })
            .collect::<Result<_>>()?;
        let est = self.inner.estimate(&preds);
        obs::histogram!("est.join_sample.estimate.ns").record_duration(start.elapsed());
        Ok(est)
    }
}
