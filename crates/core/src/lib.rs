//! # prmsel — selectivity estimation using probabilistic models
//!
//! A production-quality Rust reproduction of *Selectivity Estimation using
//! Probabilistic Models* (Getoor, Taskar, Koller; SIGMOD 2001).
//!
//! The paper's idea: approximate the joint frequency distribution of a
//! relational database with a **probabilistic relational model** — per-table
//! Bayesian-network structure, cross-table parents through foreign keys,
//! and per-foreign-key **join indicator** variables that capture join skew
//! — and answer *any* select/foreign-key-join query from that one model by
//! unrolling it into a query-evaluation Bayesian network and running exact
//! inference.
//!
//! ## Quick start
//!
//! ```
//! use prmsel::{PrmEstimator, PrmLearnConfig, SelectivityEstimator};
//! use reldb::{Cell, DatabaseBuilder, Query, TableBuilder, Value};
//!
//! // A tiny two-table database: accounts and their transactions.
//! let mut acct = TableBuilder::new("account").key("id").col("tier");
//! let mut tx = TableBuilder::new("tx").key("id").fk("account", "account").col("kind");
//! for i in 0..8i64 {
//!     acct.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 2))]).unwrap();
//! }
//! for i in 0..64i64 {
//!     // Odd-id (tier 1) accounts get most of the transactions.
//!     let owner = if i % 4 == 0 { (i / 4) % 4 * 2 } else { (i % 4) * 2 + 1 };
//!     tx.push_row(vec![Cell::Key(i), Cell::Key(owner), Cell::Val(Value::Int(i % 3))])
//!         .unwrap();
//! }
//! let db = DatabaseBuilder::new()
//!     .add_table(acct.finish().unwrap())
//!     .add_table(tx.finish().unwrap())
//!     .finish()
//!     .unwrap();
//!
//! // Offline: learn a PRM under a byte budget.
//! let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
//!
//! // Online: estimate the size of a select-join query.
//! let mut b = Query::builder();
//! let t = b.var("tx");
//! let a = b.var("account");
//! b.join(t, "account", a).eq(a, "tier", 1).eq(t, "kind", 0);
//! let estimate = est.estimate(&b.build()).unwrap();
//! let truth = reldb::result_size(&db, &b.build()).unwrap();
//! assert!(estimate >= 0.0);
//! assert!(truth > 0);
//! ```
//!
//! ## Crate map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`prm`] | §3.2 | the PRM model type: attribute CPDs, join indicators |
//! | [`learn`] | §4 | greedy budgeted structure search (SSN / MDL / naive) |
//! | [`qebn`] | §3.3 | upward closure + query-evaluation BN + inference |
//! | [`plan`] | §3.3–3.5 | compile-once online path: factor cache, plan cache |
//! | [`estimator`] | §5 | one trait over PRM, BN+UJ, AVI, MHIST, SAMPLE |
//! | [`metrics`] | §5 | adjusted relative error, suite evaluation |
//! | [`largedomain`] | §2.3 | discretization of wide ordinal domains |
//! | [`maintain`] | §6 | incremental parameter refresh, score tracking |
//! | [`nonkey`] | §6 | non-key equality joins by value summation |
//! | [`planner`] | §1 | demo cost-based join-order optimizer on top |
//! | [`persist`] | — | versioned binary model files (offline → online handoff) |
//! | [`schema`] | — | schema snapshot used by the online phase |

pub(crate) mod ctx;
pub mod delta;
pub mod error;
pub mod estimator;
pub mod groupby;
pub mod guard;
pub mod largedomain;
pub mod learn;
pub mod maintain;
pub mod metrics;
pub mod nonkey;
pub mod persist;
pub mod plan;
pub mod planner;
pub mod prm;
pub mod qebn;
pub mod resilient;
pub mod schema;
pub mod swap;

pub use delta::{DeltaRow, DeltaState, TableDelta, UpdateBatch};
pub use error::{BudgetKind, Error, ErrorClass, Result};
pub use estimator::{
    estimate_batch, estimate_batch_with_threshold, query_label, AviAdapter,
    InferenceEngine, JoinSampleAdapter, MhistAdapter, ModelEpoch, PrmEstimator,
    SampleAdapter, SelectivityEstimator, WaveletAdapter, DEFAULT_PAR_THRESHOLD_NS,
};
pub use groupby::GroupEstimate;
pub use largedomain::{discretize_database, DiscretizedDatabase, DiscretizingEstimator};
pub use learn::{learn_prm, PrmLearnConfig};
pub use maintain::{
    drift_relearn_threshold, model_epoch, model_loglik, model_staleness_ms,
    refresh_parameters, MaintainOptions, Maintainer, RelearnFn, DEFAULT_DRIFT_RELEARN,
};
pub use metrics::{
    adjusted_relative_error, evaluate_suite, record_quality, set_template_telemetry,
    template_label, template_telemetry_on, SuiteEval,
};
pub use nonkey::JoinSide;
pub use persist::{load_manifest, load_model, save_manifest, save_model};
pub use plan::{FactorCache, FoldCache, PlanCache, PlanKey, QueryPlan};
pub use planner::{best_plan, enumerate_plans, Plan};
pub use prm::{JiParentRef, ParentRef, Prm};
pub use qebn::{NodeSource, QueryEvalBn};
pub use resilient::{Outcome, ResilientEstimator, Rung};
pub use schema::SchemaInfo;
pub use swap::EpochCell;

// Re-export the knobs callers tune.
pub use bayesnet::learn::treecpd::TreeGrowOptions;
pub use bayesnet::{CpdKind, StepRule};
