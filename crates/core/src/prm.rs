//! The probabilistic relational model (PRM) type.
//!
//! A PRM (Definition 3.1 of the paper) holds, for every table:
//!
//! * a local probabilistic model for each **value attribute** — parents may
//!   be attributes of the same table or attributes of a foreign-key target
//!   table (one hop; longer chains compose when queries are unrolled), and
//! * a local probabilistic model for each **join indicator** `J_F` — one
//!   boolean per foreign key `F`, true for a (child, parent) tuple pair
//!   exactly when the foreign key matches, with parents drawn from the
//!   attributes of the two tables it connects.
//!
//! A PRM over a one-table database degenerates to a plain Bayesian network,
//! which is how the single-table experiments (§2) run through the same
//! code path as the select-join ones (§3).

use bayesnet::Cpd;

/// Reference to a parent of a value attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ParentRef {
    /// Another value attribute of the same table (by attr index).
    Local {
        /// Index into the owning table's value attributes.
        attr: usize,
    },
    /// A value attribute of the table referenced by foreign key `fk`.
    Foreign {
        /// Index into the owning table's foreign keys.
        fk: usize,
        /// Index into the *target* table's value attributes.
        attr: usize,
    },
}

/// Reference to a parent of a join indicator `J_F` for `F : T → S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JiParentRef {
    /// A value attribute of the child table `T` (the FK side).
    Child {
        /// Index into `T`'s value attributes.
        attr: usize,
    },
    /// A value attribute of the parent table `S` (the PK side).
    Parent {
        /// Index into `S`'s value attributes.
        attr: usize,
    },
}

/// The model of one value attribute.
#[derive(Debug, Clone)]
pub struct AttrModel {
    /// Attribute name.
    pub name: String,
    /// Domain cardinality.
    pub card: usize,
    /// Parent references, aligned with the CPD's parent slots.
    pub parents: Vec<ParentRef>,
    /// `P(attr | parents)` (conditioned on the relevant join indicators
    /// being true, which is the only case a query-evaluation network ever
    /// exercises).
    pub cpd: Cpd,
}

/// The model of one join indicator.
#[derive(Debug, Clone)]
pub struct JoinIndicatorModel {
    /// Foreign-key attribute name in the child table.
    pub fk_attr: String,
    /// Target (parent) table name.
    pub target: String,
    /// Parent references, aligned with `parent_cards` / the rows of
    /// `p_true`.
    pub parents: Vec<JiParentRef>,
    /// Cardinalities of the parents.
    pub parent_cards: Vec<usize>,
    /// `P(J = true | parents)`, one entry per parent configuration
    /// (row-major). With no parents this is the single value `1/|S|`.
    pub p_true: Vec<f64>,
}

impl JoinIndicatorModel {
    /// `P(J = true | config)`.
    pub fn prob_true(&self, config: &[u32]) -> f64 {
        debug_assert_eq!(config.len(), self.parent_cards.len());
        let mut row = 0usize;
        for (&c, &card) in config.iter().zip(&self.parent_cards) {
            row = row * card + c as usize;
        }
        self.p_true[row]
    }

    /// Storage: 4 bytes per stored probability + 2 per scope variable.
    pub fn size_bytes(&self) -> usize {
        4 * self.p_true.len() + 2 * (1 + self.parents.len())
    }

    /// Expands to a CPD over (parents…, J) suitable for a query-evaluation
    /// network (J binary: false = 0, true = 1).
    pub fn to_cpd(&self) -> Cpd {
        let rows = self.parent_cards.iter().product::<usize>().max(1);
        let mut probs = Vec::with_capacity(rows * 2);
        for &p in &self.p_true {
            probs.push(1.0 - p);
            probs.push(p);
        }
        bayesnet::TableCpd::new(2, self.parent_cards.clone(), probs).into()
    }
}

/// Per-table component of a PRM.
#[derive(Debug, Clone)]
pub struct TableModel {
    /// Table name.
    pub table: String,
    /// Table cardinality at learning time (used in size estimates).
    pub n_rows: u64,
    /// Models for the value attributes, in schema order.
    pub attrs: Vec<AttrModel>,
    /// Models for the join indicators, in schema (FK declaration) order.
    pub join_indicators: Vec<JoinIndicatorModel>,
}

/// A learned probabilistic relational model.
#[derive(Debug, Clone)]
pub struct Prm {
    /// Per-table models, in database table order.
    pub tables: Vec<TableModel>,
}

impl Prm {
    /// The model for a table, by name.
    pub fn table_model(&self, table: &str) -> Option<&TableModel> {
        self.tables.iter().find(|t| t.table == table)
    }

    /// Total storage in bytes: every attribute CPD plus every join
    /// indicator (the join-indicator entry with no parents — the uniform
    /// join probability — is counted too, as any estimator must store it).
    pub fn size_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.attrs.iter().map(|a| a.cpd.size_bytes()).sum::<usize>()
                    + t.join_indicators.iter().map(|j| j.size_bytes()).sum::<usize>()
            })
            .sum()
    }

    /// Total number of cross-table (foreign) attribute parents — zero for
    /// a BN+UJ-style model.
    pub fn foreign_parent_count(&self) -> usize {
        self.tables
            .iter()
            .flat_map(|t| &t.attrs)
            .flat_map(|a| &a.parents)
            .filter(|p| matches!(p, ParentRef::Foreign { .. }))
            .count()
    }

    /// Total number of join-indicator parents — zero under the uniform
    /// join assumption.
    pub fn ji_parent_count(&self) -> usize {
        self.tables.iter().flat_map(|t| &t.join_indicators).map(|j| j.parents.len()).sum()
    }
}

impl Prm {
    /// A human-readable structure summary (the textual analogue of the
    /// paper's Fig. 3(a) diagram): every attribute with its parents, every
    /// join indicator with its parents, and per-family storage.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for t in &self.tables {
            let _ = writeln!(out, "table {} ({} rows):", t.table, t.n_rows);
            for a in &t.attrs {
                let parents: Vec<String> = a
                    .parents
                    .iter()
                    .map(|p| match *p {
                        ParentRef::Local { attr } => t.attrs[attr].name.clone(),
                        ParentRef::Foreign { fk, attr } => {
                            let ji = &t.join_indicators[fk];
                            let target = self
                                .table_model(&ji.target)
                                .expect("target table modeled");
                            format!("{}.{}", ji.fk_attr, target.attrs[attr].name)
                        }
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "  {} <- [{}]  ({} B)",
                    a.name,
                    parents.join(", "),
                    a.cpd.size_bytes()
                );
            }
            for ji in &t.join_indicators {
                let target = self.table_model(&ji.target).expect("target table modeled");
                let parents: Vec<String> = ji
                    .parents
                    .iter()
                    .map(|p| match *p {
                        JiParentRef::Child { attr } => t.attrs[attr].name.clone(),
                        JiParentRef::Parent { attr } => {
                            format!("{}.{}", ji.target, target.attrs[attr].name)
                        }
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "  J[{} -> {}] <- [{}]  ({} B)",
                    ji.fk_attr,
                    ji.target,
                    parents.join(", "),
                    ji.size_bytes()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayesnet::TableCpd;

    fn tiny_prm() -> Prm {
        Prm {
            tables: vec![TableModel {
                table: "t".into(),
                n_rows: 10,
                attrs: vec![AttrModel {
                    name: "x".into(),
                    card: 2,
                    parents: vec![],
                    cpd: TableCpd::new(2, vec![], vec![0.5, 0.5]).into(),
                }],
                join_indicators: vec![JoinIndicatorModel {
                    fk_attr: "s".into(),
                    target: "s".into(),
                    parents: vec![JiParentRef::Child { attr: 0 }],
                    parent_cards: vec![2],
                    p_true: vec![0.1, 0.3],
                }],
            }],
        }
    }

    #[test]
    fn join_indicator_lookup_and_expansion() {
        let prm = tiny_prm();
        let ji = &prm.tables[0].join_indicators[0];
        assert_eq!(ji.prob_true(&[0]), 0.1);
        assert_eq!(ji.prob_true(&[1]), 0.3);
        let cpd = ji.to_cpd();
        assert_eq!(cpd.dist(&[0]), &[0.9, 0.1]);
        assert_eq!(cpd.dist(&[1]), &[0.7, 0.3]);
    }

    #[test]
    fn size_accounting_sums_components() {
        let prm = tiny_prm();
        let attr_bytes = prm.tables[0].attrs[0].cpd.size_bytes();
        let ji_bytes = prm.tables[0].join_indicators[0].size_bytes();
        assert_eq!(prm.size_bytes(), attr_bytes + ji_bytes);
        assert_eq!(ji_bytes, 4 * 2 + 2 * 2);
    }

    #[test]
    fn parent_counts() {
        let prm = tiny_prm();
        assert_eq!(prm.foreign_parent_count(), 0);
        assert_eq!(prm.ji_parent_count(), 1);
    }

    #[test]
    fn describe_renders_structure() {
        let prm = Prm {
            tables: vec![
                TableModel {
                    table: "s".into(),
                    n_rows: 5,
                    attrs: vec![AttrModel {
                        name: "u".into(),
                        card: 2,
                        parents: vec![],
                        cpd: TableCpd::new(2, vec![], vec![0.5, 0.5]).into(),
                    }],
                    join_indicators: vec![],
                },
                TableModel {
                    table: "t".into(),
                    n_rows: 10,
                    attrs: vec![AttrModel {
                        name: "x".into(),
                        card: 2,
                        parents: vec![ParentRef::Foreign { fk: 0, attr: 0 }],
                        cpd: TableCpd::new(2, vec![2], vec![0.5; 4]).into(),
                    }],
                    join_indicators: vec![JoinIndicatorModel {
                        fk_attr: "s".into(),
                        target: "s".into(),
                        parents: vec![JiParentRef::Parent { attr: 0 }],
                        parent_cards: vec![2],
                        p_true: vec![0.1, 0.3],
                    }],
                },
            ],
        };
        let text = prm.describe();
        assert!(text.contains("table t (10 rows):"), "{text}");
        assert!(text.contains("x <- [s.u]"), "{text}");
        assert!(text.contains("J[s -> s] <- [s.u]"), "{text}");
    }
}
