//! Approximate grouped counting (paper §1 and §6: "there are obvious
//! applications of our techniques to the task of approximate query
//! answering … counting (aggregation) queries").
//!
//! `SELECT g, COUNT(*) … GROUP BY g` decomposes into one selectivity
//! estimate per group value, all answered by the same model. The grouped
//! estimates inherit the model's normalization: summed over groups they
//! equal the estimate of the ungrouped query.

use reldb::{Error, Pred, Query, Result, Value};

use crate::estimator::{PrmEstimator, SelectivityEstimator};

/// One estimated group of an approximate `GROUP BY` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupEstimate {
    /// The group's value.
    pub value: Value,
    /// Estimated number of result tuples in the group.
    pub count: f64,
}

impl PrmEstimator {
    /// Approximates `SELECT <var.attr>, COUNT(*) FROM <query> GROUP BY
    /// <var.attr>`: one entry per domain value of the grouping attribute,
    /// in domain (code) order.
    pub fn estimate_group_counts(
        &self,
        query: &Query,
        var: usize,
        attr: &str,
    ) -> Result<Vec<GroupEstimate>> {
        let table_name = query.vars.get(var).ok_or(Error::UnknownVar(var))?;
        let epoch = self.epoch();
        let table = epoch
            .schema
            .tables
            .iter()
            .find(|t| &t.name == table_name)
            .ok_or_else(|| Error::UnknownTable(table_name.clone()))?;
        let idx = table.attrs.iter().position(|a| a == attr).ok_or_else(|| {
            Error::UnknownAttr { table: table_name.clone(), attr: attr.to_owned() }
        })?;
        let domain = &table.domains[idx];
        let mut out = Vec::with_capacity(domain.card());
        for value in domain.values() {
            let mut q = query.clone();
            q.preds.push(Pred::Eq { var, attr: attr.to_owned(), value: value.clone() });
            out.push(GroupEstimate { value: value.clone(), count: self.estimate(&q)? });
        }
        // Normalize to the ungrouped estimate. The grouped queries close
        // upward through the grouping attribute's foreign parents, so
        // their join-indicator mass need not sum to exactly 1 over the
        // extra variables; rescaling restores the partition invariant
        // (groups sum to the ungrouped size) exactly.
        let raw_total: f64 = out.iter().map(|g| g.count).sum();
        if raw_total > 0.0 {
            let ungrouped = self.estimate(query)?;
            let scale = ungrouped / raw_total;
            for g in &mut out {
                g.count *= scale;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::PrmLearnConfig;
    use workloads::tb::tb_database_sized;

    #[test]
    fn groups_partition_the_ungrouped_estimate() {
        let db = tb_database_sized(100, 150, 1_200, 3);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let mut b = Query::builder();
        let c = b.var("contact");
        let p = b.var("patient");
        b.join(c, "patient", p).eq(p, "age", 2);
        let q = b.build();
        let groups = est.estimate_group_counts(&q, c, "contype").unwrap();
        assert_eq!(groups.len(), 5);
        let total: f64 = groups.iter().map(|g| g.count).sum();
        let ungrouped = est.estimate(&q).unwrap();
        assert!(
            (total - ungrouped).abs() < 1e-6 * ungrouped.max(1.0),
            "groups sum {total} vs {ungrouped}"
        );
    }

    #[test]
    fn group_counts_track_exact_counts() {
        let db = tb_database_sized(100, 150, 4_000, 4);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let mut b = Query::builder();
        let c = b.var("contact");
        b.eq(c, "infected", 1);
        let q = b.build();
        let groups = est.estimate_group_counts(&q, c, "contype").unwrap();
        for g in &groups {
            let mut truth_b = Query::builder();
            let v = truth_b.var("contact");
            truth_b.eq(v, "infected", 1).eq(v, "contype", g.value.clone());
            let truth = reldb::result_size(&db, &truth_b.build()).unwrap() as f64;
            assert!(
                (g.count - truth).abs() / truth.max(10.0) < 0.6,
                "group {:?}: est {} truth {truth}",
                g.value,
                g.count
            );
        }
    }

    #[test]
    fn unknown_grouping_attr_is_rejected() {
        let db = tb_database_sized(50, 60, 300, 5);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let mut b = Query::builder();
        let c = b.var("contact");
        let q = b.build();
        assert!(est.estimate_group_counts(&q, c, "nope").is_err());
        assert!(est.estimate_group_counts(&q, 9, "contype").is_err());
    }
}
