//! PRM construction from a relational database (paper §4).
//!
//! One greedy hill-climbing search over the *whole* database: the move
//! space covers, under a single global byte budget,
//!
//! * adding/removing a **local parent** (same-table attribute) of a value
//!   attribute,
//! * adding/removing a **foreign parent** (attribute of a foreign-key
//!   target table) of a value attribute, and
//! * adding/removing a parent of a **join indicator** (an attribute of
//!   either table the foreign key connects).
//!
//! Scores decompose per family. Attribute families are scored on the
//! owning table's rows (sufficient statistics collected through the
//! foreign-key join, §4.2); join-indicator families are scored on the
//! implicit `T × S` pair population, whose statistics reduce to one join
//! group-by plus two marginal group-bys — exactly the counts the paper
//! derives (`N(pa) = N_T(x)·N_S(y)` in the denominator of Eq. 4).
//!
//! Structural constraints (paper §4.3.2): per-table attribute DAGs,
//! table stratification for foreign parents, no attribute may both depend
//! through a foreign key `F` and serve as a parent of `J_F` (which would
//! make the unrolled query-evaluation network cyclic), and per-family
//! parent bounds.

use std::collections::HashMap;

use bayesnet::cpd::TableCpd;
use bayesnet::graph::Dag;
use bayesnet::learn::score::{family_loglik, mdl_penalty_per_param};
use bayesnet::learn::treecpd::{grow_tree, TreeGrowOptions};
use bayesnet::{Cpd, CpdKind, StepRule};
use reldb::{CountTable, Database, Result};

use crate::ctx::Ctx;
use crate::prm::{
    AttrModel, JiParentRef, JoinIndicatorModel, ParentRef, Prm, TableModel,
};

/// Configuration of PRM construction.
#[derive(Debug, Clone)]
pub struct PrmLearnConfig {
    /// CPD representation for attribute families.
    pub cpd_kind: CpdKind,
    /// Global byte budget for the whole model.
    pub budget_bytes: usize,
    /// Max parents per value attribute.
    pub max_parents: usize,
    /// Max parents per join indicator (0 = uniform join assumption).
    pub max_ji_parents: usize,
    /// Allow cross-table attribute parents (false = per-table BNs).
    pub allow_foreign_parents: bool,
    /// Step-selection rule (naive ΔLL / SSN / MDL).
    pub rule: StepRule,
    /// Tree-growth knobs (ignored for table CPDs).
    pub tree: TreeGrowOptions,
    /// Reject table-CPD families whose dense count table would exceed
    /// this many cells.
    pub max_family_cells: usize,
    /// Random-perturbation restarts after the first convergence (paper
    /// §4.3.3: "the algorithm can take some number of random steps, and
    /// then resume the hill-climbing process").
    pub restarts: usize,
    /// RNG seed for the restarts.
    pub seed: u64,
    /// Optional single-pass candidate prefilter (the paper's §6 future
    /// work: "an initial single pass over the data can be used to 'home
    /// in' on a much smaller set of candidate models"). When set, each
    /// attribute only considers its `k` highest-mutual-information
    /// candidates as parents, shrinking the move space dramatically.
    pub candidate_parents_per_attr: Option<usize>,
}

impl Default for PrmLearnConfig {
    fn default() -> Self {
        PrmLearnConfig {
            cpd_kind: CpdKind::Tree,
            budget_bytes: 8192,
            max_parents: 3,
            max_ji_parents: 2,
            allow_foreign_parents: true,
            rule: StepRule::Ssn,
            tree: TreeGrowOptions::default(),
            max_family_cells: 4_000_000,
            restarts: 0,
            seed: 0x5EED,
            candidate_parents_per_attr: None,
        }
    }
}

impl PrmLearnConfig {
    /// The **BN+UJ** baseline of §5: independent per-table Bayesian
    /// networks plus the uniform join assumption.
    pub fn bn_uj(budget_bytes: usize) -> Self {
        PrmLearnConfig {
            budget_bytes,
            allow_foreign_parents: false,
            max_ji_parents: 0,
            ..Default::default()
        }
    }
}

/// Learns a PRM from the database under the given configuration.
pub fn learn_prm(db: &Database, config: &PrmLearnConfig) -> Result<Prm> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let ctx = {
        let _span = obs::span("prm.learn.stats");
        Ctx::build(db, config)?
    };
    let mut learner = Learner::new(&ctx, config.clone());
    {
        let _span = obs::span("prm.learn.climb");
        learner.climb();
    }
    if config.restarts > 0 {
        let _span = obs::span("prm.learn.restarts");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut best = learner.snapshot();
        for _ in 0..config.restarts {
            learner.perturb(&mut rng);
            learner.climb();
            if learner.total_ll() > best.ll {
                best = learner.snapshot();
            }
        }
        if best.ll > learner.total_ll() {
            learner.restore(best);
        }
    }
    let _span = obs::span("prm.learn.assemble");
    Ok(learner.assemble())
}

// ---------------------------------------------------------------------
// The hill-climbing learner.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    AttrAdd { t: usize, a: usize, p: ParentRef },
    AttrDel { t: usize, a: usize, p: ParentRef },
    JiAdd { t: usize, f: usize, p: JiParentRef },
    JiDel { t: usize, f: usize, p: JiParentRef },
}

#[derive(Clone)]
struct AttrEval {
    ll: f64,
    bytes: usize,
    cpd: Cpd,
}

#[derive(Clone)]
struct JiEval {
    ll: f64,
    bytes: usize,
    parent_cards: Vec<usize>,
    p_true: Vec<f64>,
}

struct Snapshot {
    attr_parents: Vec<Vec<Vec<ParentRef>>>,
    ji_parents: Vec<Vec<Vec<JiParentRef>>>,
    local_dags: Vec<Dag>,
    cur_attr: Vec<Vec<AttrEval>>,
    cur_ji: Vec<Vec<JiEval>>,
    ll: f64,
}

type AttrCache = HashMap<(usize, usize, Vec<ParentRef>, usize), Option<AttrEval>>;
type JiCache = HashMap<(usize, usize, Vec<JiParentRef>), JiEval>;

struct Learner<'c> {
    ctx: &'c Ctx,
    config: PrmLearnConfig,
    /// Per (table, attr): the candidate parent shortlist, or None = all.
    candidates: Vec<Vec<Option<Vec<ParentRef>>>>,
    attr_parents: Vec<Vec<Vec<ParentRef>>>,
    ji_parents: Vec<Vec<Vec<JiParentRef>>>,
    local_dags: Vec<Dag>,
    /// Eval of every *current* family (what the model would ship today).
    cur_attr: Vec<Vec<AttrEval>>,
    cur_ji: Vec<Vec<JiEval>>,
    /// Memo for candidate evaluations. Tree families are re-grown under
    /// the byte allowance available at evaluation time (the paper's
    /// "add a split" operator at a different granularity), so the cap is
    /// part of the key.
    attr_cache: AttrCache,
    ji_cache: JiCache,
}

/// A worker's view of the learner during concurrent move scoring: shared
/// read access to the cross-step memo plus a thread-local overflow for
/// evaluations computed this batch. The caller absorbs the locals back
/// into the learner's memo after the parallel region, so cross-step
/// caching keeps working. Evaluations are pure functions of
/// `(ctx, config, key)`, so two workers computing the same key insert
/// identical values and merge order cannot matter.
struct EvalShard<'a> {
    ctx: &'a Ctx,
    config: &'a PrmLearnConfig,
    shared_attr: &'a AttrCache,
    shared_ji: &'a JiCache,
    local_attr: AttrCache,
    local_ji: JiCache,
}

impl EvalShard<'_> {
    /// Scores an attribute family: `(ll, bytes)`, or `None` if the family
    /// is illegal (dense table too large). Checks both cache layers
    /// before computing, avoiding the CPD clone on the scoring path.
    fn score_attr(
        &mut self,
        t: usize,
        a: usize,
        parents: &[ParentRef],
        param_cap: usize,
    ) -> Option<(f64, usize)> {
        let key = (t, a, parents.to_vec(), param_cap);
        if let Some(hit) =
            self.shared_attr.get(&key).or_else(|| self.local_attr.get(&key))
        {
            return hit.as_ref().map(|e| (e.ll, e.bytes));
        }
        let result = compute_attr_eval(self.ctx, self.config, t, a, parents, param_cap);
        let out = result.as_ref().map(|e| (e.ll, e.bytes));
        self.local_attr.insert(key, result);
        out
    }

    /// Scores a join-indicator family: `(ll, bytes)`.
    fn score_ji(&mut self, t: usize, f: usize, parents: &[JiParentRef]) -> (f64, usize) {
        let key = (t, f, parents.to_vec());
        if let Some(hit) = self.shared_ji.get(&key).or_else(|| self.local_ji.get(&key)) {
            return (hit.ll, hit.bytes);
        }
        let eval = compute_ji_eval(self.ctx, t, f, parents);
        let out = (eval.ll, eval.bytes);
        self.local_ji.insert(key, eval);
        out
    }
}

impl<'c> Learner<'c> {
    fn new(ctx: &'c Ctx, config: PrmLearnConfig) -> Self {
        let attr_parents =
            ctx.tables.iter().map(|t| vec![Vec::new(); t.attr_names.len()]).collect();
        let ji_parents =
            ctx.tables.iter().map(|t| vec![Vec::new(); t.fks.len()]).collect();
        let local_dags =
            ctx.tables.iter().map(|t| Dag::empty(t.attr_names.len())).collect();
        let candidates = compute_candidates(ctx, &config);
        let mut learner = Learner {
            ctx,
            config,
            candidates,
            attr_parents,
            ji_parents,
            local_dags,
            cur_attr: Vec::new(),
            cur_ji: Vec::new(),
            attr_cache: HashMap::new(),
            ji_cache: HashMap::new(),
        };
        for t in 0..ctx.tables.len() {
            let mut attrs = Vec::new();
            for a in 0..ctx.tables[t].attr_names.len() {
                attrs.push(
                    learner
                        .eval_attr(t, a, &[], usize::MAX)
                        .expect("empty families are always legal"),
                );
            }
            learner.cur_attr.push(attrs);
            let mut jis = Vec::new();
            for f in 0..ctx.tables[t].fks.len() {
                jis.push(learner.eval_ji(t, f, &[]));
            }
            learner.cur_ji.push(jis);
        }
        learner
    }

    fn climb(&mut self) {
        const TOL: f64 = 1e-9;
        loop {
            let cur_bytes = self.total_bytes();
            let moves = self.candidate_moves();
            // Score the whole batch across the pool. Workers only read the
            // learner and write thread-local cache shards; the shards are
            // absorbed below and the deltas re-assembled in move order, so
            // selection (and hence the learned structure) is independent
            // of the thread count.
            let this = &*self;
            let scored = par::chunks(moves.len(), |range| {
                let mut shard = this.shard();
                let deltas: Vec<Option<(f64, i64)>> = moves[range]
                    .iter()
                    .map(|&mv| this.move_delta_in(&mut shard, mv, cur_bytes))
                    .collect();
                (deltas, shard.local_attr, shard.local_ji)
            });
            let mut deltas = Vec::with_capacity(moves.len());
            for (chunk, local_attr, local_ji) in scored {
                deltas.extend(chunk);
                self.attr_cache.extend(local_attr);
                self.ji_cache.extend(local_ji);
            }
            let mut best: Option<(Move, f64)> = None;
            for (&mv, &delta) in moves.iter().zip(&deltas) {
                obs::counter!("prm.search.moves.evaluated").inc();
                let Some((dll, dbytes)) = delta else {
                    obs::counter!("prm.search.moves.illegal").inc();
                    continue;
                };
                if (cur_bytes as i64 + dbytes) as usize > self.config.budget_bytes {
                    obs::counter!("prm.search.moves.over_budget").inc();
                    continue;
                }
                let score = match self.config.rule {
                    StepRule::Naive => {
                        if dll <= TOL {
                            obs::counter!("prm.search.moves.rejected").inc();
                            continue;
                        }
                        dll
                    }
                    StepRule::Ssn => {
                        if dll <= TOL {
                            obs::counter!("prm.search.moves.rejected").inc();
                            continue;
                        }
                        if dbytes > 0 {
                            dll / dbytes as f64
                        } else {
                            f64::INFINITY
                        }
                    }
                    StepRule::Mdl => {
                        // Penalize by the description length on the scale
                        // of the owning population.
                        let n = self.move_population(mv);
                        let dmdl = dll - mdl_penalty_per_param(n) * dbytes as f64 / 4.0;
                        if dmdl <= TOL {
                            obs::counter!("prm.search.moves.rejected").inc();
                            continue;
                        }
                        dmdl
                    }
                };
                if best.as_ref().is_none_or(|b| score > b.1) {
                    best = Some((mv, score));
                }
            }
            match best {
                None => {
                    self.regrow_trees();
                    return;
                }
                Some((mv, _)) => {
                    // One macro call per arm: the handle is memoized per
                    // call site, so the name must be a fixed literal.
                    match mv {
                        Move::AttrAdd { .. } => {
                            obs::counter!("prm.search.steps.attr_add").inc()
                        }
                        Move::AttrDel { .. } => {
                            obs::counter!("prm.search.steps.attr_del").inc()
                        }
                        Move::JiAdd { .. } => {
                            obs::counter!("prm.search.steps.ji_add").inc()
                        }
                        Move::JiDel { .. } => {
                            obs::counter!("prm.search.steps.ji_del").inc()
                        }
                    }
                    obs::counter!("prm.search.steps.accepted").inc();
                    let cur_bytes = self.total_bytes();
                    self.apply(mv, cur_bytes);
                }
            }
        }
    }

    /// Spends leftover budget by re-growing tree families whose growth was
    /// truncated by the byte allowance available when their parent set was
    /// last changed (the paper's "add a split" operator, applied until no
    /// split clears the threshold or the budget is exhausted).
    fn regrow_trees(&mut self) {
        if self.config.cpd_kind != CpdKind::Tree {
            return;
        }
        loop {
            let cur_bytes = self.total_bytes();
            if cur_bytes >= self.config.budget_bytes {
                return;
            }
            let mut best: Option<(usize, usize, AttrEval, f64)> = None;
            for t in 0..self.ctx.tables.len() {
                for a in 0..self.ctx.tables[t].attr_names.len() {
                    let old = (self.cur_attr[t][a].ll, self.cur_attr[t][a].bytes);
                    let cap = self.family_param_cap(cur_bytes, old.1);
                    let parents = sorted_refs(&self.attr_parents[t][a]);
                    let Some(new) = self.eval_attr(t, a, &parents, cap) else {
                        continue;
                    };
                    let dll = new.ll - old.0;
                    let dbytes = new.bytes as i64 - old.1 as i64;
                    if dll <= 1e-9
                        || (cur_bytes as i64 + dbytes) as usize > self.config.budget_bytes
                    {
                        continue;
                    }
                    let score =
                        if dbytes > 0 { dll / dbytes as f64 } else { f64::INFINITY };
                    if best.as_ref().is_none_or(|b| score > b.3) {
                        best = Some((t, a, new, score));
                    }
                }
            }
            match best {
                None => return,
                Some((t, a, new, _)) => self.cur_attr[t][a] = new,
            }
        }
    }

    fn total_ll(&self) -> f64 {
        let mut ll = 0.0;
        for t in 0..self.ctx.tables.len() {
            for fam in &self.cur_attr[t] {
                ll += fam.ll;
            }
            for fam in &self.cur_ji[t] {
                ll += fam.ll;
            }
        }
        ll
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            attr_parents: self.attr_parents.clone(),
            ji_parents: self.ji_parents.clone(),
            local_dags: self.local_dags.clone(),
            cur_attr: self.cur_attr.clone(),
            cur_ji: self.cur_ji.clone(),
            ll: self.total_ll(),
        }
    }

    fn restore(&mut self, snap: Snapshot) {
        self.attr_parents = snap.attr_parents;
        self.ji_parents = snap.ji_parents;
        self.local_dags = snap.local_dags;
        self.cur_attr = snap.cur_attr;
        self.cur_ji = snap.cur_ji;
    }

    /// Applies a few random legal structure changes, then prunes random
    /// parents until the model fits the budget again.
    fn perturb(&mut self, rng: &mut rand::rngs::StdRng) {
        use rand::seq::SliceRandom;
        use rand::Rng;
        for _ in 0..3 {
            let moves = self.candidate_moves();
            if moves.is_empty() {
                break;
            }
            let mv = moves[rng.gen_range(0..moves.len())];
            let cur_bytes = self.total_bytes();
            // Only apply moves that stay evaluable; skip otherwise.
            if self.move_delta(mv, cur_bytes).is_some() {
                self.apply(mv, cur_bytes);
            }
        }
        // Budget repair: randomly drop parents while oversized.
        while self.total_bytes() > self.config.budget_bytes {
            let mut deletions: Vec<Move> = Vec::new();
            for (t, table) in self.attr_parents.iter().enumerate() {
                for (a, parents) in table.iter().enumerate() {
                    for &p in parents {
                        deletions.push(Move::AttrDel { t, a, p });
                    }
                }
            }
            for (t, table) in self.ji_parents.iter().enumerate() {
                for (f, parents) in table.iter().enumerate() {
                    for &p in parents {
                        deletions.push(Move::JiDel { t, f, p });
                    }
                }
            }
            let Some(&mv) = deletions.choose(rng) else { break };
            let cur_bytes = self.total_bytes();
            self.apply(mv, cur_bytes);
        }
    }

    /// The population size a move's statistics are drawn from (rows for an
    /// attribute family, |T|·|S| pairs for a join indicator).
    fn move_population(&self, mv: Move) -> usize {
        match mv {
            Move::AttrAdd { t, .. } | Move::AttrDel { t, .. } => {
                self.ctx.tables[t].n_rows
            }
            Move::JiAdd { t, f, .. } | Move::JiDel { t, f, .. } => {
                let target = self.ctx.tables[t].fks[f].target;
                self.ctx.tables[t].n_rows * self.ctx.tables[target].n_rows
            }
        }
    }

    fn candidate_moves(&self) -> Vec<Move> {
        let mut moves = Vec::new();
        for (t, table) in self.ctx.tables.iter().enumerate() {
            for a in 0..table.attr_names.len() {
                let parents = &self.attr_parents[t][a];
                // Deletions.
                for &p in parents {
                    moves.push(Move::AttrDel { t, a, p });
                }
                if parents.len() < self.config.max_parents {
                    let shortlisted = |p: &ParentRef| match &self.candidates[t][a] {
                        None => true,
                        Some(list) => list.contains(p),
                    };
                    // Local additions.
                    for b in 0..table.attr_names.len() {
                        if b == a {
                            continue;
                        }
                        let pref = ParentRef::Local { attr: b };
                        if !parents.contains(&pref)
                            && shortlisted(&pref)
                            && !self.local_dags[t].creates_cycle(b, a)
                        {
                            moves.push(Move::AttrAdd { t, a, p: pref });
                        }
                    }
                    // Foreign additions.
                    if self.config.allow_foreign_parents {
                        for (f, fk) in table.fks.iter().enumerate() {
                            // Forbidden if `a` is a parent of J_F.
                            if self.ji_parents[t][f]
                                .contains(&JiParentRef::Child { attr: a })
                            {
                                continue;
                            }
                            for c in 0..self.ctx.tables[fk.target].attr_names.len() {
                                let pref = ParentRef::Foreign { fk: f, attr: c };
                                if !parents.contains(&pref) && shortlisted(&pref) {
                                    moves.push(Move::AttrAdd { t, a, p: pref });
                                }
                            }
                        }
                    }
                }
            }
            for f in 0..table.fks.len() {
                let parents = &self.ji_parents[t][f];
                for &p in parents {
                    moves.push(Move::JiDel { t, f, p });
                }
                if parents.len() < self.config.max_ji_parents {
                    for a in 0..table.attr_names.len() {
                        let pref = JiParentRef::Child { attr: a };
                        // Forbidden if attr `a` depends through this FK.
                        let depends = self.attr_parents[t][a].iter().any(
                            |p| matches!(p, ParentRef::Foreign { fk, .. } if *fk == f),
                        );
                        if !parents.contains(&pref) && !depends {
                            moves.push(Move::JiAdd { t, f, p: pref });
                        }
                    }
                    let target = table.fks[f].target;
                    for a in 0..self.ctx.tables[target].attr_names.len() {
                        let pref = JiParentRef::Parent { attr: a };
                        if !parents.contains(&pref) {
                            moves.push(Move::JiAdd { t, f, p: pref });
                        }
                    }
                }
            }
        }
        moves
    }

    /// The byte allowance a candidate family may grow to, given the bytes
    /// the rest of the model currently occupies.
    fn family_param_cap(&self, cur_bytes: usize, old_family_bytes: usize) -> usize {
        self.config.budget_bytes.saturating_sub(cur_bytes - old_family_bytes).max(1)
    }

    /// A fresh worker view over the learner's memo.
    fn shard(&self) -> EvalShard<'_> {
        EvalShard {
            ctx: self.ctx,
            config: &self.config,
            shared_attr: &self.attr_cache,
            shared_ji: &self.ji_cache,
            local_attr: HashMap::new(),
            local_ji: HashMap::new(),
        }
    }

    /// Scores one move through a worker shard (no learner mutation).
    fn move_delta_in(
        &self,
        shard: &mut EvalShard<'_>,
        mv: Move,
        cur_bytes: usize,
    ) -> Option<(f64, i64)> {
        match mv {
            Move::AttrAdd { t, a, p } | Move::AttrDel { t, a, p } => {
                let old_key = sorted_refs(&self.attr_parents[t][a]);
                let new_key = match mv {
                    Move::AttrAdd { .. } => with_ref(&old_key, p),
                    _ => without_ref(&old_key, p),
                };
                let (old_ll, old_bytes) =
                    (self.cur_attr[t][a].ll, self.cur_attr[t][a].bytes);
                let cap = self.family_param_cap(cur_bytes, old_bytes);
                let (new_ll, new_bytes) = shard.score_attr(t, a, &new_key, cap)?;
                Some((new_ll - old_ll, new_bytes as i64 - old_bytes as i64))
            }
            Move::JiAdd { t, f, p } | Move::JiDel { t, f, p } => {
                let old_key = sorted_refs(&self.ji_parents[t][f]);
                let new_key = match mv {
                    Move::JiAdd { .. } => with_ref(&old_key, p),
                    _ => without_ref(&old_key, p),
                };
                let (old_ll, old_bytes) = (self.cur_ji[t][f].ll, self.cur_ji[t][f].bytes);
                let (new_ll, new_bytes) = shard.score_ji(t, f, &new_key);
                Some((new_ll - old_ll, new_bytes as i64 - old_bytes as i64))
            }
        }
    }

    /// Serial [`Learner::move_delta_in`]: scores through a one-off shard
    /// and absorbs its locals into the memo.
    fn move_delta(&mut self, mv: Move, cur_bytes: usize) -> Option<(f64, i64)> {
        let mut shard = self.shard();
        let out = self.move_delta_in(&mut shard, mv, cur_bytes);
        let EvalShard { local_attr, local_ji, .. } = shard;
        self.attr_cache.extend(local_attr);
        self.ji_cache.extend(local_ji);
        out
    }

    fn apply(&mut self, mv: Move, cur_bytes: usize) {
        match mv {
            Move::AttrAdd { t, a, p } => {
                if let ParentRef::Local { attr } = p {
                    self.local_dags[t].add_edge(attr, a);
                }
                self.attr_parents[t][a].push(p);
                self.attr_parents[t][a].sort_unstable();
                let cap = self.family_param_cap(cur_bytes, self.cur_attr[t][a].bytes);
                let key = sorted_refs(&self.attr_parents[t][a]);
                self.cur_attr[t][a] =
                    self.eval_attr(t, a, &key, cap).expect("move was evaluated as legal");
            }
            Move::AttrDel { t, a, p } => {
                if let ParentRef::Local { attr } = p {
                    self.local_dags[t].remove_edge(attr, a);
                }
                self.attr_parents[t][a].retain(|&x| x != p);
                let cap = self.family_param_cap(cur_bytes, self.cur_attr[t][a].bytes);
                let key = sorted_refs(&self.attr_parents[t][a]);
                self.cur_attr[t][a] = self
                    .eval_attr(t, a, &key, cap)
                    .expect("shrinking a family is always legal");
            }
            Move::JiAdd { t, f, p } => {
                self.ji_parents[t][f].push(p);
                self.ji_parents[t][f].sort_unstable();
                let key = sorted_refs(&self.ji_parents[t][f]);
                self.cur_ji[t][f] = self.eval_ji(t, f, &key);
            }
            Move::JiDel { t, f, p } => {
                self.ji_parents[t][f].retain(|&x| x != p);
                let key = sorted_refs(&self.ji_parents[t][f]);
                self.cur_ji[t][f] = self.eval_ji(t, f, &key);
            }
        }
    }

    fn total_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for t in 0..self.ctx.tables.len() {
            for fam in &self.cur_attr[t] {
                bytes += fam.bytes;
            }
            for fam in &self.cur_ji[t] {
                bytes += fam.bytes;
            }
        }
        bytes
    }

    // -----------------------------------------------------------------
    // Family evaluation.
    // -----------------------------------------------------------------

    fn eval_attr(
        &mut self,
        t: usize,
        a: usize,
        parents: &[ParentRef],
        param_cap: usize,
    ) -> Option<AttrEval> {
        let key = (t, a, parents.to_vec(), param_cap);
        if let Some(hit) = self.attr_cache.get(&key) {
            return hit.clone();
        }
        let result = compute_attr_eval(self.ctx, &self.config, t, a, parents, param_cap);
        self.attr_cache.insert(key, result.clone());
        result
    }

    fn eval_ji(&mut self, t: usize, f: usize, parents: &[JiParentRef]) -> JiEval {
        let key = (t, f, parents.to_vec());
        if let Some(hit) = self.ji_cache.get(&key) {
            return hit.clone();
        }
        let eval = compute_ji_eval(self.ctx, t, f, parents);
        self.ji_cache.insert(key, eval.clone());
        eval
    }
}

/// Evaluates an attribute family from scratch: sufficient statistics,
/// log-likelihood, CPD and byte size. A pure function of `(ctx, config)`
/// and the family key, so it is safe to call from pool workers.
fn compute_attr_eval(
    ctx: &Ctx,
    config: &PrmLearnConfig,
    t: usize,
    a: usize,
    parents: &[ParentRef],
    param_cap: usize,
) -> Option<AttrEval> {
    let table = &ctx.tables[t];
    let child_col = &table.cols[a];
    let child_card = table.cards[a];
    let parent_data: Vec<(&[u32], usize)> =
        parents.iter().map(|&p| parent_column(ctx, t, p)).collect();
    match config.cpd_kind {
        CpdKind::Table => {
            let cells: usize = parent_data
                .iter()
                .map(|&(_, c)| c)
                .product::<usize>()
                .saturating_mul(child_card);
            if cells > config.max_family_cells {
                None
            } else {
                let counts = family_counts(&parent_data, child_col, child_card);
                let ll = family_loglik(&counts);
                let cpd: Cpd = TableCpd::from_counts(&counts).into();
                let bytes = cpd.size_bytes();
                Some(AttrEval { ll, bytes, cpd })
            }
        }
        CpdKind::Tree => {
            let cols: Vec<&[u32]> = parent_data.iter().map(|&(c, _)| c).collect();
            let cards: Vec<usize> = parent_data.iter().map(|&(_, c)| c).collect();
            let opts = TreeGrowOptions {
                byte_budget: config.tree.byte_budget.min(param_cap),
                ..config.tree.clone()
            };
            let grown = grow_tree(child_col, child_card, &cols, &cards, &opts);
            let bytes = grown.cpd.size_bytes();
            Some(AttrEval { ll: grown.loglik, bytes, cpd: grown.cpd.into() })
        }
    }
}

/// Evaluates a join-indicator family from scratch (the paper's Eq. 4
/// statistics: one join group-by plus two marginal group-bys). A pure
/// function of `ctx` and the family key, safe to call from pool workers.
fn compute_ji_eval(ctx: &Ctx, t: usize, f: usize, parents: &[JiParentRef]) -> JiEval {
    let table = &ctx.tables[t];
    let fk = &table.fks[f];
    let target = &ctx.tables[fk.target];
    let n_t = table.n_rows as f64;
    let n_s = target.n_rows as f64;

    // Joined columns over the child rows, in parent order.
    let joined: Vec<&[u32]> = parents
        .iter()
        .map(|p| match *p {
            JiParentRef::Child { attr } => table.cols[attr].as_slice(),
            JiParentRef::Parent { attr } => fk.foreign_cols[attr].as_slice(),
        })
        .collect();
    let cards: Vec<usize> = parents
        .iter()
        .map(|p| match *p {
            JiParentRef::Child { attr } => table.cards[attr],
            JiParentRef::Parent { attr } => target.cards[attr],
        })
        .collect();
    // N_true(config): joined counts over T's rows.
    let size: usize = cards.iter().product::<usize>().max(1);
    let mut n_true = vec![0u64; size];
    for row in 0..table.n_rows {
        let mut idx = 0usize;
        for (col, &card) in joined.iter().zip(&cards) {
            idx = idx * card + col[row] as usize;
        }
        n_true[idx] += 1;
    }
    // Marginal counts of the child side over T, parent side over S.
    let child_dims: Vec<usize> = parents
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, JiParentRef::Child { .. }))
        .map(|(i, _)| i)
        .collect();
    let parent_dims: Vec<usize> = parents
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, JiParentRef::Parent { .. }))
        .map(|(i, _)| i)
        .collect();
    let child_counts = marginal_counts(
        &parents
            .iter()
            .filter_map(|p| match *p {
                JiParentRef::Child { attr } => {
                    Some((table.cols[attr].as_slice(), table.cards[attr]))
                }
                JiParentRef::Parent { .. } => None,
            })
            .collect::<Vec<_>>(),
        table.n_rows,
    );
    let parent_counts = marginal_counts(
        &parents
            .iter()
            .filter_map(|p| match *p {
                JiParentRef::Parent { attr } => {
                    Some((target.cols[attr].as_slice(), target.cards[attr]))
                }
                JiParentRef::Child { .. } => None,
            })
            .collect::<Vec<_>>(),
        target.n_rows,
    );
    // Walk all configurations.
    let mut p_true = vec![0.0f64; size];
    let mut ll = 0.0;
    let mut config = vec![0u32; cards.len()];
    for (idx, &nt) in n_true.iter().enumerate() {
        // Decode idx.
        let mut rem = idx;
        for k in (0..cards.len()).rev() {
            config[k] = (rem % cards[k]) as u32;
            rem /= cards[k];
        }
        let ci = linearize(&config, &child_dims, &cards);
        let pi = linearize(&config, &parent_dims, &cards);
        let pairs = child_counts[ci] as f64 * parent_counts[pi] as f64;
        if pairs <= 0.0 {
            continue;
        }
        let p = nt as f64 / pairs;
        p_true[idx] = p;
        if nt > 0 {
            ll += nt as f64 * p.ln();
        }
        if pairs > nt as f64 && p < 1.0 {
            ll += (pairs - nt as f64) * (1.0 - p).ln();
        }
    }
    let _ = (n_t, n_s);
    JiEval { ll, bytes: 4 * size + 2 * (1 + parents.len()), parent_cards: cards, p_true }
}

impl<'c> Learner<'c> {
    fn assemble(&mut self) -> Prm {
        let mut tables = Vec::new();
        for t in 0..self.ctx.tables.len() {
            let table = &self.ctx.tables[t];
            let mut attrs = Vec::new();
            for a in 0..table.attr_names.len() {
                let parents = sorted_refs(&self.attr_parents[t][a]);
                let eval = self.cur_attr[t][a].clone();
                attrs.push(AttrModel {
                    name: table.attr_names[a].clone(),
                    card: table.cards[a],
                    parents,
                    cpd: eval.cpd,
                });
            }
            let mut join_indicators = Vec::new();
            for f in 0..table.fks.len() {
                let parents = sorted_refs(&self.ji_parents[t][f]);
                let eval = self.cur_ji[t][f].clone();
                join_indicators.push(JoinIndicatorModel {
                    fk_attr: table.fks[f].attr.clone(),
                    target: self.ctx.tables[table.fks[f].target].name.clone(),
                    parents,
                    parent_cards: eval.parent_cards,
                    p_true: eval.p_true,
                });
            }
            tables.push(TableModel {
                table: table.name.clone(),
                n_rows: table.n_rows as u64,
                attrs,
                join_indicators,
            });
        }
        Prm { tables }
    }
}

/// Single-pass candidate-parent shortlist: for every attribute, the `k`
/// candidates (local and foreign, one hop) with the highest empirical
/// pairwise mutual information. One scan per (attr, candidate) pair over
/// already-materialized columns — no joins beyond the context's pointer
/// chases.
fn compute_candidates(
    ctx: &Ctx,
    config: &PrmLearnConfig,
) -> Vec<Vec<Option<Vec<ParentRef>>>> {
    let Some(k) = config.candidate_parents_per_attr else {
        return ctx.tables.iter().map(|t| vec![None; t.attr_names.len()]).collect();
    };
    use bayesnet::learn::score::mi_times_n;
    let mut out = Vec::with_capacity(ctx.tables.len());
    for (t, table) in ctx.tables.iter().enumerate() {
        let mut per_attr = Vec::with_capacity(table.attr_names.len());
        for a in 0..table.attr_names.len() {
            // Enumerate every possible single parent with its MI.
            let mut scored: Vec<(f64, ParentRef)> = Vec::new();
            for b in 0..table.attr_names.len() {
                if b != a {
                    let pref = ParentRef::Local { attr: b };
                    scored.push((pair_mi(ctx, t, a, pref), pref));
                }
            }
            if config.allow_foreign_parents {
                for (f, fk) in table.fks.iter().enumerate() {
                    for c in 0..ctx.tables[fk.target].attr_names.len() {
                        let pref = ParentRef::Foreign { fk: f, attr: c };
                        scored.push((pair_mi(ctx, t, a, pref), pref));
                    }
                }
            }
            scored.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite MI"));
            scored.truncate(k);
            per_attr.push(Some(scored.into_iter().map(|(_, p)| p).collect()));
        }
        out.push(per_attr);
    }
    // Tiny helper: empirical MI between attr `a` of table `t` and a
    // candidate parent column.
    fn pair_mi(ctx: &Ctx, t: usize, a: usize, p: ParentRef) -> f64 {
        let table = &ctx.tables[t];
        let (col, card) = parent_column(ctx, t, p);
        let child_col = &table.cols[a];
        let child_card = table.cards[a];
        let mut counts = vec![0u64; card * child_card];
        for (row, &c) in child_col.iter().enumerate() {
            counts[col[row] as usize * child_card + c as usize] += 1;
        }
        mi_times_n(&reldb::CountTable { cards: vec![card, child_card], counts })
    }
    out
}

/// Resolves a parent reference to its (column, cardinality) pair.
fn parent_column(ctx: &Ctx, t: usize, p: ParentRef) -> (&[u32], usize) {
    let table = &ctx.tables[t];
    match p {
        ParentRef::Local { attr } => (&table.cols[attr], table.cards[attr]),
        ParentRef::Foreign { fk, attr } => (
            &table.fks[fk].foreign_cols[attr],
            ctx.tables[table.fks[fk].target].cards[attr],
        ),
    }
}

/// Dense counts over `(parents…, child)`, child fastest.
fn family_counts(
    parent_data: &[(&[u32], usize)],
    child_col: &[u32],
    child_card: usize,
) -> CountTable {
    let mut cards: Vec<usize> = parent_data.iter().map(|&(_, c)| c).collect();
    cards.push(child_card);
    let size: usize = cards.iter().product::<usize>().max(1);
    let mut counts = vec![0u64; size];
    for (row, &child) in child_col.iter().enumerate() {
        let mut idx = 0usize;
        for ((col, _), &card) in parent_data.iter().zip(&cards) {
            idx = idx * card + col[row] as usize;
        }
        idx = idx * child_card + child as usize;
        counts[idx] += 1;
    }
    CountTable { cards, counts }
}

/// Dense marginal counts over a list of columns (all of length `n_rows`).
/// With no columns, returns the single count `n_rows`.
fn marginal_counts(data: &[(&[u32], usize)], n_rows: usize) -> Vec<u64> {
    let size: usize = data.iter().map(|&(_, c)| c).product::<usize>().max(1);
    let mut counts = vec![0u64; size];
    if data.is_empty() {
        counts[0] = n_rows as u64;
        return counts;
    }
    for row in 0..n_rows {
        let mut idx = 0usize;
        for (col, card) in data {
            idx = idx * card + col[row] as usize;
        }
        counts[idx] += 1;
    }
    counts
}

/// Linearizes the sub-configuration at dims `dims` of `config`.
fn linearize(config: &[u32], dims: &[usize], cards: &[usize]) -> usize {
    let mut idx = 0usize;
    for &d in dims {
        idx = idx * cards[d] + config[d] as usize;
    }
    idx
}

fn sorted_refs<T: Copy + Ord>(refs: &[T]) -> Vec<T> {
    let mut v = refs.to_vec();
    v.sort_unstable();
    v
}

fn with_ref<T: Copy + Ord>(refs: &[T], add: T) -> Vec<T> {
    let mut v = refs.to_vec();
    v.push(add);
    v.sort_unstable();
    v
}

fn without_ref<T: Copy + Ord + PartialEq>(refs: &[T], remove: T) -> Vec<T> {
    refs.iter().copied().filter(|&x| x != remove).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldb::{Cell, DatabaseBuilder, TableBuilder, Value};

    /// parent(p_attr) ← child(c_attr) where c_attr copies p_attr through
    /// the FK and the join probability depends on p_attr.
    fn correlated_db() -> Database {
        let mut p = TableBuilder::new("parent").key("id").col("x");
        for i in 0..40i64 {
            p.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 2))]).unwrap();
        }
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        // Children join x=1 parents 3× as often; y copies parent's x.
        let mut pid = 0i64;
        for i in 0..400i64 {
            // 3 of 4 children attach to odd parents (x=1).
            let odd = i % 4 != 0;
            pid = (pid + 7) % 20;
            let target = if odd { 2 * pid + 1 } else { 2 * pid };
            let x = target % 2;
            c.push_row(vec![Cell::Key(i), Cell::Key(target), Cell::Val(Value::Int(x))])
                .unwrap();
        }
        DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap()
    }

    #[test]
    fn learns_foreign_parent_for_copied_attribute() {
        let db = correlated_db();
        let prm = learn_prm(&db, &PrmLearnConfig::default()).unwrap();
        let child = prm.table_model("child").unwrap();
        let y = &child.attrs[0];
        assert!(
            y.parents.contains(&ParentRef::Foreign { fk: 0, attr: 0 }),
            "child.y should depend on parent.x, got {:?}",
            y.parents
        );
    }

    #[test]
    fn learns_join_indicator_skew() {
        let db = correlated_db();
        let prm = learn_prm(&db, &PrmLearnConfig::default()).unwrap();
        let child = prm.table_model("child").unwrap();
        let ji = &child.join_indicators[0];
        // The join indicator should have learned a dependence (on parent.x
        // — although child.y is statistically equivalent here, the
        // constraint may route it either way).
        assert!(!ji.parents.is_empty(), "join indicator learned no parents");
    }

    #[test]
    fn bn_uj_has_no_cross_table_structure() {
        let db = correlated_db();
        let prm = learn_prm(&db, &PrmLearnConfig::bn_uj(4096)).unwrap();
        assert_eq!(prm.foreign_parent_count(), 0);
        assert_eq!(prm.ji_parent_count(), 0);
        let ji = &prm.table_model("child").unwrap().join_indicators[0];
        // Uniform join probability = 1/|parent|.
        assert!((ji.p_true[0] - 1.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_ji_probability_is_one_over_parent_size() {
        let db = correlated_db();
        let prm = learn_prm(&db, &PrmLearnConfig::bn_uj(4096)).unwrap();
        let ji = &prm.table_model("child").unwrap().join_indicators[0];
        assert_eq!(ji.parents.len(), 0);
        assert_eq!(ji.p_true.len(), 1);
        assert!((ji.p_true[0] - 0.025).abs() < 1e-12);
    }

    #[test]
    fn budget_is_respected() {
        let db = correlated_db();
        for budget in [64usize, 256, 1024] {
            let prm = learn_prm(
                &db,
                &PrmLearnConfig { budget_bytes: budget, ..Default::default() },
            )
            .unwrap();
            assert!(
                prm.size_bytes() <= budget.max(64),
                "budget={budget} size={}",
                prm.size_bytes()
            );
        }
    }

    #[test]
    fn ji_and_foreign_parent_constraint_is_mutually_exclusive() {
        let db = correlated_db();
        let prm = learn_prm(&db, &PrmLearnConfig::default()).unwrap();
        let child = prm.table_model("child").unwrap();
        for (f, ji) in child.join_indicators.iter().enumerate() {
            for p in &ji.parents {
                if let JiParentRef::Child { attr } = p {
                    let depends = child.attrs[*attr]
                        .parents
                        .iter()
                        .any(|q| matches!(q, ParentRef::Foreign { fk, .. } if *fk == f));
                    assert!(!depends, "cyclic JI/attr dependency");
                }
            }
        }
    }

    #[test]
    fn candidate_prefilter_keeps_the_strong_parent() {
        let db = correlated_db();
        let prm = learn_prm(
            &db,
            &PrmLearnConfig { candidate_parents_per_attr: Some(1), ..Default::default() },
        )
        .unwrap();
        // child.y's single strongest candidate is parent.x (through the
        // FK); the shortlist must retain it.
        let y = &prm.table_model("child").unwrap().attrs[0];
        assert!(
            y.parents.contains(&ParentRef::Foreign { fk: 0, attr: 0 }),
            "prefilter dropped the informative parent: {:?}",
            y.parents
        );
    }

    #[test]
    fn prefilter_only_shrinks_the_model() {
        let db = correlated_db();
        let full = learn_prm(&db, &PrmLearnConfig::default()).unwrap();
        let filtered = learn_prm(
            &db,
            &PrmLearnConfig { candidate_parents_per_attr: Some(1), ..Default::default() },
        )
        .unwrap();
        let count = |p: &crate::prm::Prm| -> usize {
            p.tables.iter().flat_map(|t| &t.attrs).map(|a| a.parents.len()).sum()
        };
        assert!(count(&filtered) <= count(&full));
    }

    #[test]
    fn restarts_never_hurt_and_respect_budget() {
        let db = correlated_db();
        let base = learn_prm(&db, &PrmLearnConfig { restarts: 0, ..Default::default() })
            .unwrap();
        let restarted = learn_prm(
            &db,
            &PrmLearnConfig { restarts: 3, seed: 42, ..Default::default() },
        )
        .unwrap();
        assert!(restarted.size_bytes() <= 8192);
        // With restarts the model keeps (at least) the strong structure.
        let _ = base;
        let child = restarted.table_model("child").unwrap();
        assert!(
            !child.attrs[0].parents.is_empty()
                || !child.join_indicators[0].parents.is_empty(),
            "restarted model lost all structure"
        );
    }

    #[test]
    fn self_referencing_fk_rejected_for_foreign_parents() {
        let mut t = TableBuilder::new("node").key("id").fk("next", "node").col("x");
        t.push_row(vec![Cell::Key(0), Cell::Key(0), Cell::Val(Value::Int(0))]).unwrap();
        let db = DatabaseBuilder::new().add_table(t.finish().unwrap()).finish().unwrap();
        let err = learn_prm(&db, &PrmLearnConfig::default());
        assert!(err.is_err());
        // But BN+UJ (no foreign parents) still works.
        assert!(learn_prm(&db, &PrmLearnConfig::bn_uj(1024)).is_ok());
    }
}
