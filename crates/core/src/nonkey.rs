//! Non-key equality joins (paper §6).
//!
//! The paper's estimator is specified for foreign-key joins, but §6 notes
//! the method generalizes: "we can compute estimates for queries that join
//! non-key attributes by summing over the possible values of the joined
//! attributes". For a join `q₁.A = q₂.B` between two (otherwise
//! independent) select/keyjoin queries, the result size is
//!
//! ```text
//! |q₁ ⋈_{A=B} q₂| = Σ_v |σ_{A=v}(q₁)| · |σ_{B=v}(q₂)|
//! ```
//!
//! and each term is an ordinary PRM estimate, so the whole sum needs one
//! model and `|dom(A) ∩ dom(B)|` inference calls.

use reldb::{Error, Pred, Query, Result, Value};

use crate::estimator::{PrmEstimator, SelectivityEstimator};

/// Specification of one side of a non-key equality join.
#[derive(Debug, Clone)]
pub struct JoinSide {
    /// The select/keyjoin query on this side.
    pub query: Query,
    /// The tuple variable whose attribute participates in the join.
    pub var: usize,
    /// The join attribute (a value attribute, *not* a key).
    pub attr: String,
}

impl PrmEstimator {
    /// Estimates the result size of `left ⋈_{left.attr = right.attr} right`
    /// where the join is on **non-key** value attributes.
    ///
    /// The two sides must not share tuple variables (they are estimated
    /// independently, as the sum-over-values decomposition requires).
    pub fn estimate_nonkey_join(&self, left: &JoinSide, right: &JoinSide) -> Result<f64> {
        let l_dom = self.join_attr_domain(left)?;
        let r_dom = self.join_attr_domain(right)?;
        // Sum over the intersection of the two value domains.
        let mut total = 0.0;
        for v in l_dom {
            if r_dom.contains(&v) {
                let l = self.estimate(&with_eq(
                    &left.query,
                    left.var,
                    &left.attr,
                    v.clone(),
                ))?;
                let r =
                    self.estimate(&with_eq(&right.query, right.var, &right.attr, v))?;
                total += l * r;
            }
        }
        Ok(total)
    }

    fn join_attr_domain(&self, side: &JoinSide) -> Result<Vec<Value>> {
        let table_name =
            side.query.vars.get(side.var).ok_or(Error::UnknownVar(side.var))?;
        let epoch = self.epoch();
        let table = epoch
            .schema
            .tables
            .iter()
            .find(|t| &t.name == table_name)
            .ok_or_else(|| Error::UnknownTable(table_name.clone()))?;
        let idx = table.attrs.iter().position(|a| a == &side.attr).ok_or_else(|| {
            Error::UnknownAttr { table: table_name.clone(), attr: side.attr.clone() }
        })?;
        Ok(table.domains[idx].values().to_vec())
    }
}

fn with_eq(query: &Query, var: usize, attr: &str, value: Value) -> Query {
    let mut q = query.clone();
    q.preds.push(Pred::Eq { var, attr: attr.to_owned(), value });
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::PrmLearnConfig;
    use reldb::{Cell, Database, DatabaseBuilder, TableBuilder, Value};

    /// Two unrelated tables sharing a `city` attribute's value space.
    fn db() -> Database {
        let mut stores = TableBuilder::new("store").key("id").col("city").col("kind");
        for i in 0..30i64 {
            stores
                .push_row(vec![
                    Cell::Key(i),
                    Cell::Val(Value::Int(i % 3)),
                    Cell::Val(Value::Int(i % 2)),
                ])
                .unwrap();
        }
        let mut people = TableBuilder::new("person").key("id").col("city").col("age");
        for i in 0..90i64 {
            // Skew: city 0 has twice the people.
            let city = if i % 4 < 2 { 0 } else { i % 3 };
            people
                .push_row(vec![
                    Cell::Key(i),
                    Cell::Val(Value::Int(city)),
                    Cell::Val(Value::Int(i % 5)),
                ])
                .unwrap();
        }
        DatabaseBuilder::new()
            .add_table(stores.finish().unwrap())
            .add_table(people.finish().unwrap())
            .finish()
            .unwrap()
    }

    /// Exact non-key join size by direct counting.
    fn exact(db: &Database, store_kind: Option<i64>) -> u64 {
        let store = db.table("store").unwrap();
        let person = db.table("person").unwrap();
        let s_city = store.codes("city").unwrap();
        let s_kind = store.codes("kind").unwrap();
        let p_city = person.codes("city").unwrap();
        let kind_dom = store.domain("kind").unwrap();
        let mut count = 0u64;
        for (i, &sc) in s_city.iter().enumerate() {
            if let Some(k) = store_kind {
                if kind_dom.value(s_kind[i]).as_int() != Some(k) {
                    continue;
                }
            }
            // City domains are identical in both tables (values 0..3).
            count += p_city.iter().filter(|&&pc| pc == sc).count() as u64;
        }
        count
    }

    fn side(table: &str, attr: &str) -> JoinSide {
        let mut b = Query::builder();
        let v = b.var(table);
        JoinSide { query: b.build(), var: v, attr: attr.into() }
    }

    #[test]
    fn unselective_nonkey_join_matches_exact_count() {
        let db = db();
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let got = est
            .estimate_nonkey_join(&side("store", "city"), &side("person", "city"))
            .unwrap();
        let truth = exact(&db, None) as f64;
        assert!((got - truth).abs() / truth < 0.05, "got={got} truth={truth}");
    }

    #[test]
    fn selective_nonkey_join() {
        let db = db();
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let mut left = side("store", "city");
        let mut b = Query::builder();
        let v = b.var("store");
        b.eq(v, "kind", 1);
        left.query = b.build();
        left.var = v;
        let got = est.estimate_nonkey_join(&left, &side("person", "city")).unwrap();
        let truth = exact(&db, Some(1)) as f64;
        assert!((got - truth).abs() / truth < 0.1, "got={got} truth={truth}");
    }

    #[test]
    fn disjoint_domains_give_zero() {
        let db = db();
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        // Join store.kind (0..2) against person.age (0..5): intersection is
        // {0, 1}, so only those values contribute.
        let got = est
            .estimate_nonkey_join(&side("store", "kind"), &side("person", "age"))
            .unwrap();
        // Exact: Σ_{v ∈ {0,1}} |store.kind=v| · |person.age=v|.
        let truth = (15 * 18 + 15 * 18) as f64;
        assert!((got - truth).abs() / truth < 0.05, "got={got} truth={truth}");
    }

    #[test]
    fn unknown_attr_is_rejected() {
        let db = db();
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let bad = side("store", "nope");
        assert!(est.estimate_nonkey_join(&bad, &side("person", "city")).is_err());
    }
}
