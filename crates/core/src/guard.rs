//! Inference guard configuration.
//!
//! Two knobs bound what a single estimate may cost, both read from the
//! environment once and cached (the hot path must not pay a `std::env`
//! lock per query), with process-wide programmatic overrides in the style
//! of [`par::set_threads`]:
//!
//! * `PRMSEL_WIDTH_BUDGET` — maximum cells any intermediate elimination
//!   factor may hold; exceeded → [`crate::Error::Budget`] (width).
//! * `PRMSEL_DEADLINE_MS` — wall-clock deadline per estimate; exceeded →
//!   [`crate::Error::Budget`] (deadline).
//!
//! Unset or unparsable values mean *no limit*, preserving the paper's
//! assumption (§3.3) that query-evaluation networks stay small enough to
//! eliminate exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use bayesnet::InferBudget;

/// Sentinel for "no override in effect — follow the environment".
const UNSET: u64 = u64::MAX;

static WIDTH_OVERRIDE: AtomicU64 = AtomicU64::new(UNSET);
static DEADLINE_OVERRIDE: AtomicU64 = AtomicU64::new(UNSET);

fn env_limit(name: &str, cache: &OnceLock<Option<u64>>) -> Option<u64> {
    *cache.get_or_init(|| {
        std::env::var(name).ok().and_then(|v| v.trim().parse::<u64>().ok())
    })
}

/// The effective width budget in cells, if any.
pub fn width_budget() -> Option<u64> {
    match WIDTH_OVERRIDE.load(Ordering::Relaxed) {
        UNSET => {
            static CACHE: OnceLock<Option<u64>> = OnceLock::new();
            env_limit("PRMSEL_WIDTH_BUDGET", &CACHE)
        }
        v => Some(v),
    }
}

/// Overrides `PRMSEL_WIDTH_BUDGET` process-wide; `None` reverts to the
/// environment. Values of `u64::MAX` are clamped down by one (that bit
/// pattern is the "unset" sentinel — and no real factor has 2⁶⁴ cells).
pub fn set_width_budget(cells: Option<u64>) {
    WIDTH_OVERRIDE.store(cells.map_or(UNSET, |c| c.min(UNSET - 1)), Ordering::Relaxed);
}

/// The effective per-estimate deadline in milliseconds, if any.
pub fn deadline_ms() -> Option<u64> {
    match DEADLINE_OVERRIDE.load(Ordering::Relaxed) {
        UNSET => {
            static CACHE: OnceLock<Option<u64>> = OnceLock::new();
            env_limit("PRMSEL_DEADLINE_MS", &CACHE)
        }
        v => Some(v),
    }
}

/// Overrides `PRMSEL_DEADLINE_MS` process-wide; `None` reverts to the
/// environment.
pub fn set_deadline_ms(ms: Option<u64>) {
    DEADLINE_OVERRIDE.store(ms.map_or(UNSET, |m| m.min(UNSET - 1)), Ordering::Relaxed);
}

/// The budget for one estimate, with the deadline anchored at *now*.
/// Costs two relaxed loads when both knobs are unset.
pub fn estimate_budget() -> InferBudget {
    InferBudget {
        max_cells: width_budget(),
        deadline: deadline_ms().map(|ms| Instant::now() + Duration::from_millis(ms)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_take_precedence_and_revert() {
        set_width_budget(Some(1024));
        assert_eq!(width_budget(), Some(1024));
        set_deadline_ms(Some(250));
        let b = estimate_budget();
        assert_eq!(b.max_cells, Some(1024));
        assert!(b.deadline.is_some());
        set_width_budget(None);
        set_deadline_ms(None);
        // Reverted: whatever the env says (unset in the test runner).
        let _ = width_budget();
        let _ = deadline_ms();
    }

    #[test]
    fn u64_max_is_clamped_off_the_sentinel() {
        set_width_budget(Some(u64::MAX));
        assert_eq!(width_budget(), Some(u64::MAX - 1));
        set_width_budget(None);
    }
}
