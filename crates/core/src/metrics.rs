//! Error metrics and suite evaluation.
//!
//! The paper scores estimates by the **adjusted relative error**
//! `|S − Ŝ| / max(S, 1)` (§5), reported in percent and averaged over every
//! instantiation of a query suite (typically thousands of queries).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

use reldb::{exec, Database, Query};

use crate::error::Result;
use crate::estimator::SelectivityEstimator;

/// Adjusted relative error of one estimate.
pub fn adjusted_relative_error(truth: u64, estimate: f64) -> f64 {
    (truth as f64 - estimate).abs() / (truth.max(1) as f64)
}

/// Global switch for per-template telemetry: when on, quality and
/// warm-latency observations are *also* recorded into histograms labeled
/// with the query's stable template hash
/// (`quality.qerror_milli{template="<16 hex>"}`,
/// `prm.estimate.warm.ns{template="..."}`), which the OpenMetrics
/// exposition renders as proper labeled series. Off by default — the
/// labeled series multiply registry cardinality by the number of
/// templates, which only an operator scraping `/metrics` (or
/// `prmsel stats --templates`) wants to pay for.
static TEMPLATE_TELEMETRY: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Stable hash of the template this thread most recently estimated
    /// (`0` = none). Quality scoring happens right after the estimate on
    /// the same thread — the same contract `obs::flight::attach_quality`
    /// relies on.
    static CURRENT_TEMPLATE: Cell<u64> = const { Cell::new(0) };
}

/// Whether per-template telemetry is on. One relaxed load — the warm
/// estimate path checks this on every call, same cost discipline as the
/// flight-recorder gate.
#[inline]
pub fn template_telemetry_on() -> bool {
    TEMPLATE_TELEMETRY.load(Ordering::Relaxed)
}

/// Turns per-template telemetry on or off (already-created labeled
/// series remain registered).
pub fn set_template_telemetry(enabled: bool) {
    TEMPLATE_TELEMETRY.store(enabled, Ordering::Relaxed);
}

/// Notes the template this thread is currently estimating, so the
/// subsequent [`record_quality`] can attribute its q-error. Called by the
/// estimator only when the telemetry gate is on.
pub fn set_current_template(hash: u64) {
    CURRENT_TEMPLATE.with(|c| c.set(hash));
}

/// The `template="<16 hex>"` label value for a stable template hash.
pub fn template_label(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Records one `(truth, estimate)` pair into the process-global
/// estimation-quality histograms:
///
/// * `quality.adj_rel_err_pct` — adjusted relative error in percent
///   (the paper's §5 metric), rounded;
/// * `quality.qerror_milli` — the optimizer community's q-error
///   `max(S/Ŝ, Ŝ/S)` (both sides clamped to ≥ 1), × 1000.
///
/// Every suite-evaluation path calls this, so `prmsel stats` reports
/// estimation quality alongside cost metrics.
pub fn record_quality(truth: u64, estimate: f64) {
    let err = adjusted_relative_error(truth, estimate);
    obs::histogram!("quality.adj_rel_err_pct")
        .record((err * 100.0).round().min(u64::MAX as f64) as u64);
    let t = truth.max(1) as f64;
    let e = estimate.max(1.0);
    let q = (t / e).max(e / t);
    let q_milli = (q * 1000.0).round().min(u64::MAX as f64) as u64;
    obs::histogram!("quality.qerror_milli").record(q_milli);
    if template_telemetry_on() {
        let tpl = CURRENT_TEMPLATE.with(|c| c.get());
        if tpl != 0 {
            let name = obs::openmetrics::labeled(
                "quality.qerror_milli",
                &[("template", &template_label(tpl))],
            );
            obs::registry().histogram(&name).record(q_milli);
            // Drift watchdog EWMA (no-op unless the sampler runs).
            obs::watchdog::observe_qerror(&template_label(tpl), q);
        }
    }
    // Suite evaluators score right after estimating on the same thread,
    // so this lands on the flight trace the estimate just finished.
    obs::flight::attach_quality(truth, q);
}

/// Per-query evaluation record.
#[derive(Debug, Clone, Copy)]
pub struct QueryEval {
    /// Exact result size.
    pub truth: u64,
    /// Estimated result size.
    pub estimate: f64,
    /// Adjusted relative error.
    pub error: f64,
}

/// Evaluation of one estimator on one suite.
#[derive(Debug, Clone)]
pub struct SuiteEval {
    /// Per-query records (suite order).
    pub per_query: Vec<QueryEval>,
}

impl SuiteEval {
    /// Mean adjusted relative error, in percent (the paper's y-axis).
    pub fn mean_error_pct(&self) -> f64 {
        if self.per_query.is_empty() {
            return 0.0;
        }
        100.0 * self.per_query.iter().map(|q| q.error).sum::<f64>()
            / self.per_query.len() as f64
    }

    /// Median adjusted relative error, in percent.
    pub fn median_error_pct(&self) -> f64 {
        self.quantile_error_pct(0.5)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the adjusted relative error, in
    /// percent — optimizers care about tail misestimates (a p95 blowup
    /// picks a catastrophic plan even when the mean looks fine).
    pub fn quantile_error_pct(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.per_query.is_empty() {
            return 0.0;
        }
        let mut errs: Vec<f64> = self.per_query.iter().map(|e| e.error).collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
        let idx = ((errs.len() as f64 - 1.0) * q).round() as usize;
        100.0 * errs[idx]
    }

    /// Worst-case adjusted relative error, in percent.
    pub fn max_error_pct(&self) -> f64 {
        self.quantile_error_pct(1.0)
    }

    /// Number of queries evaluated.
    pub fn len(&self) -> usize {
        self.per_query.len()
    }

    /// True if no queries were evaluated.
    pub fn is_empty(&self) -> bool {
        self.per_query.is_empty()
    }
}

/// Runs an estimator over a query suite, computing exact ground truth with
/// the relational executor. Queries are independent, so both the truth
/// executions and the estimates fan out across the pool; records come
/// back in suite order.
pub fn evaluate_suite(
    db: &Database,
    estimator: &dyn SelectivityEstimator,
    queries: &[Query],
) -> Result<SuiteEval> {
    let chunks = par::chunks(queries.len(), |range| {
        queries[range]
            .iter()
            .map(|q| {
                let truth = exec::result_size(db, q)?;
                let estimate = estimator.estimate(q)?;
                record_quality(truth, estimate);
                Ok(QueryEval {
                    truth,
                    estimate,
                    error: adjusted_relative_error(truth, estimate),
                })
            })
            .collect::<Result<Vec<_>>>()
    });
    let mut per_query = Vec::with_capacity(queries.len());
    for chunk in chunks {
        per_query.extend(chunk?);
    }
    Ok(SuiteEval { per_query })
}

/// Ground-truth sizes of a suite (for harnesses that reuse them across
/// estimators instead of re-executing per estimator).
pub fn ground_truth(db: &Database, queries: &[Query]) -> Result<Vec<u64>> {
    queries.iter().map(|q| Ok(exec::result_size(db, q)?)).collect()
}

/// [`evaluate_with_truth`] with an explicit worker count (overriding the
/// ambient `PRMSEL_THREADS` resolution). Useful for harnesses that sweep
/// thread counts.
pub fn evaluate_with_truth_parallel(
    estimator: &dyn SelectivityEstimator,
    queries: &[Query],
    truths: &[u64],
    threads: usize,
) -> Result<SuiteEval> {
    assert_eq!(queries.len(), truths.len());
    let chunks = par::chunks_with(threads, queries.len(), |range| {
        queries[range.clone()]
            .iter()
            .zip(&truths[range])
            .map(|(q, &truth)| {
                let estimate = estimator.estimate(q)?;
                record_quality(truth, estimate);
                Ok(QueryEval {
                    truth,
                    estimate,
                    error: adjusted_relative_error(truth, estimate),
                })
            })
            .collect::<Result<Vec<_>>>()
    });
    let mut per_query = Vec::with_capacity(queries.len());
    for chunk in chunks {
        per_query.extend(chunk?);
    }
    Ok(SuiteEval { per_query })
}

/// Evaluates an estimator against precomputed ground truth, fanning the
/// independent queries out across the pool (records in suite order).
pub fn evaluate_with_truth(
    estimator: &dyn SelectivityEstimator,
    queries: &[Query],
    truths: &[u64],
) -> Result<SuiteEval> {
    evaluate_with_truth_parallel(estimator, queries, truths, par::threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjusted_error_definition() {
        assert_eq!(adjusted_relative_error(100, 150.0), 0.5);
        assert_eq!(adjusted_relative_error(100, 50.0), 0.5);
        // max(S,1) guards the empty-result case.
        assert_eq!(adjusted_relative_error(0, 3.0), 3.0);
        assert_eq!(adjusted_relative_error(0, 0.0), 0.0);
    }

    #[test]
    fn mean_and_median() {
        let eval = SuiteEval {
            per_query: vec![
                QueryEval { truth: 1, estimate: 1.0, error: 0.0 },
                QueryEval { truth: 1, estimate: 2.0, error: 1.0 },
                QueryEval { truth: 1, estimate: 4.0, error: 3.0 },
            ],
        };
        assert!((eval.mean_error_pct() - 400.0 / 3.0).abs() < 1e-9);
        assert_eq!(eval.median_error_pct(), 100.0);
        assert_eq!(eval.len(), 3);
    }

    #[test]
    fn quantiles_and_max() {
        let eval = SuiteEval {
            per_query: (0..100)
                .map(|i| QueryEval { truth: 1, estimate: 0.0, error: i as f64 / 100.0 })
                .collect(),
        };
        assert!((eval.quantile_error_pct(0.0) - 0.0).abs() < 1e-9);
        assert!((eval.quantile_error_pct(0.95) - 94.0).abs() < 1.5);
        assert!((eval.max_error_pct() - 99.0).abs() < 1e-9);
    }

    #[test]
    fn empty_suite_is_zero() {
        let eval = SuiteEval { per_query: vec![] };
        assert_eq!(eval.mean_error_pct(), 0.0);
        assert_eq!(eval.median_error_pct(), 0.0);
        assert!(eval.is_empty());
    }
}
