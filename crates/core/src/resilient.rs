//! The degradation ladder: estimation that always answers.
//!
//! An optimizer asking for a selectivity cannot block on a perfect
//! answer — a wrong-but-bounded estimate beats an aborted planning pass.
//! [`ResilientEstimator`] wraps the PRM estimator in a four-rung ladder:
//!
//! ```text
//! 1. plan-cache exact     (the normal warm path)
//! 2. uncached exact       (fresh compile — sidesteps a poisoned plan)
//! 3. AVI baseline         (per-table histograms, single-table queries)
//! 4. uniform-fraction     (schema row counts and domain sizes only)
//! ```
//!
//! Rules of descent:
//!
//! * **Schema / Parse errors never degrade** — they are the caller's bug,
//!   and a fallback estimate would mask it. They return typed immediately.
//! * **Budget errors skip rung 2** — the same guard would trip on the
//!   identical uncached inference, so the ladder goes straight to the
//!   cheap fallbacks.
//! * **Panics are caught per rung** (`catch_unwind`) and become
//!   [`Error::Internal`]; a batch always returns one [`Outcome`] per
//!   query, whatever individual queries do.
//!
//! Every descent is accounted: `prm.guard.budget` / `prm.guard.deadline` /
//! `prm.guard.panic` count causes, `prm.guard.fallback` counts queries
//! answered below the exact rungs, and `prm.guard.fallback_ratio` is the
//! derived gauge `prmsel stats` reports. When the flight recorder is on,
//! each descent drops a `guard.*` phase on the query's trace so
//! `prmsel explain` shows *why* the query degraded.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use reldb::{Database, Query};

use crate::error::{BudgetKind, Error, ErrorClass, Result};
use crate::estimator::{AviAdapter, PrmEstimator, SelectivityEstimator};
use crate::qebn::pred_codes;

/// Which rung of the ladder produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Exact inference through the plan cache (no degradation).
    CachedExact,
    /// Exact inference with a fresh, uncached plan compile.
    UncachedExact,
    /// The AVI per-table histogram baseline.
    AviFallback,
    /// Uniform-fraction guess from schema row counts and domain sizes.
    UniformGuess,
}

impl Rung {
    /// Stable lowercase name (used in logs and trace phases).
    pub fn as_str(&self) -> &'static str {
        match self {
            Rung::CachedExact => "cached-exact",
            Rung::UncachedExact => "uncached-exact",
            Rung::AviFallback => "avi-fallback",
            Rung::UniformGuess => "uniform-guess",
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The per-query result of the ladder: the answer (or the typed error
/// when even the floor could not answer), which rung produced it, and
/// the errors of every rung that failed on the way down.
#[derive(Debug)]
pub struct Outcome {
    /// The estimate, or the error of the last rung attempted.
    pub result: Result<f64>,
    /// The rung that produced `result`.
    pub rung: Rung,
    /// `(rung, error)` of each rung that failed before `rung` answered.
    pub degradations: Vec<(Rung, Error)>,
}

impl Outcome {
    /// The estimate, when any rung answered.
    pub fn estimate(&self) -> Option<f64> {
        self.result.as_ref().ok().copied()
    }

    /// True when the query was not answered by the warm exact path.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty() || self.result.is_err()
    }
}

/// [`PrmEstimator`] wrapped in the degradation ladder.
#[derive(Debug)]
pub struct ResilientEstimator {
    prm: PrmEstimator,
    /// Per-table AVI baselines for rung 3, when built with database
    /// access ([`ResilientEstimator::with_avi_fallback`]).
    avi: HashMap<String, AviAdapter>,
    /// Strict mode fails instead of degrading (rung 1 only).
    strict: bool,
}

impl ResilientEstimator {
    /// Wraps `prm` with no AVI rung (rung 3 is skipped) — the
    /// constructor for estimators assembled from persisted artifacts,
    /// where no database is available to build histograms from.
    pub fn new(prm: PrmEstimator) -> Self {
        ResilientEstimator { prm, avi: HashMap::new(), strict: false }
    }

    /// Builds the per-table AVI baselines from `db` so rung 3 can answer
    /// single-table queries.
    pub fn with_avi_fallback(mut self, db: &Database) -> Result<Self> {
        for t in db.tables() {
            self.avi.insert(t.name().to_owned(), AviAdapter::build(db, t.name())?);
        }
        Ok(self)
    }

    /// Enables or disables strict mode: when strict, the ladder is off
    /// and the first rung's typed error is returned as-is (panics are
    /// still isolated so batches complete).
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Whether strict mode is on.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &PrmEstimator {
        &self.prm
    }

    /// Mutable access to the wrapped estimator (model replacement).
    pub fn inner_mut(&mut self) -> &mut PrmEstimator {
        &mut self.prm
    }

    /// Runs one query down the ladder. Never panics; always returns an
    /// [`Outcome`].
    pub fn estimate_query(&self, query: &Query) -> Outcome {
        obs::counter!("prm.guard.queries").inc();
        let outcome = self.run_ladder(query);
        if matches!(outcome.rung, Rung::AviFallback | Rung::UniformGuess)
            && outcome.result.is_ok()
        {
            obs::counter!("prm.guard.fallback").inc();
        }
        refresh_fallback_ratio();
        // An exact-rung error leaves the flight trace open; close it with
        // the fallback answer so the trace (with its guard.* phases)
        // lands in the ring instead of being discarded as stale.
        if let Ok(v) = outcome.result {
            obs::flight::finish(v);
        }
        outcome
    }

    /// Estimates every query, one [`Outcome`] each, in query order. A
    /// panicking or failing query never takes down its neighbors: each
    /// runs the full ladder independently.
    pub fn estimate_batch(&self, queries: &[Query]) -> Vec<Outcome> {
        if par::threads() == 1 || queries.len() < 2 {
            return queries.iter().map(|q| self.estimate_query(q)).collect();
        }
        par::chunks(queries.len(), |range| {
            queries[range].iter().map(|q| self.estimate_query(q)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    fn run_ladder(&self, query: &Query) -> Outcome {
        let mut degradations: Vec<(Rung, Error)> = Vec::new();
        // Rung 1: the warm exact path.
        let first = guarded(|| self.prm.estimate(query));
        let e = match first {
            Ok(v) => {
                return Outcome { result: Ok(v), rung: Rung::CachedExact, degradations }
            }
            Err(e) => e,
        };
        if self.strict || matches!(e.class(), ErrorClass::Schema | ErrorClass::Parse) {
            // Caller bugs return typed (a fallback would mask them);
            // strict mode turns every failure into a typed error.
            return Outcome { result: Err(e), rung: Rung::CachedExact, degradations };
        }
        record_descent(&e);
        // A budget refusal is deterministic: the identical uncached
        // inference would trip the identical guard, so skip rung 2.
        let skip_uncached = e.class() == ErrorClass::Budget;
        degradations.push((Rung::CachedExact, e));
        if !skip_uncached {
            let _p = obs::flight::phase("guard.uncached");
            match guarded(|| self.prm.estimate_uncached(query)) {
                Ok(v) => {
                    return Outcome {
                        result: Ok(v),
                        rung: Rung::UncachedExact,
                        degradations,
                    }
                }
                Err(e) => {
                    record_descent(&e);
                    degradations.push((Rung::UncachedExact, e));
                }
            }
        }
        // Rung 3: AVI histograms (single-table queries only).
        if query.is_single_table() {
            if let Some(avi) = self.avi.get(&query.vars[0]) {
                let _p = obs::flight::phase("guard.avi");
                match guarded(|| avi.estimate(query)) {
                    Ok(v) => {
                        return Outcome {
                            result: Ok(v),
                            rung: Rung::AviFallback,
                            degradations,
                        }
                    }
                    Err(e) => degradations.push((Rung::AviFallback, e)),
                }
            }
        }
        // Rung 4: the floor. Only schema access; can only fail on a
        // schema mismatch, which rung 1 would already have rejected.
        let _p = obs::flight::phase("guard.uniform");
        let result = guarded(|| self.uniform_guess(query));
        Outcome { result, rung: Rung::UniformGuess, degradations }
    }

    /// The always-available floor: assume independent, uniformly
    /// distributed attributes and uniformly distributed foreign keys.
    /// `size ≈ Π|T_v| · Π_joins 1/|T_parent| · Π_preds |allowed|/card` —
    /// the textbook System-R style guess, computable from the schema
    /// snapshot alone.
    fn uniform_guess(&self, query: &Query) -> Result<f64> {
        let epoch = self.prm.epoch();
        let schema = &epoch.schema;
        schema.validate_query(query)?;
        let tables: Vec<usize> = query
            .vars
            .iter()
            .map(|v| schema.table_index(v))
            .collect::<reldb::Result<_>>()?;
        let mut size: f64 =
            tables.iter().map(|&t| schema.tables[t].n_rows as f64).product();
        for join in &query.joins {
            let parent_rows = schema.tables[tables[join.parent]].n_rows.max(1);
            size /= parent_rows as f64;
        }
        for pred in &query.preds {
            let table = tables[pred.var()];
            let card = schema.domain(table, pred.attr())?.card().max(1);
            let allowed = pred_codes(schema, table, pred)?.len();
            size *= allowed as f64 / card as f64;
        }
        Ok(size)
    }
}

/// Runs one rung with panic isolation: a panic increments
/// `prm.guard.panic`, drops a `guard.panic` marker on the live trace, and
/// becomes [`Error::Internal`].
fn guarded(f: impl FnOnce() -> Result<f64>) -> Result<f64> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            obs::counter!("prm.guard.panic").inc();
            obs::watchdog::observe_panic();
            let _p = obs::flight::phase("guard.panic");
            Err(Error::from_panic(payload))
        }
    }
}

/// Counts the cause of a descent and marks it on the live flight trace.
fn record_descent(e: &Error) {
    match e {
        Error::Budget { kind: BudgetKind::Width, .. } => {
            obs::counter!("prm.guard.budget").inc();
            let _p = obs::flight::phase("guard.budget");
        }
        Error::Budget { kind: BudgetKind::Deadline, .. } => {
            obs::counter!("prm.guard.deadline").inc();
            let _p = obs::flight::phase("guard.deadline");
        }
        // Panics were already counted inside `guarded`; other classes
        // (Corrupt, Internal) are visible through the fallback counter
        // and the outcome's degradation list.
        _ => {}
    }
}

/// Recomputes the `prm.guard.fallback_ratio` gauge — fallback-answered
/// queries over all ladder queries — so any metrics snapshot sees the
/// current ratio.
fn refresh_fallback_ratio() {
    let queries = obs::counter!("prm.guard.queries").get();
    if queries > 0 {
        let fallback = obs::counter!("prm.guard.fallback").get();
        obs::gauge!("prm.guard.fallback_ratio").set(fallback as f64 / queries as f64);
    }
}

/// The ladder as a [`SelectivityEstimator`]: collapses the [`Outcome`] to
/// its result so the wrapper drops into every harness (suite evaluation,
/// benches) unchanged.
impl SelectivityEstimator for ResilientEstimator {
    fn name(&self) -> &str {
        self.prm.name()
    }

    fn size_bytes(&self) -> usize {
        self.prm.size_bytes()
    }

    fn estimate(&self, query: &Query) -> Result<f64> {
        self.estimate_query(query).result
    }
}
