//! Large attribute domains via discretization (paper §2.3).
//!
//! The models in this workspace assume small discrete domains (up to ~50
//! values). For ordinal attributes with many distinct values, the paper
//! prescribes: discretize, build the model over the bins, answer an
//! *abstract* query at bin granularity, then scale back to the base-level
//! query "by assuming a uniform distribution within the result".
//!
//! [`discretize_database`] rewrites every over-wide integer column into
//! equi-depth bins (keys and narrow columns pass through), remembering the
//! binning. [`DiscretizingEstimator`] wraps any inner estimator built over
//! the binned database: a base-level predicate is mapped to the bins it
//! overlaps, and the bin-level estimate is scaled by the covered fraction
//! of those bins under within-bin uniformity.

use std::collections::HashMap;

use bayesnet::discretize::{Discretizer, NominalGrouper};
use reldb::{
    Cell, Database, DatabaseBuilder, Domain, Error, Pred, Query, TableBuilder, Value,
};

use crate::error::Result;
use crate::estimator::SelectivityEstimator;

/// Per-column binning metadata.
#[derive(Debug, Clone)]
enum Mapper {
    /// Ordinal: contiguous equi-depth ranges.
    Ordinal(Discretizer),
    /// Nominal: frequency grouping with an OTHER bucket.
    Nominal(NominalGrouper),
}

#[derive(Debug, Clone)]
struct Binning {
    mapper: Mapper,
    /// The original (base-level) domain.
    base_domain: Domain,
}

impl Binning {
    fn bin_of(&self, code: u32) -> u32 {
        match &self.mapper {
            Mapper::Ordinal(d) => d.bin_of(code),
            Mapper::Nominal(g) => g.group_of(code),
        }
    }

    fn bin_width(&self, bin: u32) -> f64 {
        match &self.mapper {
            Mapper::Ordinal(d) => {
                let (lo, hi) = d.bin_range(bin);
                (hi - lo + 1) as f64
            }
            Mapper::Nominal(g) => g.group_width(bin) as f64,
        }
    }

    fn n_bins(&self) -> usize {
        match &self.mapper {
            Mapper::Ordinal(d) => d.n_bins(),
            Mapper::Nominal(g) => g.n_groups(),
        }
    }
}

/// A database whose wide ordinal columns have been replaced by bins.
#[derive(Debug)]
pub struct DiscretizedDatabase {
    /// The binned database (bin codes stored as integer values).
    pub db: Database,
    binnings: HashMap<(String, String), Binning>,
}

impl DiscretizedDatabase {
    /// True if `table.attr` was binned.
    pub fn is_binned(&self, table: &str, attr: &str) -> bool {
        self.binnings.contains_key(&(table.to_owned(), attr.to_owned()))
    }

    /// Number of binned columns.
    pub fn n_binned(&self) -> usize {
        self.binnings.len()
    }
}

/// Rewrites every integer value column with more than `max_card` distinct
/// values into at most `max_card` equi-depth bins.
pub fn discretize_database(
    db: &Database,
    max_card: usize,
) -> Result<DiscretizedDatabase> {
    assert!(max_card >= 2, "need at least two bins");
    let mut out = DatabaseBuilder::new();
    let mut binnings = HashMap::new();
    for table in db.tables() {
        let schema = table.schema();
        let mut builder = TableBuilder::new(table.name());
        for attr in &schema.attrs {
            builder = match &attr.kind {
                reldb::AttrKind::PrimaryKey => builder.key(&attr.name),
                reldb::AttrKind::ForeignKey { target } => builder.fk(&attr.name, target),
                reldb::AttrKind::Value => builder.col(&attr.name),
            };
        }
        // Precompute per-column transforms.
        enum Col<'a> {
            Key(&'a [i64]),
            Fk(&'a [i64]),
            Plain(&'a [u32], &'a Domain),
            Binned(Vec<u32>),
        }
        let mut cols: Vec<Col> = Vec::new();
        for attr in &schema.attrs {
            match &attr.kind {
                reldb::AttrKind::PrimaryKey => {
                    cols.push(Col::Key(table.key_values().expect("pk exists")));
                }
                reldb::AttrKind::ForeignKey { .. } => {
                    cols.push(Col::Fk(table.fk_values(&attr.name)?));
                }
                reldb::AttrKind::Value => {
                    let domain = table.domain(&attr.name)?;
                    let codes = table.codes(&attr.name)?;
                    if domain.card() > max_card {
                        let is_ordinal =
                            domain.values().iter().all(|v| v.as_int().is_some());
                        let mapper = if is_ordinal {
                            Mapper::Ordinal(Discretizer::equi_depth(
                                codes,
                                domain.card(),
                                max_card,
                            ))
                        } else {
                            Mapper::Nominal(NominalGrouper::by_frequency(
                                codes,
                                domain.card(),
                                max_card,
                            ))
                        };
                        let binning = Binning { mapper, base_domain: domain.clone() };
                        let binned: Vec<u32> =
                            codes.iter().map(|&c| binning.bin_of(c)).collect();
                        binnings.insert(
                            (table.name().to_owned(), attr.name.clone()),
                            binning,
                        );
                        cols.push(Col::Binned(binned));
                    } else {
                        cols.push(Col::Plain(codes, domain));
                    }
                }
            }
        }
        for row in 0..table.n_rows() {
            let cells: Vec<Cell> = cols
                .iter()
                .map(|c| match c {
                    Col::Key(k) => Cell::Key(k[row]),
                    Col::Fk(k) => Cell::Key(k[row]),
                    Col::Plain(codes, domain) => {
                        Cell::Val(domain.value(codes[row]).clone())
                    }
                    Col::Binned(bins) => Cell::Val(Value::Int(bins[row] as i64)),
                })
                .collect();
            builder.push_row(cells)?;
        }
        out = out.add_table(builder.finish()?);
    }
    Ok(DiscretizedDatabase { db: out.finish()?, binnings })
}

/// Wraps an estimator built over the *binned* database and answers
/// base-level queries.
pub struct DiscretizingEstimator<E> {
    inner: E,
    binnings: HashMap<(String, String), Binning>,
}

impl<E: SelectivityEstimator> DiscretizingEstimator<E> {
    /// Pairs a binned-database estimator with the binning metadata.
    pub fn new(inner: E, dd: &DiscretizedDatabase) -> Self {
        DiscretizingEstimator { inner, binnings: dd.binnings.clone() }
    }

    /// Translates a base-level query into (abstract bin-level query,
    /// uniformity scale factor).
    fn translate(&self, query: &Query) -> Result<(Query, f64)> {
        let mut out = query.clone();
        let mut scale = 1.0;
        for pred in &mut out.preds {
            let table =
                query.vars.get(pred.var()).ok_or(Error::UnknownVar(pred.var()))?;
            let Some(binning) =
                self.binnings.get(&(table.clone(), pred.attr().to_owned()))
            else {
                continue;
            };
            // Base-level codes the predicate selects.
            let codes: Vec<u32> = match &*pred {
                Pred::Eq { value, .. } => {
                    binning.base_domain.code(value).into_iter().collect()
                }
                Pred::In { values, .. } => {
                    let mut cs: Vec<u32> = values
                        .iter()
                        .filter_map(|v| binning.base_domain.code(v))
                        .collect();
                    cs.sort_unstable();
                    cs.dedup();
                    cs
                }
                Pred::Range { lo, hi, .. } => {
                    binning.base_domain.codes_in_range(*lo, *hi)
                }
            };
            // Overlapping bins and their covered width.
            let mut bins: Vec<u32> = codes.iter().map(|&c| binning.bin_of(c)).collect();
            bins.sort_unstable();
            bins.dedup();
            let covered = codes.len() as f64;
            let total_width: f64 = bins.iter().map(|&b| binning.bin_width(b)).sum();
            if total_width > 0.0 {
                scale *= covered / total_width;
            } else {
                scale = 0.0;
            }
            // The abstract predicate selects the overlapping bins.
            *pred = Pred::In {
                var: pred.var(),
                attr: pred.attr().to_owned(),
                values: bins.iter().map(|&b| Value::Int(b as i64)).collect(),
            };
        }
        Ok((out, scale))
    }
}

impl<E: SelectivityEstimator> SelectivityEstimator for DiscretizingEstimator<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn size_bytes(&self) -> usize {
        // Bin boundaries must be stored alongside the model: 2 bytes per
        // bin upper bound.
        let bin_bytes: usize = self.binnings.values().map(|b| 2 * b.n_bins()).sum();
        self.inner.size_bytes() + bin_bytes
    }

    fn estimate(&self, query: &Query) -> Result<f64> {
        let (abstract_query, scale) = self.translate(query)?;
        Ok(self.inner.estimate(&abstract_query)? * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::PrmEstimator;
    use crate::learn::PrmLearnConfig;
    use reldb::result_size;

    /// A table with one wide ordinal column (200 values) correlated with a
    /// narrow one.
    fn wide_db() -> Database {
        let mut t = TableBuilder::new("t").key("id").col("wide").col("narrow");
        for i in 0..4_000i64 {
            let wide = (i * 37 + (i * i) % 11) % 200;
            let narrow = if wide < 100 { 0 } else { 1 };
            t.push_row(vec![
                Cell::Key(i),
                Cell::Val(Value::Int(wide)),
                Cell::Val(Value::Int(narrow)),
            ])
            .unwrap();
        }
        DatabaseBuilder::new().add_table(t.finish().unwrap()).finish().unwrap()
    }

    #[test]
    fn binning_reduces_cardinality() {
        let db = wide_db();
        let dd = discretize_database(&db, 16).unwrap();
        assert_eq!(dd.n_binned(), 1);
        assert!(dd.is_binned("t", "wide"));
        assert!(!dd.is_binned("t", "narrow"));
        assert!(dd.db.table("t").unwrap().domain("wide").unwrap().card() <= 16);
        assert_eq!(dd.db.table("t").unwrap().n_rows(), 4_000);
    }

    #[test]
    fn range_queries_scale_back_accurately() {
        let db = wide_db();
        let dd = discretize_database(&db, 16).unwrap();
        let inner = PrmEstimator::build(
            &dd.db,
            &PrmLearnConfig { budget_bytes: 2048, ..Default::default() },
        )
        .unwrap();
        let est = DiscretizingEstimator::new(inner, &dd);
        // A wide range predicate at base level.
        let mut b = Query::builder();
        let v = b.var("t");
        b.range(v, "wide", Some(25), Some(150));
        let q = b.build();
        let truth = result_size(&db, &q).unwrap() as f64;
        let got = est.estimate(&q).unwrap();
        assert!((got - truth).abs() / truth < 0.15, "got={got} truth={truth}");
    }

    #[test]
    fn equality_queries_use_within_bin_uniformity() {
        let db = wide_db();
        let dd = discretize_database(&db, 16).unwrap();
        let inner = PrmEstimator::build(
            &dd.db,
            &PrmLearnConfig { budget_bytes: 2048, ..Default::default() },
        )
        .unwrap();
        let est = DiscretizingEstimator::new(inner, &dd);
        let mut b = Query::builder();
        let v = b.var("t");
        b.eq(v, "wide", 42);
        let q = b.build();
        let truth = result_size(&db, &q).unwrap() as f64;
        let got = est.estimate(&q).unwrap();
        // Equality on a near-uniform wide attribute: within a factor ~2.
        assert!((got - truth).abs() / truth.max(1.0) < 1.0, "got={got} truth={truth}");
    }

    #[test]
    fn mixed_queries_combine_binned_and_plain_predicates() {
        let db = wide_db();
        let dd = discretize_database(&db, 16).unwrap();
        let inner = PrmEstimator::build(
            &dd.db,
            &PrmLearnConfig { budget_bytes: 4096, ..Default::default() },
        )
        .unwrap();
        let est = DiscretizingEstimator::new(inner, &dd);
        let mut b = Query::builder();
        let v = b.var("t");
        b.range(v, "wide", Some(120), None).eq(v, "narrow", 1);
        let q = b.build();
        let truth = result_size(&db, &q).unwrap() as f64;
        let got = est.estimate(&q).unwrap();
        assert!((got - truth).abs() / truth < 0.25, "got={got} truth={truth}");
    }

    #[test]
    fn size_accounts_for_bin_boundaries() {
        let db = wide_db();
        let dd = discretize_database(&db, 16).unwrap();
        let inner = PrmEstimator::build(&dd.db, &PrmLearnConfig::default()).unwrap();
        let inner_bytes = inner.size_bytes();
        let est = DiscretizingEstimator::new(inner, &dd);
        assert!(est.size_bytes() > inner_bytes);
    }

    #[test]
    fn nominal_wide_domains_are_grouped_by_frequency() {
        // A string column with 60 distinct values, heavily skewed.
        let mut t = TableBuilder::new("t").key("id").col("city");
        for i in 0..3_000i64 {
            let city = if i % 3 != 0 {
                format!("metro{}", i % 4) // 4 big cities get 2/3 of rows
            } else {
                format!("town{}", i % 56)
            };
            t.push_row(vec![Cell::Key(i), Cell::Val(Value::Str(city))]).unwrap();
        }
        let db = DatabaseBuilder::new().add_table(t.finish().unwrap()).finish().unwrap();
        assert!(db.table("t").unwrap().domain("city").unwrap().card() > 16);
        let dd = discretize_database(&db, 16).unwrap();
        assert_eq!(dd.n_binned(), 1);
        assert!(dd.db.table("t").unwrap().domain("city").unwrap().card() <= 16);
        let inner = PrmEstimator::build(&dd.db, &PrmLearnConfig::default()).unwrap();
        let est = DiscretizingEstimator::new(inner, &dd);
        // A heavy hitter keeps its own group → near-exact estimate.
        let mut b = Query::builder();
        let v = b.var("t");
        b.eq(v, "city", "metro1");
        let q = b.build();
        let truth = result_size(&db, &q).unwrap() as f64;
        let got = est.estimate(&q).unwrap();
        assert!((got - truth).abs() / truth < 0.05, "metro: got={got} truth={truth}");
        // A rare value goes through the OTHER group with uniformity.
        let mut b = Query::builder();
        let v = b.var("t");
        b.eq(v, "city", "town7");
        let q = b.build();
        let truth = result_size(&db, &q).unwrap() as f64;
        let got = est.estimate(&q).unwrap();
        assert!(
            (got - truth).abs() / truth.max(1.0) < 1.0,
            "town: got={got} truth={truth}"
        );
    }

    #[test]
    fn narrow_databases_pass_through_unchanged() {
        let mut t = TableBuilder::new("t").col("x");
        for i in 0..50i64 {
            t.push_row(vec![Cell::Val(Value::Int(i % 5))]).unwrap();
        }
        let db = DatabaseBuilder::new().add_table(t.finish().unwrap()).finish().unwrap();
        let dd = discretize_database(&db, 16).unwrap();
        assert_eq!(dd.n_binned(), 0);
        assert_eq!(dd.db.table("t").unwrap().domain("x").unwrap().card(), 5);
    }
}
