//! Model persistence: a small versioned binary format for PRMs.
//!
//! The offline phase runs in a batch job; the online phase runs inside a
//! query optimizer. This module is the handoff: [`save_model`] serializes
//! a learned [`Prm`] together with the [`SchemaInfo`] snapshot it needs at
//! estimation time, [`load_model`] restores both. The format is
//! hand-rolled (little-endian, length-prefixed) so the core crate carries
//! no serialization dependency.
//!
//! ## Format (`PRMSEL02`)
//!
//! ```text
//! offset  size  field
//!      0     8  magic b"PRMSEL02" (magic doubles as the format version)
//!      8     8  payload length (u64 le)
//!     16     8  FNV-1a 64 checksum of the payload (u64 le)
//!     24     –  payload (tables, CPDs, schema snapshot)
//! ```
//!
//! A corrupted model must never poison the estimator: the checksum is
//! verified **before** any structure is parsed, every read is
//! bounds-checked against the declared payload, and all failures return
//! [`Error::Corrupt`] carrying the byte offset at which validation
//! failed — never a panic. Files written by earlier format versions
//! (`PRMSEL01`) are rejected at the magic.

use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

use bayesnet::cpd::{Cpd, TableCpd, TreeCpd, TreeNode};
use reldb::{Domain, Value};

use crate::error::{Error, Result};
use crate::prm::{
    AttrModel, JiParentRef, JoinIndicatorModel, ParentRef, Prm, TableModel,
};
use crate::schema::{FkInfo, SchemaInfo, TableInfo};

const MAGIC: &[u8; 8] = b"PRMSEL02";
/// Bytes before the payload: magic + payload length + checksum.
const HEADER_LEN: u64 = 24;

/// FNV-1a 64 over `bytes` — tiny, dependency-free, and plenty to catch
/// truncation and bit flips (this is integrity checking, not crypto).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt_at(offset: u64, detail: impl Into<String>) -> Error {
    Error::Corrupt { offset: Some(offset), detail: detail.into() }
}

/// Serializes a model + schema snapshot.
pub fn save_model(prm: &Prm, schema: &SchemaInfo, mut out: impl Write) -> Result<()> {
    let mut payload = Vec::new();
    {
        let mut w = Writer { out: &mut payload };
        w.body(prm, schema)?;
    }
    let mut write = |bytes: &[u8]| {
        out.write_all(bytes).map_err(|e| Error::Internal(format!("write error: {e}")))
    };
    write(MAGIC)?;
    write(&(payload.len() as u64).to_le_bytes())?;
    write(&fnv1a(&payload).to_le_bytes())?;
    write(&payload)
}

/// Deserializes a model + schema snapshot saved by [`save_model`].
///
/// Magic, declared payload length, and checksum are all verified before
/// parsing; any mismatch — or any structural inconsistency found while
/// parsing — returns [`Error::Corrupt`] with the byte offset of the
/// damage.
pub fn load_model(mut input: impl Read) -> Result<(Prm, SchemaInfo)> {
    failpoint::fail_point!("persist.load").map_err(Error::from)?;
    let mut header = [0u8; HEADER_LEN as usize];
    let got = read_up_to(&mut input, &mut header)?;
    if got < header.len() {
        return Err(corrupt_at(got as u64, "truncated header"));
    }
    if &header[..8] != MAGIC {
        return Err(corrupt_at(0, "not a prmsel model file (bad magic/version)"));
    }
    let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    if payload_len > (1 << 40) {
        return Err(corrupt_at(8, format!("implausible payload length {payload_len}")));
    }
    let checksum = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
    let mut payload = vec![0u8; payload_len as usize];
    let got = read_up_to(&mut input, &mut payload)?;
    if (got as u64) < payload_len {
        return Err(corrupt_at(
            HEADER_LEN + got as u64,
            format!("truncated payload: declared {payload_len} bytes, found {got}"),
        ));
    }
    if fnv1a(&payload) != checksum {
        return Err(corrupt_at(
            HEADER_LEN,
            "payload checksum mismatch (bit flip or partial write)",
        ));
    }
    // The checksum screens out accidental damage; the bounds-checked
    // parse below handles truncation within a declared length. The
    // catch_unwind is the last line of defense for adversarially crafted
    // payloads that pass both but violate a constructor invariant — load
    // must *never* panic.
    catch_unwind(AssertUnwindSafe(|| {
        let mut r = Reader { buf: &payload, pos: 0 };
        r.body()
    }))
    .unwrap_or_else(|_| {
        Err(corrupt_at(HEADER_LEN, "model validation panicked on decoded structure"))
    })
}

// ---------------------------------------------------------------------
// Template manifests (`PRMMAN01`).
// ---------------------------------------------------------------------

const MANIFEST_MAGIC: &[u8; 8] = b"PRMMAN01";

/// Serializes a template manifest — the [`PlanKey`]s to precompile at
/// model load — alongside a `PRMSEL02` model file. Same envelope as
/// [`save_model`]: magic, payload length, FNV-1a checksum, payload.
pub fn save_manifest(keys: &[crate::plan::PlanKey], mut out: impl Write) -> Result<()> {
    let mut payload = Vec::new();
    {
        let mut w = Writer { out: &mut payload };
        w.usize_(keys.len())?;
        for k in keys {
            w.usize_(k.vars.len())?;
            for v in &k.vars {
                w.string(v)?;
            }
            w.usize_(k.joins.len())?;
            for (child, fk, parent) in &k.joins {
                w.usize_(*child)?;
                w.string(fk)?;
                w.usize_(*parent)?;
            }
            w.usize_(k.preds.len())?;
            for (var, attr) in &k.preds {
                w.usize_(*var)?;
                w.string(attr)?;
            }
        }
    }
    let mut write = |bytes: &[u8]| {
        out.write_all(bytes).map_err(|e| Error::Internal(format!("write error: {e}")))
    };
    write(MANIFEST_MAGIC)?;
    write(&(payload.len() as u64).to_le_bytes())?;
    write(&fnv1a(&payload).to_le_bytes())?;
    write(&payload)
}

/// Deserializes a template manifest saved by [`save_manifest`], with the
/// same header/checksum/bounds discipline as [`load_model`]: a damaged
/// manifest returns [`Error::Corrupt`], never a panic.
pub fn load_manifest(mut input: impl Read) -> Result<Vec<crate::plan::PlanKey>> {
    let mut header = [0u8; HEADER_LEN as usize];
    let got = read_up_to(&mut input, &mut header)?;
    if got < header.len() {
        return Err(corrupt_at(got as u64, "truncated manifest header"));
    }
    if &header[..8] != MANIFEST_MAGIC {
        return Err(corrupt_at(0, "not a prmsel manifest file (bad magic/version)"));
    }
    let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    if payload_len > (1 << 40) {
        return Err(corrupt_at(8, format!("implausible payload length {payload_len}")));
    }
    let checksum = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
    let mut payload = vec![0u8; payload_len as usize];
    let got = read_up_to(&mut input, &mut payload)?;
    if (got as u64) < payload_len {
        return Err(corrupt_at(
            HEADER_LEN + got as u64,
            format!("truncated payload: declared {payload_len} bytes, found {got}"),
        ));
    }
    if fnv1a(&payload) != checksum {
        return Err(corrupt_at(
            HEADER_LEN,
            "payload checksum mismatch (bit flip or partial write)",
        ));
    }
    let mut r = Reader { buf: &payload, pos: 0 };
    let n = r.usize_()?;
    let mut keys = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let nv = r.usize_()?;
        let vars = (0..nv).map(|_| r.string()).collect::<Result<Vec<_>>>()?;
        let nj = r.usize_()?;
        let mut joins = Vec::with_capacity(nj.min(1024));
        for _ in 0..nj {
            joins.push((r.usize_()?, r.string()?, r.usize_()?));
        }
        let np = r.usize_()?;
        let mut preds = Vec::with_capacity(np.min(1024));
        for _ in 0..np {
            preds.push((r.usize_()?, r.string()?));
        }
        keys.push(crate::plan::PlanKey { vars, joins, preds });
    }
    if r.pos != r.buf.len() {
        return Err(r.corrupt(format!(
            "{} trailing bytes after the manifest",
            r.buf.len() - r.pos
        )));
    }
    Ok(keys)
}

/// Reads until `buf` is full or the input ends; returns bytes read.
fn read_up_to(input: &mut impl Read, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::Internal(format!("read error: {e}"))),
        }
    }
    Ok(filled)
}

// ---------------------------------------------------------------------
// Primitive writer.
// ---------------------------------------------------------------------

struct Writer<'a, W: Write> {
    out: &'a mut W,
}

impl<W: Write> Writer<'_, W> {
    fn body(&mut self, prm: &Prm, schema: &SchemaInfo) -> Result<()> {
        self.usize_(prm.tables.len())?;
        for t in &prm.tables {
            self.string(&t.table)?;
            self.u64_(t.n_rows)?;
            self.usize_(t.attrs.len())?;
            for a in &t.attrs {
                self.string(&a.name)?;
                self.usize_(a.card)?;
                self.usize_(a.parents.len())?;
                for p in &a.parents {
                    match *p {
                        ParentRef::Local { attr } => {
                            self.u8_(0)?;
                            self.usize_(attr)?;
                        }
                        ParentRef::Foreign { fk, attr } => {
                            self.u8_(1)?;
                            self.usize_(fk)?;
                            self.usize_(attr)?;
                        }
                    }
                }
                self.cpd(&a.cpd)?;
            }
            self.usize_(t.join_indicators.len())?;
            for ji in &t.join_indicators {
                self.string(&ji.fk_attr)?;
                self.string(&ji.target)?;
                self.usize_(ji.parents.len())?;
                for p in &ji.parents {
                    match *p {
                        JiParentRef::Child { attr } => {
                            self.u8_(0)?;
                            self.usize_(attr)?;
                        }
                        JiParentRef::Parent { attr } => {
                            self.u8_(1)?;
                            self.usize_(attr)?;
                        }
                    }
                }
                self.usizes(&ji.parent_cards)?;
                self.f64s(&ji.p_true)?;
            }
        }
        // Schema snapshot.
        self.usize_(schema.tables.len())?;
        for t in &schema.tables {
            self.string(&t.name)?;
            self.u64_(t.n_rows)?;
            self.usize_(t.attrs.len())?;
            for (a, d) in t.attrs.iter().zip(&t.domains) {
                self.string(a)?;
                self.usize_(d.card())?;
                for v in d.values() {
                    self.value(v)?;
                }
            }
            self.usize_(t.fks.len())?;
            for fk in &t.fks {
                self.string(&fk.attr)?;
                self.usize_(fk.target)?;
            }
        }
        Ok(())
    }

    fn bytes(&mut self, b: &[u8]) -> Result<()> {
        self.out.write_all(b).map_err(|e| Error::Internal(format!("write error: {e}")))
    }

    fn u8_(&mut self, v: u8) -> Result<()> {
        self.bytes(&[v])
    }

    fn u64_(&mut self, v: u64) -> Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    fn usize_(&mut self, v: usize) -> Result<()> {
        self.u64_(v as u64)
    }

    fn f64_(&mut self, v: f64) -> Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    fn string(&mut self, s: &str) -> Result<()> {
        self.usize_(s.len())?;
        self.bytes(s.as_bytes())
    }

    fn usizes(&mut self, v: &[usize]) -> Result<()> {
        self.usize_(v.len())?;
        for &x in v {
            self.usize_(x)?;
        }
        Ok(())
    }

    fn f64s(&mut self, v: &[f64]) -> Result<()> {
        self.usize_(v.len())?;
        for &x in v {
            self.f64_(x)?;
        }
        Ok(())
    }

    fn value(&mut self, v: &Value) -> Result<()> {
        match v {
            Value::Int(i) => {
                self.u8_(0)?;
                self.u64_(*i as u64)
            }
            Value::Str(s) => {
                self.u8_(1)?;
                self.string(s)
            }
        }
    }

    fn cpd(&mut self, cpd: &Cpd) -> Result<()> {
        match cpd {
            Cpd::Table(t) => {
                self.u8_(0)?;
                self.usize_(t.child_card())?;
                self.usizes(t.parent_cards())?;
                // Reconstruct the flat probability table row by row.
                let rows: usize = t.parent_cards().iter().product::<usize>().max(1);
                self.usize_(rows * t.child_card())?;
                let mut config = vec![0u32; t.parent_cards().len()];
                for row in 0..rows {
                    let mut rem = row;
                    for k in (0..config.len()).rev() {
                        config[k] = (rem % t.parent_cards()[k]) as u32;
                        rem /= t.parent_cards()[k];
                    }
                    for &p in t.dist(&config) {
                        self.f64_(p)?;
                    }
                }
                Ok(())
            }
            Cpd::Tree(t) => {
                self.u8_(1)?;
                self.usize_(t.child_card())?;
                self.usizes(t.parent_cards())?;
                self.usize_(t.nodes().len())?;
                for node in t.nodes() {
                    match node {
                        TreeNode::Leaf(d) => {
                            self.u8_(0)?;
                            self.f64s(d)?;
                        }
                        TreeNode::SplitPerValue { slot, branches } => {
                            self.u8_(1)?;
                            self.usize_(*slot)?;
                            self.usizes(branches)?;
                        }
                        TreeNode::SplitThreshold { slot, cut, lo, hi } => {
                            self.u8_(2)?;
                            self.usize_(*slot)?;
                            self.u64_(*cut as u64)?;
                            self.usize_(*lo)?;
                            self.usize_(*hi)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Offset-tracking reader over the verified payload.
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Absolute file offset of the next unread byte (header included) —
    /// what [`Error::Corrupt`] reports.
    fn offset(&self) -> u64 {
        HEADER_LEN + self.pos as u64
    }

    fn corrupt(&self, detail: impl Into<String>) -> Error {
        corrupt_at(self.offset(), detail)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.buf.len() - self.pos {
            return Err(self.corrupt(format!(
                "truncated field: needed {n} bytes, {} left",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn body(&mut self) -> Result<(Prm, SchemaInfo)> {
        let n_tables = self.usize_()?;
        let mut tables = Vec::with_capacity(n_tables.min(1024));
        for _ in 0..n_tables {
            let table = self.string()?;
            let n_rows = self.u64_()?;
            let n_attrs = self.usize_()?;
            let mut attrs = Vec::with_capacity(n_attrs.min(1024));
            for _ in 0..n_attrs {
                let name = self.string()?;
                let card = self.usize_()?;
                let n_parents = self.usize_()?;
                let mut parents = Vec::with_capacity(n_parents.min(1024));
                for _ in 0..n_parents {
                    let at = self.offset();
                    parents.push(match self.u8_()? {
                        0 => ParentRef::Local { attr: self.usize_()? },
                        1 => ParentRef::Foreign {
                            fk: self.usize_()?,
                            attr: self.usize_()?,
                        },
                        x => return Err(corrupt_at(at, format!("parent tag {x}"))),
                    });
                }
                let cpd = self.cpd()?;
                attrs.push(AttrModel { name, card, parents, cpd });
            }
            let n_jis = self.usize_()?;
            let mut join_indicators = Vec::with_capacity(n_jis.min(1024));
            for _ in 0..n_jis {
                let fk_attr = self.string()?;
                let target = self.string()?;
                let n_parents = self.usize_()?;
                let mut parents = Vec::with_capacity(n_parents.min(1024));
                for _ in 0..n_parents {
                    let at = self.offset();
                    parents.push(match self.u8_()? {
                        0 => JiParentRef::Child { attr: self.usize_()? },
                        1 => JiParentRef::Parent { attr: self.usize_()? },
                        x => return Err(corrupt_at(at, format!("ji parent tag {x}"))),
                    });
                }
                let parent_cards = self.usizes()?;
                let p_true = self.f64s()?;
                join_indicators.push(JoinIndicatorModel {
                    fk_attr,
                    target,
                    parents,
                    parent_cards,
                    p_true,
                });
            }
            tables.push(TableModel { table, n_rows, attrs, join_indicators });
        }
        let n_schema = self.usize_()?;
        let mut schema_tables = Vec::with_capacity(n_schema.min(1024));
        for _ in 0..n_schema {
            let name = self.string()?;
            let n_rows = self.u64_()?;
            let n_attrs = self.usize_()?;
            let mut attrs = Vec::with_capacity(n_attrs.min(1024));
            let mut domains = Vec::with_capacity(n_attrs.min(1024));
            for _ in 0..n_attrs {
                attrs.push(self.string()?);
                let card = self.usize_()?;
                let mut values = Vec::with_capacity(card.min(1024));
                for _ in 0..card {
                    values.push(self.value()?);
                }
                domains.push(Domain::new(values));
            }
            let n_fks = self.usize_()?;
            let mut fks = Vec::with_capacity(n_fks.min(1024));
            for _ in 0..n_fks {
                fks.push(FkInfo { attr: self.string()?, target: self.usize_()? });
            }
            schema_tables.push(TableInfo { name, n_rows, attrs, domains, fks });
        }
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after the model",
                self.buf.len() - self.pos
            )));
        }
        Ok((Prm { tables }, SchemaInfo { tables: schema_tables }))
    }

    fn u8_(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64_(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    fn usize_(&mut self) -> Result<usize> {
        let at = self.offset();
        let v = self.u64_()?;
        if v > (1 << 40) {
            return Err(corrupt_at(at, format!("implausible length {v}")));
        }
        Ok(v as usize)
    }

    fn f64_(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.usize_()?;
        let at = self.offset();
        let buf = self.take(len)?;
        String::from_utf8(buf.to_vec())
            .map_err(|_| corrupt_at(at, "non-utf8 string".to_owned()))
    }

    fn usizes(&mut self) -> Result<Vec<usize>> {
        let len = self.usize_()?;
        (0..len).map(|_| self.usize_()).collect()
    }

    fn f64s(&mut self) -> Result<Vec<f64>> {
        let len = self.usize_()?;
        (0..len).map(|_| self.f64_()).collect()
    }

    fn value(&mut self) -> Result<Value> {
        let at = self.offset();
        match self.u8_()? {
            0 => Ok(Value::Int(self.u64_()? as i64)),
            1 => Ok(Value::Str(self.string()?)),
            x => Err(corrupt_at(at, format!("value tag {x}"))),
        }
    }

    fn cpd(&mut self) -> Result<Cpd> {
        let at = self.offset();
        match self.u8_()? {
            0 => {
                let child_card = self.usize_()?;
                let parent_cards = self.usizes()?;
                let n = self.usize_()?;
                let probs: Vec<f64> =
                    (0..n).map(|_| self.f64_()).collect::<Result<_>>()?;
                let expected = parent_cards.iter().product::<usize>().max(1) * child_card;
                if n != expected {
                    return Err(corrupt_at(at, "table cpd size mismatch".to_owned()));
                }
                Ok(TableCpd::new(child_card, parent_cards, probs).into())
            }
            1 => {
                let child_card = self.usize_()?;
                let parent_cards = self.usizes()?;
                let n_nodes = self.usize_()?;
                let mut nodes = Vec::with_capacity(n_nodes.min(1024));
                for _ in 0..n_nodes {
                    let at = self.offset();
                    nodes.push(match self.u8_()? {
                        0 => TreeNode::Leaf(self.f64s()?),
                        1 => TreeNode::SplitPerValue {
                            slot: self.usize_()?,
                            branches: self.usizes()?,
                        },
                        2 => TreeNode::SplitThreshold {
                            slot: self.usize_()?,
                            cut: self.u64_()? as u32,
                            lo: self.usize_()?,
                            hi: self.usize_()?,
                        },
                        x => return Err(corrupt_at(at, format!("tree node tag {x}"))),
                    });
                }
                Ok(TreeCpd::new(child_card, parent_cards, nodes).into())
            }
            x => Err(corrupt_at(at, format!("cpd tag {x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorClass;
    use crate::estimator::{PrmEstimator, SelectivityEstimator};
    use crate::learn::{learn_prm, PrmLearnConfig};
    use crate::CpdKind;
    use workloads::tb::tb_database_sized;

    fn round_trip(kind: CpdKind) {
        let db = tb_database_sized(100, 150, 1_200, 8);
        let prm =
            learn_prm(&db, &PrmLearnConfig { cpd_kind: kind, ..Default::default() })
                .unwrap();
        let schema = SchemaInfo::from_db(&db).unwrap();
        let mut buf = Vec::new();
        save_model(&prm, &schema, &mut buf).unwrap();
        let (prm2, schema2) = load_model(buf.as_slice()).unwrap();
        assert_eq!(prm.size_bytes(), prm2.size_bytes());

        // Same estimates for a join query before and after the round trip.
        let mut b = reldb::Query::builder();
        let c = b.var("contact");
        let p = b.var("patient");
        b.join(c, "patient", p).eq(c, "contype", 2).eq(p, "age", 1);
        let q = b.build();
        let before = PrmEstimator::from_prm(prm, &db, "a").unwrap().estimate(&q).unwrap();
        let after = {
            // Reconstruct an estimator purely from the loaded artifacts
            // (no database access).
            let est = crate::estimator::PrmEstimator::from_parts(prm2, schema2, "loaded");
            est.estimate(&q).unwrap()
        };
        assert!((before - after).abs() < 1e-12, "{before} vs {after}");
    }

    #[test]
    fn tree_models_round_trip() {
        round_trip(CpdKind::Tree);
    }

    #[test]
    fn table_models_round_trip() {
        round_trip(CpdKind::Table);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_model(&b"NOTAMODL"[..]).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Corrupt);
    }

    #[test]
    fn old_format_version_is_rejected() {
        let err = load_model(&b"PRMSEL01somepayloadbytesgohere.."[..]).unwrap_err();
        match err {
            Error::Corrupt { offset: Some(0), .. } => {}
            other => panic!("expected corrupt-at-0, got {other:?}"),
        }
    }

    fn serialized_model() -> Vec<u8> {
        let db = tb_database_sized(50, 60, 300, 8);
        let prm = learn_prm(&db, &PrmLearnConfig::default()).unwrap();
        let schema = SchemaInfo::from_db(&db).unwrap();
        let mut buf = Vec::new();
        save_model(&prm, &schema, &mut buf).unwrap();
        buf
    }

    #[test]
    fn truncated_file_is_rejected_with_offset() {
        let buf = serialized_model();
        for keep in [0, 7, 12, 23, 24, buf.len() / 2, buf.len() - 1] {
            let mut cut = buf.clone();
            cut.truncate(keep);
            let err = load_model(cut.as_slice()).unwrap_err();
            assert_eq!(err.class(), ErrorClass::Corrupt, "keep={keep}: {err}");
            match err {
                Error::Corrupt { offset: Some(at), .. } => {
                    assert!(at <= buf.len() as u64, "keep={keep}: offset {at}")
                }
                other => panic!("keep={keep}: expected offset, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_region_of_a_corrupted_model_is_caught() {
        let buf = serialized_model();
        // Flip a bit in each structural region: magic, declared length,
        // checksum, early payload (model structure), mid payload (CPD
        // parameters), and late payload (schema snapshot).
        let regions = [
            ("magic", 3usize),
            ("payload length", 9),
            ("checksum", 17),
            ("early payload", 30),
            ("mid payload", buf.len() / 2),
            ("late payload", buf.len() - 2),
        ];
        for (what, at) in regions {
            let mut bad = buf.clone();
            bad[at] ^= 0x40;
            match load_model(bad.as_slice()) {
                Err(e) => assert_eq!(
                    e.class(),
                    ErrorClass::Corrupt,
                    "{what} (byte {at}): wrong class: {e}"
                ),
                Ok(_) => panic!("{what} (byte {at}): corrupted file loaded cleanly"),
            }
        }
    }

    #[test]
    fn string_values_survive() {
        let buf = serialized_model();
        let (_, schema2) = load_model(buf.as_slice()).unwrap();
        // usborn's string domain reloads in order.
        let t = schema2.tables.iter().find(|t| t.name == "patient").unwrap();
        let idx = t.attrs.iter().position(|a| a == "usborn").unwrap();
        assert_eq!(t.domains[idx].values().len(), 2);
        assert_eq!(t.domains[idx].value(0), &Value::from("no"));
    }

    #[test]
    fn load_failpoint_injects_internal_error() {
        failpoint::arm("persist.load", failpoint::Action::Err);
        let r = load_model(serialized_model().as_slice());
        failpoint::disarm("persist.load");
        assert_eq!(r.unwrap_err().class(), ErrorClass::Internal);
    }

    fn sample_keys() -> Vec<crate::plan::PlanKey> {
        vec![
            crate::plan::PlanKey {
                vars: vec!["tb".into(), "patient".into()],
                joins: vec![(0, "patient".into(), 1)],
                preds: vec![(1, "usborn".into()), (0, "site".into())],
            },
            crate::plan::PlanKey {
                vars: vec!["patient".into()],
                joins: vec![],
                preds: vec![],
            },
        ]
    }

    #[test]
    fn manifest_round_trips() {
        let keys = sample_keys();
        let mut buf = Vec::new();
        save_manifest(&keys, &mut buf).unwrap();
        let keys2 = load_manifest(buf.as_slice()).unwrap();
        assert_eq!(keys, keys2);
        // Empty manifests are valid too.
        let mut buf = Vec::new();
        save_manifest(&[], &mut buf).unwrap();
        assert!(load_manifest(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn corrupted_manifest_is_rejected_not_panicked() {
        let mut buf = Vec::new();
        save_manifest(&sample_keys(), &mut buf).unwrap();
        // A model file is not a manifest (different magic).
        let err = load_manifest(serialized_model().as_slice()).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Corrupt);
        // Truncations and bit flips in every region come back Corrupt.
        for keep in [0, 7, 23, buf.len() - 1] {
            let mut cut = buf.clone();
            cut.truncate(keep);
            let err = load_manifest(cut.as_slice()).unwrap_err();
            assert_eq!(err.class(), ErrorClass::Corrupt, "keep={keep}: {err}");
        }
        for at in [3usize, 9, 17, 25, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[at] ^= 0x40;
            match load_manifest(bad.as_slice()) {
                Err(e) => {
                    assert_eq!(
                        e.class(),
                        ErrorClass::Corrupt,
                        "byte {at}: wrong class: {e}"
                    )
                }
                Ok(_) => panic!("byte {at}: corrupted manifest loaded cleanly"),
            }
        }
        // Trailing garbage after a valid payload is caught by the header
        // length, and trailing bytes inside the declared payload by the
        // reader's exhaustion check (exercised via a doctored length).
        let mut padded = buf.clone();
        padded.extend_from_slice(&[0u8; 4]);
        assert!(load_manifest(padded.as_slice()).is_ok(), "extra file bytes are ignored");
    }
}
