//! Model persistence: a small versioned binary format for PRMs.
//!
//! The offline phase runs in a batch job; the online phase runs inside a
//! query optimizer. This module is the handoff: [`save_model`] serializes
//! a learned [`Prm`] together with the [`SchemaInfo`] snapshot it needs at
//! estimation time, [`load_model`] restores both. The format is
//! hand-rolled (little-endian, length-prefixed) so the core crate carries
//! no serialization dependency, and it is versioned + magic-tagged so
//! stale or foreign files fail loudly instead of misestimating quietly.

use std::io::{Read, Write};

use bayesnet::cpd::{Cpd, TableCpd, TreeCpd, TreeNode};
use reldb::{Domain, Error, Result, Value};

use crate::prm::{
    AttrModel, JiParentRef, JoinIndicatorModel, ParentRef, Prm, TableModel,
};
use crate::schema::{FkInfo, SchemaInfo, TableInfo};

const MAGIC: &[u8; 8] = b"PRMSEL01";

/// Serializes a model + schema snapshot.
pub fn save_model(prm: &Prm, schema: &SchemaInfo, mut out: impl Write) -> Result<()> {
    let mut w = Writer { out: &mut out };
    w.bytes(MAGIC)?;
    w.usize_(prm.tables.len())?;
    for t in &prm.tables {
        w.string(&t.table)?;
        w.u64_(t.n_rows)?;
        w.usize_(t.attrs.len())?;
        for a in &t.attrs {
            w.string(&a.name)?;
            w.usize_(a.card)?;
            w.usize_(a.parents.len())?;
            for p in &a.parents {
                match *p {
                    ParentRef::Local { attr } => {
                        w.u8_(0)?;
                        w.usize_(attr)?;
                    }
                    ParentRef::Foreign { fk, attr } => {
                        w.u8_(1)?;
                        w.usize_(fk)?;
                        w.usize_(attr)?;
                    }
                }
            }
            w.cpd(&a.cpd)?;
        }
        w.usize_(t.join_indicators.len())?;
        for ji in &t.join_indicators {
            w.string(&ji.fk_attr)?;
            w.string(&ji.target)?;
            w.usize_(ji.parents.len())?;
            for p in &ji.parents {
                match *p {
                    JiParentRef::Child { attr } => {
                        w.u8_(0)?;
                        w.usize_(attr)?;
                    }
                    JiParentRef::Parent { attr } => {
                        w.u8_(1)?;
                        w.usize_(attr)?;
                    }
                }
            }
            w.usizes(&ji.parent_cards)?;
            w.f64s(&ji.p_true)?;
        }
    }
    // Schema snapshot.
    w.usize_(schema.tables.len())?;
    for t in &schema.tables {
        w.string(&t.name)?;
        w.u64_(t.n_rows)?;
        w.usize_(t.attrs.len())?;
        for (a, d) in t.attrs.iter().zip(&t.domains) {
            w.string(a)?;
            w.usize_(d.card())?;
            for v in d.values() {
                w.value(v)?;
            }
        }
        w.usize_(t.fks.len())?;
        for fk in &t.fks {
            w.string(&fk.attr)?;
            w.usize_(fk.target)?;
        }
    }
    Ok(())
}

/// Deserializes a model + schema snapshot saved by [`save_model`].
pub fn load_model(mut input: impl Read) -> Result<(Prm, SchemaInfo)> {
    let mut r = Reader { input: &mut input };
    let magic = r.fixed::<8>()?;
    if &magic != MAGIC {
        return Err(Error::Corrupt("not a prmsel model file (bad magic/version)".into()));
    }
    let n_tables = r.usize_()?;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let table = r.string()?;
        let n_rows = r.u64_()?;
        let n_attrs = r.usize_()?;
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let name = r.string()?;
            let card = r.usize_()?;
            let n_parents = r.usize_()?;
            let mut parents = Vec::with_capacity(n_parents);
            for _ in 0..n_parents {
                parents.push(match r.u8_()? {
                    0 => ParentRef::Local { attr: r.usize_()? },
                    1 => ParentRef::Foreign { fk: r.usize_()?, attr: r.usize_()? },
                    x => return Err(corrupt(format!("parent tag {x}"))),
                });
            }
            let cpd = r.cpd()?;
            attrs.push(AttrModel { name, card, parents, cpd });
        }
        let n_jis = r.usize_()?;
        let mut join_indicators = Vec::with_capacity(n_jis);
        for _ in 0..n_jis {
            let fk_attr = r.string()?;
            let target = r.string()?;
            let n_parents = r.usize_()?;
            let mut parents = Vec::with_capacity(n_parents);
            for _ in 0..n_parents {
                parents.push(match r.u8_()? {
                    0 => JiParentRef::Child { attr: r.usize_()? },
                    1 => JiParentRef::Parent { attr: r.usize_()? },
                    x => return Err(corrupt(format!("ji parent tag {x}"))),
                });
            }
            let parent_cards = r.usizes()?;
            let p_true = r.f64s()?;
            join_indicators.push(JoinIndicatorModel {
                fk_attr,
                target,
                parents,
                parent_cards,
                p_true,
            });
        }
        tables.push(TableModel { table, n_rows, attrs, join_indicators });
    }
    let n_schema = r.usize_()?;
    let mut schema_tables = Vec::with_capacity(n_schema);
    for _ in 0..n_schema {
        let name = r.string()?;
        let n_rows = r.u64_()?;
        let n_attrs = r.usize_()?;
        let mut attrs = Vec::with_capacity(n_attrs);
        let mut domains = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            attrs.push(r.string()?);
            let card = r.usize_()?;
            let mut values = Vec::with_capacity(card);
            for _ in 0..card {
                values.push(r.value()?);
            }
            domains.push(Domain::new(values));
        }
        let n_fks = r.usize_()?;
        let mut fks = Vec::with_capacity(n_fks);
        for _ in 0..n_fks {
            fks.push(FkInfo { attr: r.string()?, target: r.usize_()? });
        }
        schema_tables.push(TableInfo { name, n_rows, attrs, domains, fks });
    }
    Ok((Prm { tables }, SchemaInfo { tables: schema_tables }))
}

fn corrupt(what: String) -> Error {
    Error::Corrupt(format!("corrupt model file: {what}"))
}

// ---------------------------------------------------------------------
// Primitive writer/reader.
// ---------------------------------------------------------------------

struct Writer<'a, W: Write> {
    out: &'a mut W,
}

impl<W: Write> Writer<'_, W> {
    fn bytes(&mut self, b: &[u8]) -> Result<()> {
        self.out.write_all(b).map_err(|e| Error::Io(format!("write error: {e}")))
    }

    fn u8_(&mut self, v: u8) -> Result<()> {
        self.bytes(&[v])
    }

    fn u64_(&mut self, v: u64) -> Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    fn usize_(&mut self, v: usize) -> Result<()> {
        self.u64_(v as u64)
    }

    fn f64_(&mut self, v: f64) -> Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    fn string(&mut self, s: &str) -> Result<()> {
        self.usize_(s.len())?;
        self.bytes(s.as_bytes())
    }

    fn usizes(&mut self, v: &[usize]) -> Result<()> {
        self.usize_(v.len())?;
        for &x in v {
            self.usize_(x)?;
        }
        Ok(())
    }

    fn f64s(&mut self, v: &[f64]) -> Result<()> {
        self.usize_(v.len())?;
        for &x in v {
            self.f64_(x)?;
        }
        Ok(())
    }

    fn value(&mut self, v: &Value) -> Result<()> {
        match v {
            Value::Int(i) => {
                self.u8_(0)?;
                self.u64_(*i as u64)
            }
            Value::Str(s) => {
                self.u8_(1)?;
                self.string(s)
            }
        }
    }

    fn cpd(&mut self, cpd: &Cpd) -> Result<()> {
        match cpd {
            Cpd::Table(t) => {
                self.u8_(0)?;
                self.usize_(t.child_card())?;
                self.usizes(t.parent_cards())?;
                // Reconstruct the flat probability table row by row.
                let rows: usize = t.parent_cards().iter().product::<usize>().max(1);
                self.usize_(rows * t.child_card())?;
                let mut config = vec![0u32; t.parent_cards().len()];
                for row in 0..rows {
                    let mut rem = row;
                    for k in (0..config.len()).rev() {
                        config[k] = (rem % t.parent_cards()[k]) as u32;
                        rem /= t.parent_cards()[k];
                    }
                    for &p in t.dist(&config) {
                        self.f64_(p)?;
                    }
                }
                Ok(())
            }
            Cpd::Tree(t) => {
                self.u8_(1)?;
                self.usize_(t.child_card())?;
                self.usizes(t.parent_cards())?;
                self.usize_(t.nodes().len())?;
                for node in t.nodes() {
                    match node {
                        TreeNode::Leaf(d) => {
                            self.u8_(0)?;
                            self.f64s(d)?;
                        }
                        TreeNode::SplitPerValue { slot, branches } => {
                            self.u8_(1)?;
                            self.usize_(*slot)?;
                            self.usizes(branches)?;
                        }
                        TreeNode::SplitThreshold { slot, cut, lo, hi } => {
                            self.u8_(2)?;
                            self.usize_(*slot)?;
                            self.u64_(*cut as u64)?;
                            self.usize_(*lo)?;
                            self.usize_(*hi)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

struct Reader<'a, R: Read> {
    input: &'a mut R,
}

impl<R: Read> Reader<'_, R> {
    fn fixed<const N: usize>(&mut self) -> Result<[u8; N]> {
        let mut buf = [0u8; N];
        self.input
            .read_exact(&mut buf)
            .map_err(|e| Error::Io(format!("read error: {e}")))?;
        Ok(buf)
    }

    fn u8_(&mut self) -> Result<u8> {
        Ok(self.fixed::<1>()?[0])
    }

    fn u64_(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.fixed::<8>()?))
    }

    fn usize_(&mut self) -> Result<usize> {
        let v = self.u64_()?;
        if v > (1 << 40) {
            return Err(corrupt(format!("implausible length {v}")));
        }
        Ok(v as usize)
    }

    fn f64_(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.fixed::<8>()?))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.usize_()?;
        let mut buf = vec![0u8; len];
        self.input
            .read_exact(&mut buf)
            .map_err(|e| Error::Io(format!("read error: {e}")))?;
        String::from_utf8(buf).map_err(|_| corrupt("non-utf8 string".into()))
    }

    fn usizes(&mut self) -> Result<Vec<usize>> {
        let len = self.usize_()?;
        (0..len).map(|_| self.usize_()).collect()
    }

    fn f64s(&mut self) -> Result<Vec<f64>> {
        let len = self.usize_()?;
        (0..len).map(|_| self.f64_()).collect()
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8_()? {
            0 => Ok(Value::Int(self.u64_()? as i64)),
            1 => Ok(Value::Str(self.string()?)),
            x => Err(corrupt(format!("value tag {x}"))),
        }
    }

    fn cpd(&mut self) -> Result<Cpd> {
        match self.u8_()? {
            0 => {
                let child_card = self.usize_()?;
                let parent_cards = self.usizes()?;
                let n = self.usize_()?;
                let probs: Vec<f64> =
                    (0..n).map(|_| self.f64_()).collect::<Result<_>>()?;
                let expected = parent_cards.iter().product::<usize>().max(1) * child_card;
                if n != expected {
                    return Err(corrupt("table cpd size mismatch".into()));
                }
                Ok(TableCpd::new(child_card, parent_cards, probs).into())
            }
            1 => {
                let child_card = self.usize_()?;
                let parent_cards = self.usizes()?;
                let n_nodes = self.usize_()?;
                let mut nodes = Vec::with_capacity(n_nodes);
                for _ in 0..n_nodes {
                    nodes.push(match self.u8_()? {
                        0 => TreeNode::Leaf(self.f64s()?),
                        1 => TreeNode::SplitPerValue {
                            slot: self.usize_()?,
                            branches: self.usizes()?,
                        },
                        2 => TreeNode::SplitThreshold {
                            slot: self.usize_()?,
                            cut: self.u64_()? as u32,
                            lo: self.usize_()?,
                            hi: self.usize_()?,
                        },
                        x => return Err(corrupt(format!("tree node tag {x}"))),
                    });
                }
                Ok(TreeCpd::new(child_card, parent_cards, nodes).into())
            }
            x => Err(corrupt(format!("cpd tag {x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{PrmEstimator, SelectivityEstimator};
    use crate::learn::{learn_prm, PrmLearnConfig};
    use crate::CpdKind;
    use workloads::tb::tb_database_sized;

    fn round_trip(kind: CpdKind) {
        let db = tb_database_sized(100, 150, 1_200, 8);
        let prm =
            learn_prm(&db, &PrmLearnConfig { cpd_kind: kind, ..Default::default() })
                .unwrap();
        let schema = SchemaInfo::from_db(&db).unwrap();
        let mut buf = Vec::new();
        save_model(&prm, &schema, &mut buf).unwrap();
        let (prm2, schema2) = load_model(buf.as_slice()).unwrap();
        assert_eq!(prm.size_bytes(), prm2.size_bytes());

        // Same estimates for a join query before and after the round trip.
        let mut b = reldb::Query::builder();
        let c = b.var("contact");
        let p = b.var("patient");
        b.join(c, "patient", p).eq(c, "contype", 2).eq(p, "age", 1);
        let q = b.build();
        let before = PrmEstimator::from_prm(prm, &db, "a").unwrap().estimate(&q).unwrap();
        let after = {
            // Reconstruct an estimator purely from the loaded artifacts
            // (no database access).
            let est = crate::estimator::PrmEstimator::from_parts(prm2, schema2, "loaded");
            est.estimate(&q).unwrap()
        };
        assert!((before - after).abs() < 1e-12, "{before} vs {after}");
    }

    #[test]
    fn tree_models_round_trip() {
        round_trip(CpdKind::Tree);
    }

    #[test]
    fn table_models_round_trip() {
        round_trip(CpdKind::Table);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_model(&b"NOTAMODL"[..]);
        assert!(err.is_err());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let db = tb_database_sized(50, 60, 300, 8);
        let prm = learn_prm(&db, &PrmLearnConfig::default()).unwrap();
        let schema = SchemaInfo::from_db(&db).unwrap();
        let mut buf = Vec::new();
        save_model(&prm, &schema, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_model(buf.as_slice()).is_err());
    }

    #[test]
    fn string_values_survive() {
        let db = tb_database_sized(50, 60, 300, 8);
        let prm = learn_prm(&db, &PrmLearnConfig::default()).unwrap();
        let schema = SchemaInfo::from_db(&db).unwrap();
        let mut buf = Vec::new();
        save_model(&prm, &schema, &mut buf).unwrap();
        let (_, schema2) = load_model(buf.as_slice()).unwrap();
        // usborn's string domain reloads in order.
        let t = schema2.tables.iter().find(|t| t.name == "patient").unwrap();
        let idx = t.attrs.iter().position(|a| a == "usborn").unwrap();
        assert_eq!(t.domains[idx].values().len(), 2);
        assert_eq!(t.domains[idx].value(0), &Value::from("no"));
    }
}
