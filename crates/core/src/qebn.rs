//! Upward closure and the query-evaluation Bayesian network.
//!
//! Given a select-keyjoin query, this module implements Definitions 3.3
//! and 3.5 of the paper:
//!
//! 1. **Upward closure** — if any attribute needed by the query (or by the
//!    closure itself) has a foreign parent through a foreign key `F` not
//!    joined by the query, a fresh tuple variable over the target table is
//!    introduced together with the join `F`, whose indicator is then fixed
//!    to `true`. Closure terminates because the PRM is stratified, and it
//!    does not change the query's result size (Proposition 3.4).
//! 2. **Query-evaluation BN** — one node per needed `(tuple var, attr)`
//!    pair and one per join indicator, with CPDs copied from the PRM and
//!    parents resolved through the join structure. Only queried attributes
//!    and their ancestors are materialized (the optimization noted at the
//!    end of §3.3); everything else is barren and cannot change `P(E)`.
//!
//! The selectivity estimate is then
//! `size(Q) ≈ Π_{v ∈ Q⁺} |T_v| · P(selects ∧ all join indicators true)`,
//! computed by exact variable elimination.

use std::collections::HashMap;

use bayesnet::{probability_of_evidence, BayesNet, Evidence};
use reldb::{Error, Pred, Query, Result};

use crate::prm::{JiParentRef, ParentRef, Prm};
use crate::schema::SchemaInfo;

/// A node of the unrolled network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeKey {
    /// `(tuple var, value-attr index)`.
    Attr(usize, usize),
    /// `(tuple var on the FK side, fk index)`.
    Ji(usize, usize),
}

/// Where a QEBN node's CPD lives in the PRM — the coordinate the
/// per-model factor cache ([`crate::plan::FactorCache`]) is indexed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSource {
    /// The attribute CPD `tables[table].attrs[attr]`.
    Attr {
        /// Table index into the PRM.
        table: usize,
        /// Value-attribute index within the table model.
        attr: usize,
    },
    /// The join-indicator CPD `tables[table].join_indicators[fk]`.
    Ji {
        /// Table index (FK side) into the PRM.
        table: usize,
        /// Foreign-key index within the table model.
        fk: usize,
    },
}

/// The unrolled network plus the evidence encoding the query.
#[derive(Debug)]
pub struct QueryEvalBn {
    /// The network (one node per needed attribute / join indicator).
    pub bn: BayesNet,
    /// Evidence: selection masks plus `J = true` for every join in the
    /// upward closure.
    pub evidence: Evidence,
    /// Table index (into the PRM's tables) of each tuple variable in the
    /// closure `Q⁺`, including variables introduced by the closure.
    pub closure_tables: Vec<usize>,
    /// Where each node's CPD lives in the PRM, by node id.
    pub node_sources: Vec<NodeSource>,
    /// Node id per query predicate, aligned with `query.preds` (repeats
    /// when several predicates constrain the same attribute).
    pub pred_nodes: Vec<usize>,
    /// Join-indicator node ids (evidence fixes them to `J = true`),
    /// ascending.
    pub ji_nodes: Vec<usize>,
    /// Per-node CPD factor cache for the sampling path: likelihood
    /// weighting materializes each CPD once per unrolled network instead
    /// of once per sample.
    cpd_cache: bayesnet::CpdFactorCache,
}

impl QueryEvalBn {
    /// Builds the query-evaluation network for `query` against `prm`.
    pub fn build(prm: &Prm, schema: &SchemaInfo, query: &Query) -> Result<QueryEvalBn> {
        Builder::new(prm, schema, query)?.run()
    }

    /// The selectivity estimate `Π |T_v| · P(E)`.
    pub fn estimated_size(&self, prm: &Prm) -> f64 {
        let p = probability_of_evidence(&self.bn, &self.evidence);
        self.scale(prm, p)
    }

    /// Approximate variant: `P(E)` by likelihood weighting instead of
    /// exact inference — the any-time fallback for unrolled networks whose
    /// tree width makes exact inference expensive (paper §2.3 notes the
    /// worst case is NP-hard).
    pub fn estimated_size_approx(&self, prm: &Prm, samples: usize, seed: u64) -> f64 {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // The cached variant draws bit-identical samples (the factor view
        // of a CPD row is the same `f64` slice) while materializing each
        // CPD once per network instead of once per sample.
        let p = bayesnet::likelihood_weighting_cached(
            &self.bn,
            &self.evidence,
            samples,
            &mut rng,
            &self.cpd_cache,
        );
        self.scale(prm, p)
    }

    fn scale(&self, prm: &Prm, p: f64) -> f64 {
        let mut size = p;
        for &t in &self.closure_tables {
            size *= prm.tables[t].n_rows as f64;
        }
        size
    }
}

struct Builder<'a> {
    prm: &'a Prm,
    schema: &'a SchemaInfo,
    query: &'a Query,
    /// Table index per tuple variable (query vars first, closure vars appended).
    var_tables: Vec<usize>,
    /// `(child var, fk index) → parent var` for every join in `Q⁺`.
    join_var: HashMap<(usize, usize), usize>,
    /// Materialized nodes.
    node_ids: HashMap<NodeKey, usize>,
    node_order: Vec<NodeKey>,
    worklist: Vec<NodeKey>,
}

impl<'a> Builder<'a> {
    fn new(prm: &'a Prm, schema: &'a SchemaInfo, query: &'a Query) -> Result<Self> {
        let mut var_tables = Vec::with_capacity(query.vars.len());
        for table in &query.vars {
            var_tables.push(schema.table_index(table)?);
        }
        let mut b = Builder {
            prm,
            schema,
            query,
            var_tables,
            join_var: HashMap::new(),
            node_ids: HashMap::new(),
            node_order: Vec::new(),
            worklist: Vec::new(),
        };
        // Register the query's own joins.
        for join in &query.joins {
            let t = b.var_tables[join.child];
            let fk = b.schema.fk_index(t, &join.fk_attr)?;
            b.join_var.insert((join.child, fk), join.parent);
            b.need(NodeKey::Ji(join.child, fk));
        }
        // Register the selected attributes.
        for pred in &query.preds {
            let t = b.var_tables[pred.var()];
            let a = b.schema.attr_index(t, pred.attr())?;
            b.need(NodeKey::Attr(pred.var(), a));
        }
        Ok(b)
    }

    fn need(&mut self, key: NodeKey) -> usize {
        if let Some(&id) = self.node_ids.get(&key) {
            return id;
        }
        let id = self.node_order.len();
        self.node_ids.insert(key, id);
        self.node_order.push(key);
        self.worklist.push(key);
        id
    }

    /// The tuple variable joined through `(var, fk)`, introducing a closure
    /// variable (and its `J = true` join) if the query has none.
    fn joined_var(&mut self, var: usize, fk: usize) -> usize {
        if let Some(&w) = self.join_var.get(&(var, fk)) {
            return w;
        }
        let t = self.var_tables[var];
        let target = self.schema.fk_target(t, fk);
        let w = self.var_tables.len();
        self.var_tables.push(target);
        self.join_var.insert((var, fk), w);
        self.need(NodeKey::Ji(var, fk));
        w
    }

    fn run(mut self) -> Result<QueryEvalBn> {
        // Expand ancestors until closure.
        let mut parent_lists: HashMap<NodeKey, Vec<usize>> = HashMap::new();
        while let Some(key) = self.worklist.pop() {
            let parents = match key {
                NodeKey::Attr(v, a) => {
                    let t = self.var_tables[v];
                    let model = &self.prm.tables[t].attrs[a];
                    let refs = model.parents.clone();
                    refs.iter()
                        .map(|&p| match p {
                            ParentRef::Local { attr } => {
                                self.need(NodeKey::Attr(v, attr))
                            }
                            ParentRef::Foreign { fk, attr } => {
                                let w = self.joined_var(v, fk);
                                self.need(NodeKey::Attr(w, attr))
                            }
                        })
                        .collect::<Vec<_>>()
                }
                NodeKey::Ji(v, f) => {
                    let t = self.var_tables[v];
                    let model = &self.prm.tables[t].join_indicators[f];
                    let refs = model.parents.clone();
                    let w = self.joined_var(v, f);
                    refs.iter()
                        .map(|&p| match p {
                            JiParentRef::Child { attr } => {
                                self.need(NodeKey::Attr(v, attr))
                            }
                            JiParentRef::Parent { attr } => {
                                self.need(NodeKey::Attr(w, attr))
                            }
                        })
                        .collect::<Vec<_>>()
                }
            };
            parent_lists.insert(key, parents);
        }

        // Assemble the BN.
        let n = self.node_order.len();
        let mut names = Vec::with_capacity(n);
        let mut cards = Vec::with_capacity(n);
        for &key in &self.node_order {
            match key {
                NodeKey::Attr(v, a) => {
                    let t = self.var_tables[v];
                    names.push(format!("v{v}.{}", self.prm.tables[t].attrs[a].name));
                    cards.push(self.prm.tables[t].attrs[a].card);
                }
                NodeKey::Ji(v, f) => {
                    let t = self.var_tables[v];
                    names.push(format!(
                        "v{v}.J_{}",
                        self.prm.tables[t].join_indicators[f].fk_attr
                    ));
                    cards.push(2);
                }
            }
        }
        let mut bn = BayesNet::new(names, cards);
        for &key in &self.node_order {
            let id = self.node_ids[&key];
            let parents = &parent_lists[&key];
            let cpd = match key {
                NodeKey::Attr(v, a) => {
                    let t = self.var_tables[v];
                    self.prm.tables[t].attrs[a].cpd.clone()
                }
                NodeKey::Ji(v, f) => {
                    let t = self.var_tables[v];
                    self.prm.tables[t].join_indicators[f].to_cpd()
                }
            };
            bn.set_family(id, parents, cpd);
        }

        // Evidence: selection masks + all join indicators true.
        let mut evidence = Evidence::new();
        let mut pred_nodes = Vec::with_capacity(self.query.preds.len());
        for pred in &self.query.preds {
            let t = self.var_tables[pred.var()];
            let a = self.schema.attr_index(t, pred.attr())?;
            let id = self.node_ids[&NodeKey::Attr(pred.var(), a)];
            let card = self.prm.tables[t].attrs[a].card;
            let codes = pred_codes(self.schema, t, pred)?;
            evidence.isin(id, &codes, card);
            pred_nodes.push(id);
        }
        for (&(v, f), _) in self.join_var.iter() {
            if let Some(&id) = self.node_ids.get(&NodeKey::Ji(v, f)) {
                evidence.eq(id, 1, 2);
            }
        }
        let node_sources = self
            .node_order
            .iter()
            .map(|&key| match key {
                NodeKey::Attr(v, a) => {
                    NodeSource::Attr { table: self.var_tables[v], attr: a }
                }
                NodeKey::Ji(v, f) => NodeSource::Ji { table: self.var_tables[v], fk: f },
            })
            .collect();
        // Node ids are indices into `node_order`, so this is ascending.
        let ji_nodes = self
            .node_order
            .iter()
            .enumerate()
            .filter(|(_, key)| matches!(key, NodeKey::Ji(..)))
            .map(|(id, _)| id)
            .collect();
        let cpd_cache = bayesnet::CpdFactorCache::new(bn.len());
        Ok(QueryEvalBn {
            bn,
            evidence,
            closure_tables: self.var_tables,
            node_sources,
            pred_nodes,
            ji_nodes,
            cpd_cache,
        })
    }
}

/// Resolves a predicate to the allowed dictionary codes of `table.attr`'s
/// domain (an empty vector means unsatisfiable against this database).
/// Shared by the one-shot builder above and the plan replay path, which
/// must decode predicate values identically.
pub(crate) fn pred_codes(
    schema: &SchemaInfo,
    table: usize,
    pred: &Pred,
) -> Result<Vec<u32>> {
    let domain = schema.domain(table, pred.attr())?;
    Ok(match pred {
        Pred::Eq { value, .. } => domain.code(value).into_iter().collect(),
        Pred::In { values, .. } => {
            let mut codes: Vec<u32> =
                values.iter().filter_map(|v| domain.code(v)).collect();
            codes.sort_unstable();
            codes.dedup();
            codes
        }
        Pred::Range { lo, hi, .. } => domain.codes_in_range(*lo, *hi),
    })
}

impl SchemaInfo {
    pub(crate) fn table_index(&self, name: &str) -> Result<usize> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| Error::UnknownTable(name.to_owned()))
    }

    pub(crate) fn attr_index(&self, table: usize, attr: &str) -> Result<usize> {
        self.tables[table].attrs.iter().position(|a| a == attr).ok_or_else(|| {
            Error::UnknownAttr {
                table: self.tables[table].name.clone(),
                attr: attr.to_owned(),
            }
        })
    }

    fn fk_index(&self, table: usize, fk_attr: &str) -> Result<usize> {
        self.tables[table].fks.iter().position(|f| f.attr == fk_attr).ok_or_else(|| {
            Error::WrongAttrKind {
                table: self.tables[table].name.clone(),
                attr: fk_attr.to_owned(),
                expected: "foreign-key",
            }
        })
    }

    fn fk_target(&self, table: usize, fk: usize) -> usize {
        self.tables[table].fks[fk].target
    }

    pub(crate) fn domain(&self, table: usize, attr: &str) -> Result<&reldb::Domain> {
        let a = self.attr_index(table, attr)?;
        Ok(&self.tables[table].domains[a])
    }

    /// Validates `query` against this schema snapshot *before* any
    /// planning work: unknown tables/attributes, out-of-range tuple
    /// variables, and non-FK join edges are all typed
    /// [`crate::Error::Schema`] failures. Predicate *constants* are not
    /// checked — a constant outside the learned domain is a valid query
    /// that estimates ~0 selectivity (the paper's frequency semantics).
    pub fn validate_query(&self, query: &Query) -> crate::error::Result<()> {
        // Runs on every estimate ahead of the warm plan lookup, so it
        // resolves table indices inline (a name `position` scan per use)
        // instead of collecting them — the happy path allocates nothing.
        for var in &query.vars {
            self.table_index(var)?;
        }
        for join in &query.joins {
            for v in [join.child, join.parent] {
                if v >= query.vars.len() {
                    return Err(Error::UnknownVar(v).into());
                }
            }
            let child_t = self.table_index(&query.vars[join.child])?;
            let parent_t = self.table_index(&query.vars[join.parent])?;
            let fk = self.fk_index(child_t, &join.fk_attr)?;
            if self.fk_target(child_t, fk) != parent_t {
                return Err(Error::BadJoin(format!(
                    "`{}.{}` does not reference `{}`",
                    query.vars[join.child], join.fk_attr, query.vars[join.parent]
                ))
                .into());
            }
        }
        for pred in &query.preds {
            if pred.var() >= query.vars.len() {
                return Err(Error::UnknownVar(pred.var()).into());
            }
            let t = self.table_index(&query.vars[pred.var()])?;
            self.attr_index(t, pred.attr())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prm::{AttrModel, JoinIndicatorModel, TableModel};
    use crate::schema::{FkInfo, TableInfo};
    use bayesnet::TableCpd;
    use reldb::Domain;

    /// Hand-built PRM: parent(x ∈ {0,1}, 50 rows), child(y ∈ {0,1},
    /// 100 rows) with y ← parent.x (noisy copy, 0.9) and a join indicator
    /// depending on parent.x: p_true(x=0)=0.01, p_true(x=1)=0.03.
    fn hand_prm() -> (Prm, SchemaInfo) {
        let prm = Prm {
            tables: vec![
                TableModel {
                    table: "parent".into(),
                    n_rows: 50,
                    attrs: vec![AttrModel {
                        name: "x".into(),
                        card: 2,
                        parents: vec![],
                        cpd: TableCpd::new(2, vec![], vec![0.5, 0.5]).into(),
                    }],
                    join_indicators: vec![],
                },
                TableModel {
                    table: "child".into(),
                    n_rows: 100,
                    attrs: vec![AttrModel {
                        name: "y".into(),
                        card: 2,
                        parents: vec![ParentRef::Foreign { fk: 0, attr: 0 }],
                        cpd: TableCpd::new(2, vec![2], vec![0.9, 0.1, 0.1, 0.9]).into(),
                    }],
                    join_indicators: vec![JoinIndicatorModel {
                        fk_attr: "parent".into(),
                        target: "parent".into(),
                        parents: vec![JiParentRef::Parent { attr: 0 }],
                        parent_cards: vec![2],
                        p_true: vec![0.01, 0.03],
                    }],
                },
            ],
        };
        let int_domain = Domain::new(vec![0i64.into(), 1i64.into()]);
        let schema = SchemaInfo {
            tables: vec![
                TableInfo {
                    name: "parent".into(),
                    n_rows: 50,
                    attrs: vec!["x".into()],
                    domains: vec![int_domain.clone()],
                    fks: vec![],
                },
                TableInfo {
                    name: "child".into(),
                    n_rows: 100,
                    attrs: vec!["y".into()],
                    domains: vec![int_domain],
                    fks: vec![FkInfo { attr: "parent".into(), target: 0 }],
                },
            ],
        };
        (prm, schema)
    }

    #[test]
    fn explicit_join_query_multiplies_chain() {
        let (prm, schema) = hand_prm();
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p).eq(p, "x", 1).eq(c, "y", 1);
        let qebn = QueryEvalBn::build(&prm, &schema, &b.build()).unwrap();
        // |child|·|parent| · P(x=1)·P(J=true|x=1)·P(y=1|x=1)
        //   = 5000 · 0.5·0.03·0.9 = 67.5.
        let est = qebn.estimated_size(&prm);
        assert!((est - 67.5).abs() < 1e-9, "est={est}");
        assert_eq!(qebn.closure_tables.len(), 2);
    }

    #[test]
    fn upward_closure_introduces_needed_parent_var() {
        // Single-table query on child.y: the foreign parent forces closure
        // through the FK. size = 5000 · Σ_x P(x)P(J|x)P(y=1|x) = 70.
        let (prm, schema) = hand_prm();
        let mut b = Query::builder();
        let c = b.var("child");
        b.eq(c, "y", 1);
        let qebn = QueryEvalBn::build(&prm, &schema, &b.build()).unwrap();
        assert_eq!(qebn.closure_tables.len(), 2, "closure should add the parent var");
        let est = qebn.estimated_size(&prm);
        assert!((est - 70.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn closure_is_consistent_with_explicit_join() {
        // Proposition 3.4: closing a query does not change its size. The
        // single-table estimate and the unconstrained-join estimate agree.
        let (prm, schema) = hand_prm();
        let mut b1 = Query::builder();
        let c1 = b1.var("child");
        b1.eq(c1, "y", 0);
        let est1 =
            QueryEvalBn::build(&prm, &schema, &b1.build()).unwrap().estimated_size(&prm);
        let mut b2 = Query::builder();
        let c2 = b2.var("child");
        let p2 = b2.var("parent");
        b2.join(c2, "parent", p2).eq(c2, "y", 0);
        let est2 =
            QueryEvalBn::build(&prm, &schema, &b2.build()).unwrap().estimated_size(&prm);
        assert!((est1 - est2).abs() < 1e-9, "{est1} vs {est2}");
    }

    #[test]
    fn join_only_query_reflects_indicator_mass() {
        // No selects: size = 5000 · Σ_x P(x)·P(J=true|x) = 5000·0.02 = 100
        // (matches |child| as referential integrity demands, because the
        // hand-set probabilities were chosen consistently).
        let (prm, schema) = hand_prm();
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p);
        let est =
            QueryEvalBn::build(&prm, &schema, &b.build()).unwrap().estimated_size(&prm);
        assert!((est - 100.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn parent_side_query_needs_no_closure() {
        let (prm, schema) = hand_prm();
        let mut b = Query::builder();
        let p = b.var("parent");
        b.eq(p, "x", 0);
        let qebn = QueryEvalBn::build(&prm, &schema, &b.build()).unwrap();
        assert_eq!(qebn.closure_tables.len(), 1);
        let est = qebn.estimated_size(&prm);
        assert!((est - 25.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn range_predicate_is_exact_set_evidence() {
        let (prm, schema) = hand_prm();
        let mut b = Query::builder();
        let p = b.var("parent");
        b.range(p, "x", Some(0), Some(1));
        let est =
            QueryEvalBn::build(&prm, &schema, &b.build()).unwrap().estimated_size(&prm);
        assert!((est - 50.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn closure_chains_transitively_through_two_hops() {
        // contact.z ← patient.y ← strain.x: a single-table query on
        // contact.z must pull in BOTH ancestor variables (Def. 3.3 closes
        // upward recursively), and the estimate must equal the fully
        // joined formulation.
        let prm = Prm {
            tables: vec![
                TableModel {
                    table: "strain".into(),
                    n_rows: 10,
                    attrs: vec![AttrModel {
                        name: "x".into(),
                        card: 2,
                        parents: vec![],
                        cpd: TableCpd::new(2, vec![], vec![0.3, 0.7]).into(),
                    }],
                    join_indicators: vec![],
                },
                TableModel {
                    table: "patient".into(),
                    n_rows: 20,
                    attrs: vec![AttrModel {
                        name: "y".into(),
                        card: 2,
                        parents: vec![ParentRef::Foreign { fk: 0, attr: 0 }],
                        cpd: TableCpd::new(2, vec![2], vec![0.8, 0.2, 0.1, 0.9]).into(),
                    }],
                    join_indicators: vec![JoinIndicatorModel {
                        fk_attr: "strain".into(),
                        target: "strain".into(),
                        parents: vec![],
                        parent_cards: vec![],
                        p_true: vec![0.1],
                    }],
                },
                TableModel {
                    table: "contact".into(),
                    n_rows: 100,
                    attrs: vec![AttrModel {
                        name: "z".into(),
                        card: 2,
                        parents: vec![ParentRef::Foreign { fk: 0, attr: 0 }],
                        cpd: TableCpd::new(2, vec![2], vec![0.6, 0.4, 0.2, 0.8]).into(),
                    }],
                    join_indicators: vec![JoinIndicatorModel {
                        fk_attr: "patient".into(),
                        target: "patient".into(),
                        parents: vec![],
                        parent_cards: vec![],
                        p_true: vec![0.05],
                    }],
                },
            ],
        };
        let dom = Domain::new(vec![0i64.into(), 1i64.into()]);
        let schema = SchemaInfo {
            tables: vec![
                TableInfo {
                    name: "strain".into(),
                    n_rows: 10,
                    attrs: vec!["x".into()],
                    domains: vec![dom.clone()],
                    fks: vec![],
                },
                TableInfo {
                    name: "patient".into(),
                    n_rows: 20,
                    attrs: vec!["y".into()],
                    domains: vec![dom.clone()],
                    fks: vec![FkInfo { attr: "strain".into(), target: 0 }],
                },
                TableInfo {
                    name: "contact".into(),
                    n_rows: 100,
                    attrs: vec!["z".into()],
                    domains: vec![dom],
                    fks: vec![FkInfo { attr: "patient".into(), target: 1 }],
                },
            ],
        };
        let mut b = Query::builder();
        let c = b.var("contact");
        b.eq(c, "z", 1);
        let qebn = QueryEvalBn::build(&prm, &schema, &b.build()).unwrap();
        assert_eq!(qebn.closure_tables.len(), 3, "closure must reach strain");
        let single = qebn.estimated_size(&prm);
        // Hand computation: P(z=1) = Σ_x P(x)·P(y marginalized)… the y
        // node is barren here (z depends on y? no — z ← patient.y), so:
        // P(z=1) = Σ_y P(y)·P(z=1|y), P(y=1) = 0.3·0.2 + 0.7·0.9 = 0.69.
        // P(z=1) = 0.31·0.4 + 0.69·0.8 = 0.676.
        // size = 100·20·10 · P(J_p)·P(J_s) · 0.676
        //      = 20000 · 0.05·0.1 · 0.676 = 67.6.
        assert!((single - 67.6).abs() < 1e-9, "est={single}");

        // Explicit full-chain join gives the same number (Prop. 3.4).
        let mut b2 = Query::builder();
        let c2 = b2.var("contact");
        let p2 = b2.var("patient");
        let s2 = b2.var("strain");
        b2.join(c2, "patient", p2).join(p2, "strain", s2).eq(c2, "z", 1);
        let joined =
            QueryEvalBn::build(&prm, &schema, &b2.build()).unwrap().estimated_size(&prm);
        assert!((single - joined).abs() < 1e-9, "{single} vs {joined}");
    }

    #[test]
    fn unknown_value_estimates_zero() {
        let (prm, schema) = hand_prm();
        let mut b = Query::builder();
        let p = b.var("parent");
        b.eq(p, "x", 99);
        let est =
            QueryEvalBn::build(&prm, &schema, &b.build()).unwrap().estimated_size(&prm);
        assert_eq!(est, 0.0);
    }
}
