//! Compile-once, estimate-many: the online query-plan layer.
//!
//! The paper's operating model is one offline-learned PRM answering a
//! heavy stream of online queries (§2.3, §3.3–3.5). A planner issues the
//! same query *templates* over and over with different constants, so the
//! per-query work should be predicate decoding, factor masking, and an
//! elimination replay — not re-unrolling the QEBN, re-materializing CPDs,
//! and re-deriving an elimination order. This module splits the online
//! path accordingly:
//!
//! * [`FactorCache`] — each table/tree CPD of the model is materialized
//!   into its canonical dense factor **once**, lazily, behind an
//!   `Arc`-shared [`std::sync::OnceLock`] slot, so concurrent
//!   `estimate_batch` workers share the result;
//! * [`QueryPlan`] — for one query template, the evidence-independent
//!   factors (with the fixed `J = true` join evidence already folded in)
//!   plus a fully **precompiled replay program**: the elimination order is
//!   simulated symbolically at compile time, so every product /
//!   fused-product-sum / sum-out step is stored with its strides,
//!   cardinalities, and arena buffer offsets already resolved;
//! * **constant folding** — replay ops whose operands never touch a
//!   predicate mask compute the same bytes for every query of the
//!   template, so compilation executes them once and stores their outputs
//!   as plan constants; the per-query replay runs only the
//!   evidence-dependent suffix of the elimination (for a typical
//!   single-predicate query over a deep ancestor closure that is one or
//!   two kernel calls out of a dozen);
//! * a per-plan **signature memo** — decoded predicate masks key a
//!   bounded LRU of final `P(E)` scalars, so repeating the same constants
//!   skips both the reduce pass and the replay entirely
//!   (`prm.plan.reduce.hit`/`.miss`); budget checks and the
//!   `infer.eliminate` failpoint still run on hits, so error behavior is
//!   signature-independent;
//! * [`PlanCache`] — a bounded LRU of compiled plans hung off
//!   [`crate::PrmEstimator`], keyed by the allocation-free stable template
//!   hash with field-wise verification against the live query.
//!
//! ## The zero-allocation warm path
//!
//! A warm estimate (plan resident, constants seen before) touches the heap
//! zero times: predicate masks decode into a per-thread bool arena, the
//! memo lookup hashes those masks in place and reads the stored scalar,
//! and on a memo miss the replay program executes against a per-thread
//! `f64` arena whose buffer offsets were assigned at compile time
//! (monotonically increasing, so one `split_at_mut` per step yields
//! disjoint input/output slices). `crates/core/tests/zero_alloc.rs` pins
//! this with a counting allocator.
//!
//! ## Determinism
//!
//! Plan-cached estimates are **bit-identical** to the uncached
//! [`QueryEvalBn::build`] + `estimated_size` path (see DESIGN.md §6c/§6g):
//! factor entries are copied CPD parameters (no arithmetic, so the
//! construction route cannot change them); evidence reduction zeroes
//! entries without touching scopes, so pre-reducing the fixed join
//! evidence at compile time commutes bitwise with the per-query predicate
//! reduction; the recorded elimination order is the same deterministic
//! function of the (reduction-invariant) scopes the fallback path derives;
//! and the replay program calls the *same* `bayesnet::factor` kernels with
//! the same strides the `Factor` methods would compute, preserving the
//! floating-point operation order exactly. Constant folding only moves
//! *when* an op runs (compile instead of every estimate) — the op
//! sequence, operand bytes, and kernel order are unchanged, so folded
//! outputs are the bytes the replay would have produced. A memoized
//! scalar is the bit-exact product of a previous run of that same
//! program over the same masks. The proptest suite in
//! `crates/core/tests/plan_proptests.rs` asserts the equality with
//! `f64::to_bits`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use bayesnet::factor::{
    product_into, product_masked_into, product_sum_out_into, product_sum_out_masked_into,
    strides_in, sum_out_into, sum_out_masked_into, DENSE,
};
use bayesnet::{elimination_order, Factor, InferAbort};
use reldb::{Join, Pred, Query};

use crate::error::Result;
use crate::prm::Prm;
use crate::qebn::{NodeSource, QueryEvalBn};
use crate::schema::SchemaInfo;

/// Lazily materialized canonical CPD factors, one slot per CPD of the
/// model (value attributes and join indicators). Tree CPDs pay their
/// per-parent-configuration tree walk once per model instead of once per
/// query; table CPDs pay one copy.
#[derive(Debug)]
pub struct FactorCache {
    /// `[table][attr]` slots.
    attrs: Vec<Vec<OnceLock<Arc<Factor>>>>,
    /// `[table][fk]` slots.
    jis: Vec<Vec<OnceLock<Arc<Factor>>>>,
}

impl FactorCache {
    /// Empty cache shaped like `prm` (nothing is materialized yet).
    pub fn new(prm: &Prm) -> Self {
        FactorCache {
            attrs: prm
                .tables
                .iter()
                .map(|t| t.attrs.iter().map(|_| OnceLock::new()).collect())
                .collect(),
            jis: prm
                .tables
                .iter()
                .map(|t| t.join_indicators.iter().map(|_| OnceLock::new()).collect())
                .collect(),
        }
    }

    /// The canonical slot-local factor (see [`bayesnet::Cpd`]'s
    /// `to_local_factor`) for `source`, materialized on first use and
    /// shared afterwards. `prm` must be the model this cache was shaped
    /// from.
    pub fn local(&self, prm: &Prm, source: NodeSource) -> Arc<Factor> {
        let slot = match source {
            NodeSource::Attr { table, attr } => &self.attrs[table][attr],
            NodeSource::Ji { table, fk } => &self.jis[table][fk],
        };
        slot.get_or_init(|| {
            obs::counter!("prm.factor.materialize").inc();
            Arc::new(match source {
                NodeSource::Attr { table, attr } => {
                    prm.tables[table].attrs[attr].cpd.to_local_factor()
                }
                NodeSource::Ji { table, fk } => {
                    prm.tables[table].join_indicators[fk].to_cpd().to_local_factor()
                }
            })
        })
        .clone()
    }

    /// How many CPD factors have been materialized so far.
    pub fn materialized(&self) -> usize {
        self.attrs
            .iter()
            .chain(self.jis.iter())
            .flatten()
            .filter(|slot| slot.get().is_some())
            .count()
    }
}

/// The *template* of a query: its tuple variables, join skeleton, and
/// predicate slots, with the predicate constants abstracted away. Two
/// queries with the same key unroll to the same QEBN structure and share
/// one compiled plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub(crate) vars: Vec<String>,
    /// `(child var, fk attr, parent var)` per keyjoin.
    pub(crate) joins: Vec<(usize, String, usize)>,
    /// `(var, attr)` per predicate, in predicate order.
    pub(crate) preds: Vec<(usize, String)>,
}

impl PlanKey {
    /// The template key of `query`.
    pub fn of(query: &Query) -> PlanKey {
        PlanKey {
            vars: query.vars.clone(),
            joins: query
                .joins
                .iter()
                .map(|j| (j.child, j.fk_attr.clone(), j.parent))
                .collect(),
            preds: query.preds.iter().map(|p| (p.var(), p.attr().to_owned())).collect(),
        }
    }

    /// A stable 64-bit template hash (FNV-1a over the key's fields).
    ///
    /// Unlike `std::hash::Hash`, this value is identical across processes
    /// and runs, so it can label exported metric series (the
    /// `template="<16 hex digits>"` label on per-template quality
    /// histograms) and remain joinable across scrapes and restarts.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_usize(self.vars.len());
        for v in &self.vars {
            h.write_str(v);
        }
        h.write_usize(self.joins.len());
        for (child, fk, parent) in &self.joins {
            h.write_usize(*child);
            h.write_str(fk);
            h.write_usize(*parent);
        }
        h.write_usize(self.preds.len());
        for (var, attr) in &self.preds {
            h.write_usize(*var);
            h.write_str(attr);
        }
        h.finish()
    }

    /// [`PlanKey::stable_hash`] computed straight from `query` without
    /// building the key — the allocation-free form the warm lookup and
    /// telemetry paths use. Guaranteed equal to
    /// `PlanKey::of(query).stable_hash()`.
    pub fn stable_hash_of(query: &Query) -> u64 {
        let mut h = Fnv::new();
        h.write_usize(query.vars.len());
        for v in &query.vars {
            h.write_str(v);
        }
        h.write_usize(query.joins.len());
        for j in &query.joins {
            h.write_usize(j.child);
            h.write_str(&j.fk_attr);
            h.write_usize(j.parent);
        }
        h.write_usize(query.preds.len());
        for p in &query.preds {
            h.write_usize(p.var());
            h.write_str(p.attr());
        }
        h.finish()
    }

    /// A synthetic query carrying this template's structure with no
    /// constants: every predicate becomes an empty `In` (an all-false
    /// mask). Compilation only reads each predicate's `(var, attr)` slot,
    /// so `PlanKey::of(key.to_template_query()) == key` and the resulting
    /// plan is the one every live query of the template shares — this is
    /// what lets [`PlanCache::precompile`] build plans from a persisted
    /// manifest without any query text.
    pub fn to_template_query(&self) -> Query {
        Query {
            vars: self.vars.clone(),
            joins: self
                .joins
                .iter()
                .map(|(child, fk, parent)| Join {
                    child: *child,
                    fk_attr: fk.clone(),
                    parent: *parent,
                })
                .collect(),
            preds: self
                .preds
                .iter()
                .map(|(var, attr)| Pred::In {
                    var: *var,
                    attr: attr.clone(),
                    values: Vec::new(),
                })
                .collect(),
        }
    }

    /// Field-wise template equality against a live query — the
    /// allocation-free counterpart of `self == PlanKey::of(query)`, used
    /// to verify a stable-hash bucket match on the warm path.
    fn matches(&self, query: &Query) -> bool {
        self.vars.len() == query.vars.len()
            && self.vars.iter().zip(&query.vars).all(|(a, b)| a == b)
            && self.joins.len() == query.joins.len()
            && self.joins.iter().zip(&query.joins).all(|((c, fk, p), j)| {
                *c == j.child && fk == &j.fk_attr && *p == j.parent
            })
            && self.preds.len() == query.preds.len()
            && self
                .preds
                .iter()
                .zip(&query.preds)
                .all(|((v, a), p)| *v == p.var() && a == p.attr())
    }
}

/// FNV-1a, 64-bit: tiny, allocation-free, and stable across platforms —
/// exactly what an exported label needs (`std::hash` is explicitly not
/// stable across releases or processes).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    /// Length-prefixed so adjacent strings cannot collide by shifting
    /// bytes across the boundary.
    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------
// Intrusive slab LRU — the allocation-free recency structure behind both
// the plan cache and the per-plan reduced-factor memo.
// ---------------------------------------------------------------------

/// "No slot" sentinel for the intrusive list links.
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct LruSlot<T> {
    hash: u64,
    value: T,
    prev: usize,
    next: usize,
}

/// Bounded LRU over a slab of slots with an intrusive doubly-linked
/// recency list and stable-hash buckets. Lookups and promotions perform
/// no heap allocation (bucket vectors only grow on insert), which is what
/// keeps the warm estimate path allocation-free.
#[derive(Debug)]
struct LruSlab<T> {
    capacity: usize,
    slots: Vec<Option<LruSlot<T>>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    /// `stable hash → slot indices` (collisions resolved by `matches`).
    buckets: HashMap<u64, Vec<usize>>,
}

impl<T> LruSlab<T> {
    fn new(capacity: usize) -> Self {
        LruSlab {
            capacity,
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            buckets: HashMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn find(&self, hash: u64, matches: impl Fn(&T) -> bool) -> Option<usize> {
        self.buckets.get(&hash)?.iter().copied().find(|&i| {
            matches(&self.slots[i].as_ref().expect("bucket points at live slot").value)
        })
    }

    /// Finds a matching entry, promotes it to most-recently-used, and
    /// returns it. Allocation-free.
    fn get(&mut self, hash: u64, matches: impl Fn(&T) -> bool) -> Option<&T> {
        let idx = self.find(hash, matches)?;
        self.promote(idx);
        Some(&self.slots[idx].as_ref().expect("live slot").value)
    }

    /// Peeks without touching recency.
    fn peek(&self, hash: u64, matches: impl Fn(&T) -> bool) -> Option<&T> {
        let idx = self.find(hash, matches)?;
        Some(&self.slots[idx].as_ref().expect("live slot").value)
    }

    /// Inserts a new entry (the caller has established no match exists),
    /// evicting least-recently-used entries to stay within capacity.
    fn insert(&mut self, hash: u64, value: T, on_evict: &mut impl FnMut(&T)) {
        if self.capacity == 0 {
            return;
        }
        while self.len() >= self.capacity {
            self.evict_tail(on_evict);
        }
        let slot = LruSlot { hash, value, prev: NIL, next: NIL };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.push_front(idx);
        self.buckets.entry(hash).or_default().push(idx);
    }

    fn set_capacity(&mut self, capacity: usize, on_evict: &mut impl FnMut(&T)) {
        self.capacity = capacity;
        while self.len() > capacity {
            self.evict_tail(on_evict);
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.buckets.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Live values in recency order, most recently used first.
    fn values_mru(&self) -> Vec<&T> {
        let mut out = Vec::with_capacity(self.len());
        let mut i = self.head;
        while i != NIL {
            let s = self.slots[i].as_ref().expect("list points at live slot");
            out.push(&s.value);
            i = s.next;
        }
        out
    }

    fn evict_tail(&mut self, on_evict: &mut impl FnMut(&T)) {
        let t = self.tail;
        if t == NIL {
            return;
        }
        self.unlink(t);
        let slot = self.slots[t].take().expect("tail is live");
        if let Some(bucket) = self.buckets.get_mut(&slot.hash) {
            if let Some(p) = bucket.iter().position(|&i| i == t) {
                bucket.swap_remove(p);
            }
            if bucket.is_empty() {
                self.buckets.remove(&slot.hash);
            }
        }
        self.free.push(t);
        on_evict(&slot.value);
    }

    fn promote(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slots[idx].as_ref().expect("live slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("live slot").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("live slot").prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            let s = self.slots[idx].as_mut().expect("live slot");
            s.prev = NIL;
            s.next = self.head;
        }
        if self.head != NIL {
            self.slots[self.head].as_mut().expect("live slot").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

// ---------------------------------------------------------------------
// Per-thread scratch arenas.
// ---------------------------------------------------------------------

/// Grow-only per-thread workspace for plan replay: predicate masks
/// (`bools`), reduced-factor and intermediate-factor data (`f64s`), and
/// odometer scratch for the kernels (`scratch`). Buffers only ever grow,
/// so once a thread has replayed a template its warm estimates perform no
/// heap allocation at all.
#[derive(Debug)]
struct Arena {
    f64s: Vec<f64>,
    bools: Vec<bool>,
    scratch: Vec<usize>,
    /// Allowed-code lists for the masked kernels, one `[len, code…]`
    /// region per mask slot at its compile-assigned `codes_off` —
    /// re-encoded from the decoded bool masks on every memo miss.
    codes: Vec<usize>,
}

impl Arena {
    fn ensure(&mut self, bools: usize, f64s: usize, scratch: usize, codes: usize) {
        if self.bools.len() < bools {
            self.bools.resize(bools, false);
        }
        if self.f64s.len() < f64s {
            self.f64s.resize(f64s, 0.0);
        }
        if self.scratch.len() < scratch {
            self.scratch.resize(scratch, 0);
        }
        if self.codes.len() < codes {
            self.codes.resize(codes, 0);
        }
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = const {
        RefCell::new(Arena {
            f64s: Vec::new(),
            bools: Vec::new(),
            scratch: Vec::new(),
            codes: Vec::new(),
        })
    };
}

// ---------------------------------------------------------------------
// The reduced-factor memo.
// ---------------------------------------------------------------------

/// One memoized constant signature: the decoded predicate masks (the key,
/// verified byte-for-byte on hash match) and the final `P(E)` the replay
/// program produced for them. `P(E)` is a pure function of (template,
/// masks), so storing the scalar lets a hit skip the reduce pass *and*
/// the elimination replay; the stored value is bit-exact because it *is*
/// a previous output of the identical program.
#[derive(Debug)]
struct MemoEntry {
    masks: Vec<bool>,
    p: f64,
}

/// Per-plan bounded LRU of [`MemoEntry`] keyed by the FNV hash of the
/// decoded masks. Entries are `Arc`-shared so a hit reads the scalar and
/// releases the lock without copying or allocating.
#[derive(Debug)]
struct ReducedMemo {
    inner: Mutex<LruSlab<Arc<MemoEntry>>>,
}

impl ReducedMemo {
    fn new(capacity: usize) -> Self {
        ReducedMemo { inner: Mutex::new(LruSlab::new(capacity)) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LruSlab<Arc<MemoEntry>>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Default signature-memo capacity (entries per plan) when
/// `PRMSEL_REDUCE_MEMO` is unset. An entry is one mask vector plus one
/// scalar — roughly a hundred bytes — so the default is sized generously
/// enough to hold every constant ever issued against most templates
/// (a template with eq predicates on two attributes of cardinality ~30
/// has ~900 reachable signatures; LRU degrades to 0% hits on cyclic
/// workloads that exceed the capacity, so headroom matters more than
/// the few hundred KB a full memo costs).
pub const DEFAULT_REDUCE_MEMO_CAPACITY: usize = 4096;

/// Sentinel for "no programmatic override".
const MEMO_UNSET: usize = usize::MAX;

static REDUCE_MEMO_OVERRIDE: AtomicUsize = AtomicUsize::new(MEMO_UNSET);

/// Overrides the per-plan reduced-factor memo capacity process-wide for
/// plans compiled *after* the call; `None` reverts to the environment
/// (`PRMSEL_REDUCE_MEMO`, default [`DEFAULT_REDUCE_MEMO_CAPACITY`]).
/// Capacity `0` disables memoization (every estimate re-reduces).
pub fn set_reduce_memo_capacity(capacity: Option<usize>) {
    REDUCE_MEMO_OVERRIDE
        .store(capacity.map_or(MEMO_UNSET, |c| c.min(MEMO_UNSET - 1)), Ordering::Relaxed);
}

fn reduce_memo_capacity() -> usize {
    match REDUCE_MEMO_OVERRIDE.load(Ordering::Relaxed) {
        MEMO_UNSET => {
            static CACHE: OnceLock<Option<usize>> = OnceLock::new();
            CACHE
                .get_or_init(|| {
                    std::env::var("PRMSEL_REDUCE_MEMO")
                        .ok()
                        .and_then(|v| v.trim().parse::<usize>().ok())
                })
                .unwrap_or(DEFAULT_REDUCE_MEMO_CAPACITY)
        }
        v => v,
    }
}

// ---------------------------------------------------------------------
// The compiled plan: replay program + slots.
// ---------------------------------------------------------------------

/// One predicate slot of a compiled plan, aligned with the template's
/// predicate list.
#[derive(Debug, Clone, Copy)]
struct PredSlot {
    /// QEBN node the predicate masks.
    node: usize,
    /// Cardinality of that node.
    card: usize,
    /// PRM table index whose domain decodes the predicate constants.
    table: usize,
    /// Domain index of the predicated attribute within that table.
    attr: usize,
    /// Which mask slot this predicate lands in.
    mask: usize,
    /// First predicate on its node: decodes straight into the slot.
    /// Later predicates decode into the tmp region and intersect.
    first: bool,
}

/// One per-node predicate mask region in the bool arena, plus the
/// matching allowed-code region in the codes arena (`[len, code…]`,
/// capacity `card + 1`) the masked kernels walk.
#[derive(Debug, Clone, Copy)]
struct MaskSlot {
    node: usize,
    card: usize,
    off: usize,
    codes_off: usize,
}

/// Where a replay operand's data lives at estimate time.
///
/// Predicate-touched base factors are read **in place**: the masked
/// kernels only ever visit allowed indices, where the reduced data equals
/// the base data (reduction merely zeroes disallowed runs), so no reduced
/// copy is ever materialized.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// `factors[i]`, read directly.
    Base(usize),
    /// An intermediate factor produced earlier in the replay.
    Work { off: usize, len: usize },
    /// An evidence-independent intermediate folded at compile time; data
    /// lives in the plan's `consts` buffer at the same offset the replay
    /// would have written it to.
    Const { off: usize, len: usize },
}

/// One kernel invocation of the replay program. All strides, cards, and
/// arena offsets are precomputed at compile time; output offsets are
/// strictly increasing so `split_at_mut` yields disjoint operand/output
/// slices.
#[derive(Debug)]
enum OpKind {
    Product {
        a: Src,
        b: Src,
        cards: Vec<usize>,
        stride_a: Vec<usize>,
        stride_b: Vec<usize>,
        off: usize,
        len: usize,
    },
    ProductSumOut {
        a: Src,
        b: Src,
        cards: Vec<usize>,
        stride_a: Vec<usize>,
        stride_b: Vec<usize>,
        card_v: usize,
        sav: usize,
        sbv: usize,
        off: usize,
        len: usize,
    },
    SumOut {
        src: Src,
        outer: usize,
        card: usize,
        inner: usize,
        off: usize,
        len: usize,
    },
    /// Masked product over evidence-touched operands: iterates only the
    /// allowed index runs of every masked result axis. `masks[k]` is a
    /// codes-arena offset or [`DENSE`].
    ProductMasked {
        a: Src,
        b: Src,
        cards: Vec<usize>,
        stride_a: Vec<usize>,
        stride_b: Vec<usize>,
        masks: Vec<usize>,
        off: usize,
        len: usize,
    },
    /// Masked fused product-sum-out; `v_mask` restricts the summed
    /// variable's codes (codes-arena offset or [`DENSE`]).
    ProductSumOutMasked {
        a: Src,
        b: Src,
        cards: Vec<usize>,
        stride_a: Vec<usize>,
        stride_b: Vec<usize>,
        masks: Vec<usize>,
        card_v: usize,
        sav: usize,
        sbv: usize,
        v_mask: usize,
        off: usize,
        len: usize,
    },
    /// Masked single-operand sum-out; `stride` maps each result axis into
    /// the source, `sv`/`card_v`/`v_mask` describe the summed axis.
    SumOutMasked {
        src: Src,
        cards: Vec<usize>,
        stride: Vec<usize>,
        masks: Vec<usize>,
        card_v: usize,
        sv: usize,
        v_mask: usize,
        off: usize,
        len: usize,
    },
}

impl OpKind {
    /// Arena region this op writes.
    fn out(&self) -> (usize, usize) {
        match *self {
            OpKind::Product { off, len, .. }
            | OpKind::ProductSumOut { off, len, .. }
            | OpKind::SumOut { off, len, .. }
            | OpKind::ProductMasked { off, len, .. }
            | OpKind::ProductSumOutMasked { off, len, .. }
            | OpKind::SumOutMasked { off, len, .. } => (off, len),
        }
    }

    /// The op's operand sources (compile-time rewriting only).
    fn inputs_mut(&mut self) -> Vec<&mut Src> {
        match self {
            OpKind::Product { a, b, .. }
            | OpKind::ProductSumOut { a, b, .. }
            | OpKind::ProductMasked { a, b, .. }
            | OpKind::ProductSumOutMasked { a, b, .. } => vec![a, b],
            OpKind::SumOut { src, .. } | OpKind::SumOutMasked { src, .. } => vec![src],
        }
    }

    /// True when every operand is evidence-independent, i.e. the op
    /// computes the same bytes for every query of the template. Masked
    /// ops read per-query allowed-code lists, so they are never const
    /// regardless of their operand sources.
    fn is_const(&self) -> bool {
        let constant = |s: &Src| matches!(s, Src::Base(_) | Src::Const { .. });
        match self {
            OpKind::Product { a, b, .. } | OpKind::ProductSumOut { a, b, .. } => {
                constant(a) && constant(b)
            }
            OpKind::SumOut { src, .. } => constant(src),
            OpKind::ProductMasked { .. }
            | OpKind::ProductSumOutMasked { .. }
            | OpKind::SumOutMasked { .. } => false,
        }
    }
}

/// One elimination step: the ops that fold the factors touching `var`,
/// plus everything the runtime checks and telemetry need (projected
/// width for the budget guard, result scope for the flight recorder).
#[derive(Debug)]
struct Step {
    var: usize,
    n_factors: usize,
    /// Projected cells of the full product (union scope incl. `var`),
    /// saturating — checked against the width budget before any kernel
    /// runs, exactly like the interpreted path.
    cells: u64,
    /// Scope of the step's result (for `obs::flight::elim_step`).
    result_vars: Vec<usize>,
    /// Cells of the step's result.
    width: u64,
    ops: Vec<OpKind>,
}

/// A compiled query template: everything about estimation that does not
/// depend on the predicate constants, plus the replay program that
/// executes one concrete query against per-thread arenas.
#[derive(Debug)]
pub struct QueryPlan {
    /// Evidence-independent factors in node order: cached canonical
    /// factors relabeled to the QEBN's ids, with the fixed `J = true`
    /// join evidence pre-reduced (zeroing commutes bitwise with the
    /// per-query predicate reduction).
    factors: Vec<Factor>,
    /// Per-predicate decode instructions.
    pred_slots: Vec<PredSlot>,
    /// Per-node mask regions in the bool arena.
    mask_slots: Vec<MaskSlot>,
    /// Start of the tmp mask region (== total mask bytes, the memo key
    /// length).
    tmp_off: usize,
    /// Precompiled elimination replay. Steps keep their budget metadata
    /// even when constant folding emptied their op list, so width and
    /// deadline checks fire for every eliminated variable exactly as the
    /// interpreted path's would.
    steps: Vec<Step>,
    /// Outputs of constant-folded ops, indexed by the arena offsets the
    /// replay would have used (`Src::Const` regions; the rest is unused
    /// zero padding). `Arc`-shared so plans whose folded prefix computes
    /// the same bytes (see [`FoldCache`]) hold one buffer.
    consts: Arc<Vec<f64>>,
    /// Scalar factors left after the last step, in residual order; their
    /// product (left fold from 1.0, like `Iterator::product`) is `P(E)`.
    leftovers: Vec<Src>,
    /// `|T_v|` per closure tuple variable, in closure order; replayed as
    /// the same sequential multiply as the uncached scale step.
    row_factors: Vec<f64>,
    /// Arena sizes this plan needs.
    bools_len: usize,
    f64s_len: usize,
    scratch_len: usize,
    codes_len: usize,
    /// Reduced-factor memo (capacity snapshot at compile time; `0` when
    /// the template has no predicates).
    memo_capacity: usize,
    memo: ReducedMemo,
}

impl QueryPlan {
    /// Compiles the plan for `query`'s template: unrolls the QEBN once,
    /// instantiates its factors from the cache, folds in the join
    /// evidence, records the elimination order, and lowers it into the
    /// replay program by simulating the elimination symbolically over
    /// factor scopes.
    pub fn compile(
        prm: &Prm,
        schema: &SchemaInfo,
        cache: &FactorCache,
        query: &Query,
    ) -> Result<QueryPlan> {
        QueryPlan::compile_with(prm, schema, cache, query, None)
    }

    /// [`QueryPlan::compile`] with an optional [`FoldCache`]: when given,
    /// the folded-constant buffer is interned content-keyed, so plans of
    /// one model whose evidence-independent prefix computes the same
    /// bytes share a single allocation.
    pub fn compile_with(
        prm: &Prm,
        schema: &SchemaInfo,
        cache: &FactorCache,
        query: &Query,
        folds: Option<&FoldCache>,
    ) -> Result<QueryPlan> {
        failpoint::fail_point!("plan.compile").map_err(crate::error::Error::from)?;
        let qebn = QueryEvalBn::build(prm, schema, query)?;
        let n = qebn.bn.len();
        let mut factors = Vec::with_capacity(n);
        for v in 0..n {
            let local = cache.local(prm, qebn.node_sources[v]);
            let mut ids = qebn.bn.parents(v).to_vec();
            ids.push(v);
            let mut f = local.relabeled(&ids);
            for sv in f.vars().to_vec() {
                if qebn.ji_nodes.binary_search(&sv).is_ok() {
                    f = f.reduce(sv, &[false, true]);
                }
            }
            factors.push(f);
        }
        let scopes: Vec<Vec<usize>> = factors.iter().map(|f| f.vars().to_vec()).collect();
        // Every materialized node is evidence or an ancestor of evidence
        // (the builder only unrolls queried attributes and their
        // ancestors), so the eliminated set is all of them — exactly the
        // relevance prune of the uncached path.
        let elim: Vec<usize> = (0..n).collect();
        let order = elimination_order(&scopes, &elim, |v| qebn.bn.card(v));

        // Predicate decode layout: one mask slot per distinct node, a tmp
        // region (for intersecting repeat predicates) after them; each
        // slot also owns a `[len, code…]` region in the codes arena for
        // the masked kernels.
        let mut mask_slots: Vec<MaskSlot> = Vec::new();
        let mut pred_slots = Vec::with_capacity(query.preds.len());
        let mut bool_off = 0usize;
        let mut codes_len = 0usize;
        for (pred, &node) in query.preds.iter().zip(&qebn.pred_nodes) {
            let table = qebn.closure_tables[pred.var()];
            let attr = schema.attr_index(table, pred.attr())?;
            let card = qebn.bn.card(node);
            let (mask, first) = match mask_slots.iter().position(|m| m.node == node) {
                Some(i) => (i, false),
                None => {
                    mask_slots.push(MaskSlot {
                        node,
                        card,
                        off: bool_off,
                        codes_off: codes_len,
                    });
                    bool_off += card;
                    codes_len += card + 1;
                    (mask_slots.len() - 1, true)
                }
            };
            pred_slots.push(PredSlot { node, card, table, attr, mask, first });
        }
        let tmp_off = bool_off;
        let bools_len = tmp_off + pred_slots.iter().map(|s| s.card).max().unwrap_or(0);

        // Lower the recorded order into the replay program by simulating
        // `try_eliminate_in_order` over scopes: same partition, same
        // left-fold of products with the final one fused into the
        // marginalization, same residual order — so the runtime performs
        // the identical arithmetic with zero per-query bookkeeping.
        //
        // Each simulated slot tracks which of its scope variables are
        // *pinned* by a predicate mask. An op with any pinned operand
        // variable lowers to a masked kernel that walks only the allowed
        // codes of those axes, reading the *base* factor data directly:
        // at every allowed index the reduced data equals the base data,
        // and every skipped index would have contributed exactly +0.0, so
        // no reduced copy is ever materialized (DESIGN.md §6h). Summing a
        // pinned variable out un-pins it — the masked op wrote true
        // (reduced-equivalent) dense data, so downstream ops are ordinary
        // dense ops again.
        struct Sim {
            vars: Vec<usize>,
            cards: Vec<usize>,
            src: Src,
            /// `(scope var, mask slot)` per still-masked variable, sorted.
            pinned: Vec<(usize, usize)>,
        }
        fn merge_pinned(
            a: &[(usize, usize)],
            b: &[(usize, usize)],
        ) -> Vec<(usize, usize)> {
            let mut out = a.to_vec();
            for &p in b {
                if let Err(at) = out.binary_search(&p) {
                    out.insert(at, p);
                }
            }
            out
        }
        let mask_of = |pinned: &[(usize, usize)], var: usize| -> usize {
            pinned
                .iter()
                .find(|&&(v, _)| v == var)
                .map_or(DENSE, |&(_, m)| mask_slots[m].codes_off)
        };
        let masks_for =
            |pinned: &[(usize, usize)], result_vars: &[usize]| -> Vec<usize> {
                result_vars.iter().map(|&v| mask_of(pinned, v)).collect()
            };
        let mut f64_off = 0usize;
        let mut slots: Vec<Sim> = factors
            .iter()
            .enumerate()
            .map(|(i, f)| Sim {
                vars: f.vars().to_vec(),
                cards: f.cards().to_vec(),
                src: Src::Base(i),
                pinned: f
                    .vars()
                    .iter()
                    .filter_map(|&sv| {
                        mask_slots.iter().position(|m| m.node == sv).map(|m| (sv, m))
                    })
                    .collect(),
            })
            .collect();
        let mut steps: Vec<Step> = Vec::new();
        let mut scratch_len = 0usize;
        for &var in &order {
            let (touching, rest): (Vec<Sim>, Vec<Sim>) =
                slots.into_iter().partition(|s| s.vars.contains(&var));
            slots = rest;
            if touching.is_empty() {
                continue;
            }
            let cells = projected_cells_of(&touching, |s| (&s.vars, &s.cards));
            let n_factors = touching.len();
            let mut ops = Vec::new();
            let mut iter = touching.into_iter();
            let mut acc = iter.next().expect("at least one factor");
            let result = if n_factors == 1 {
                let pos = acc.vars.iter().position(|&v| v == var).expect("var in scope");
                let card = acc.cards[pos];
                let mut vars = acc.vars;
                let mut cards = acc.cards;
                vars.remove(pos);
                let len: usize = {
                    let mut c = cards.clone();
                    c.remove(pos);
                    c.iter().product::<usize>().max(1)
                };
                if acc.pinned.is_empty() {
                    let outer: usize = cards[..pos].iter().product::<usize>().max(1);
                    let inner: usize = cards[pos + 1..].iter().product::<usize>().max(1);
                    cards.remove(pos);
                    ops.push(OpKind::SumOut {
                        src: acc.src,
                        outer,
                        card,
                        inner,
                        off: f64_off,
                        len,
                    });
                } else {
                    let mut stride = {
                        let full: Vec<usize> = {
                            let mut s = vec![0usize; cards.len()];
                            let mut acc_s = 1usize;
                            for i in (0..cards.len()).rev() {
                                s[i] = acc_s;
                                acc_s *= cards[i];
                            }
                            s
                        };
                        full
                    };
                    let sv = stride.remove(pos);
                    let v_mask = mask_of(&acc.pinned, var);
                    cards.remove(pos);
                    let masks = masks_for(&acc.pinned, &vars);
                    scratch_len = scratch_len.max(2 * cards.len());
                    ops.push(OpKind::SumOutMasked {
                        src: acc.src,
                        cards: cards.clone(),
                        stride,
                        masks,
                        card_v: card,
                        sv,
                        v_mask,
                        off: f64_off,
                        len,
                    });
                }
                let src = Src::Work { off: f64_off, len };
                f64_off += len;
                let pinned: Vec<(usize, usize)> =
                    acc.pinned.into_iter().filter(|&(v, _)| v != var).collect();
                Sim { vars, cards, src, pinned }
            } else {
                for _ in 0..n_factors - 2 {
                    let b = iter.next().expect("n - 2 more factors");
                    let (uvars, ucards) =
                        union_scope_parts(&acc.vars, &acc.cards, &b.vars, &b.cards);
                    let stride_a = strides_in(&acc.vars, &acc.cards, &uvars);
                    let stride_b = strides_in(&b.vars, &b.cards, &uvars);
                    let len: usize = ucards.iter().product::<usize>().max(1);
                    let pinned = merge_pinned(&acc.pinned, &b.pinned);
                    if pinned.is_empty() {
                        scratch_len = scratch_len.max(uvars.len());
                        ops.push(OpKind::Product {
                            a: acc.src,
                            b: b.src,
                            cards: ucards.clone(),
                            stride_a,
                            stride_b,
                            off: f64_off,
                            len,
                        });
                    } else {
                        let masks = masks_for(&pinned, &uvars);
                        scratch_len = scratch_len.max(2 * uvars.len());
                        ops.push(OpKind::ProductMasked {
                            a: acc.src,
                            b: b.src,
                            cards: ucards.clone(),
                            stride_a,
                            stride_b,
                            masks,
                            off: f64_off,
                            len,
                        });
                    }
                    acc = Sim {
                        vars: uvars,
                        cards: ucards,
                        src: Src::Work { off: f64_off, len },
                        pinned,
                    };
                    f64_off += len;
                }
                let b = iter.next().expect("last factor");
                let (uvars, ucards) =
                    union_scope_parts(&acc.vars, &acc.cards, &b.vars, &b.cards);
                let pos = uvars.iter().position(|&v| v == var).expect("var in union");
                let stride_a = strides_in(&acc.vars, &acc.cards, &uvars);
                let stride_b = strides_in(&b.vars, &b.cards, &uvars);
                let card_v = ucards[pos];
                let (sav, sbv) = (stride_a[pos], stride_b[pos]);
                let mut vars = uvars;
                let mut cards = ucards;
                let mut rstride_a = stride_a;
                let mut rstride_b = stride_b;
                vars.remove(pos);
                cards.remove(pos);
                rstride_a.remove(pos);
                rstride_b.remove(pos);
                let len: usize = cards.iter().product::<usize>().max(1);
                let pinned = merge_pinned(&acc.pinned, &b.pinned);
                if pinned.is_empty() {
                    scratch_len = scratch_len.max(cards.len());
                    ops.push(OpKind::ProductSumOut {
                        a: acc.src,
                        b: b.src,
                        cards: cards.clone(),
                        stride_a: rstride_a,
                        stride_b: rstride_b,
                        card_v,
                        sav,
                        sbv,
                        off: f64_off,
                        len,
                    });
                } else {
                    let v_mask = mask_of(&pinned, var);
                    let masks = masks_for(&pinned, &vars);
                    scratch_len = scratch_len.max(2 * cards.len());
                    ops.push(OpKind::ProductSumOutMasked {
                        a: acc.src,
                        b: b.src,
                        cards: cards.clone(),
                        stride_a: rstride_a,
                        stride_b: rstride_b,
                        masks,
                        card_v,
                        sav,
                        sbv,
                        v_mask,
                        off: f64_off,
                        len,
                    });
                }
                let src = Src::Work { off: f64_off, len };
                f64_off += len;
                let pinned: Vec<(usize, usize)> =
                    pinned.into_iter().filter(|&(v, _)| v != var).collect();
                Sim { vars, cards, src, pinned }
            };
            steps.push(Step {
                var,
                n_factors,
                cells,
                result_vars: result.vars.clone(),
                width: result.cards.iter().product::<usize>().max(1) as u64,
                ops,
            });
            slots.push(result);
        }
        let mut leftovers: Vec<Src> = slots
            .iter()
            .map(|s| {
                debug_assert!(s.vars.is_empty(), "variable left uneliminated");
                s.src
            })
            .collect();

        // Constant folding: ops whose operands are all evidence-
        // independent (base factors or earlier folded outputs) produce
        // the same bytes for every query of this template — execute them
        // once now and replay their outputs as constants. Steps whose
        // projected width exceeds the current budget are left dynamic so
        // the width guard at estimate time keeps refusing them instead of
        // compilation materializing what the budget exists to prevent.
        let fold_budget = crate::guard::estimate_budget().max_cells;
        let mut consts = vec![0.0f64; f64_off];
        let mut fold_scratch = vec![0usize; scratch_len];
        let mut folded: std::collections::HashSet<usize> =
            std::collections::HashSet::new();
        for step in &mut steps {
            let foldable = fold_budget.is_none_or(|max| step.cells <= max);
            let mut dynamic_ops = Vec::with_capacity(step.ops.len());
            for mut op in std::mem::take(&mut step.ops) {
                for src in op.inputs_mut() {
                    if let Src::Work { off, len } = *src {
                        if folded.contains(&off) {
                            *src = Src::Const { off, len };
                        }
                    }
                }
                if foldable && op.is_const() {
                    run_const_op(&factors, &op, &mut consts, &mut fold_scratch);
                    folded.insert(op.out().0);
                    obs::counter!("prm.plan.ops.folded").inc();
                } else {
                    obs::counter!("prm.plan.ops.dynamic").inc();
                    dynamic_ops.push(op);
                }
            }
            step.ops = dynamic_ops;
        }
        for src in &mut leftovers {
            if let Src::Work { off, len } = *src {
                if folded.contains(&off) {
                    *src = Src::Const { off, len };
                }
            }
        }

        let pred_touched = !mask_slots.is_empty();
        let row_factors =
            qebn.closure_tables.iter().map(|&t| prm.tables[t].n_rows as f64).collect();
        let memo_capacity = if pred_touched { reduce_memo_capacity() } else { 0 };
        let consts = match folds {
            Some(fc) => fc.intern(consts),
            None => Arc::new(consts),
        };
        Ok(QueryPlan {
            factors,
            pred_slots,
            mask_slots,
            tmp_off,
            steps,
            consts,
            leftovers,
            row_factors,
            bools_len,
            f64s_len: f64_off,
            scratch_len,
            codes_len,
            memo_capacity,
            memo: ReducedMemo::new(memo_capacity),
        })
    }

    /// Executes the plan for one concrete query of its template: decode
    /// predicates into arena masks, fetch (or compute and memoize) the
    /// reduced factor data, replay the precompiled elimination program,
    /// scale by the table sizes. Warm replays (memo hit) allocate nothing.
    pub fn estimate(&self, schema: &SchemaInfo, query: &Query) -> Result<f64> {
        debug_assert_eq!(query.preds.len(), self.pred_slots.len(), "template mismatch");
        ARENA.with(|cell| {
            let mut arena = cell.borrow_mut();
            self.estimate_in(schema, query, &mut arena)
        })
    }

    fn estimate_in(
        &self,
        schema: &SchemaInfo,
        query: &Query,
        arena: &mut Arena,
    ) -> Result<f64> {
        arena.ensure(self.bools_len, self.f64s_len, self.scratch_len, self.codes_len);

        // --- decode: predicate constants → per-node masks -------------
        let decode = obs::flight::phase("decode");
        for (slot, pred) in self.pred_slots.iter().zip(&query.preds) {
            let ms = &self.mask_slots[slot.mask];
            let domain = &schema.tables[slot.table].domains[slot.attr];
            let (mask_region, tmp_region) = arena.bools.split_at_mut(self.tmp_off);
            let own = if slot.first {
                let m = &mut mask_region[ms.off..ms.off + ms.card];
                pred.fill_mask(domain, m);
                &*m
            } else {
                // A repeat predicate on the same node intersects — the
                // same conjunction `Evidence::isin` applied.
                let tmp = &mut tmp_region[..slot.card];
                pred.fill_mask(domain, tmp);
                for (dst, &t) in
                    mask_region[ms.off..ms.off + ms.card].iter_mut().zip(&*tmp)
                {
                    *dst = *dst && t;
                }
                &*tmp
            };
            if obs::flight::active() {
                let allowed = own.iter().filter(|&&b| b).count();
                obs::flight::pred_mask(slot.node, allowed, slot.card);
            }
        }
        drop(decode);

        // --- reduce: signature-memo lookup, else allowed-code encode ---
        // No factor data is copied or zeroed: a miss only re-encodes each
        // decoded bool mask into its ascending allowed-code list, which
        // the masked replay kernels walk directly over the *base* factor
        // data (O(Σ card) total, allocation-free).
        let reduce = obs::flight::phase("reduce");
        let mut memo_p: Option<f64> = None;
        let mut mask_hash = 0u64;
        if !self.mask_slots.is_empty() {
            let all_masks = &arena.bools[..self.tmp_off];
            let mut h = Fnv::new();
            for &m in all_masks {
                h.write(&[m as u8]);
            }
            mask_hash = h.finish();
            if self.memo_capacity > 0 {
                let mut memo = self.memo.lock();
                if let Some(e) = memo.get(mask_hash, |e| e.masks.as_slice() == all_masks)
                {
                    memo_p = Some(e.p);
                }
            }
            if memo_p.is_some() {
                obs::counter!("prm.plan.reduce.hit").inc();
            } else {
                obs::counter!("prm.plan.reduce.miss").inc();
                for ms in &self.mask_slots {
                    let mask = &arena.bools[ms.off..ms.off + ms.card];
                    let region =
                        &mut arena.codes[ms.codes_off..ms.codes_off + ms.card + 1];
                    let mut n = 0usize;
                    for (c, &ok) in mask.iter().enumerate() {
                        if ok {
                            n += 1;
                            region[n] = c;
                        }
                    }
                    region[0] = n;
                }
            }
            refresh_reduce_hit_ratio();
        }
        drop(reduce);

        // --- eliminate: replay the precompiled program ----------------
        let eliminate = obs::flight::phase("eliminate");
        // Same failpoint, budget checks, counters, and flight records as
        // the interpreted `try_eliminate_in_order` — the program only
        // precomputes what that function derived per call. Budget checks
        // cover every step (even constant-folded or memo-skipped ones) so
        // a budget tightened after compilation still refuses the same
        // queries with the same error the interpreted path raises.
        failpoint::fail_point!("infer.eliminate").map_err(crate::error::Error::from)?;
        let budget = crate::guard::estimate_budget();
        for step in &self.steps {
            if let Some(deadline) = budget.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(InferAbort::Deadline.into());
                }
            }
            if let Some(max) = budget.max_cells {
                if step.cells > max {
                    return Err(InferAbort::Width {
                        var: step.var,
                        cells: step.cells,
                        budget: max,
                    }
                    .into());
                }
            }
            if memo_p.is_some() || step.ops.is_empty() {
                continue;
            }
            let flight_t0 = obs::flight::active().then(obs::flight::now_ns);
            let start = std::time::Instant::now();
            for op in &step.ops {
                self.run_op(op, arena);
            }
            let elapsed = start.elapsed();
            if let Some(t0) = flight_t0 {
                obs::flight::elim_step(
                    step.var,
                    step.n_factors,
                    &step.result_vars,
                    step.width,
                    t0,
                    elapsed.as_nanos().min(u64::MAX as u128) as u64,
                );
            }
            obs::counter!("bn.infer.messages").inc();
            obs::histogram!("bn.factor.kernel.ns").record_duration(elapsed);
        }
        let p = match memo_p {
            Some(p) => p,
            None => {
                let mut p = 1.0f64;
                for src in &self.leftovers {
                    p *= self.scalar_of(src, arena);
                }
                p
            }
        };
        drop(eliminate);
        // Memoize only after the replay succeeded, so budget refusals and
        // failpoint injections are never cached as answers.
        if memo_p.is_none() && !self.mask_slots.is_empty() && self.memo_capacity > 0 {
            let entry =
                Arc::new(MemoEntry { masks: arena.bools[..self.tmp_off].to_vec(), p });
            self.memo.lock().insert(mask_hash, entry, &mut |_| {});
        }
        let mut size = p;
        for &rows in &self.row_factors {
            size *= rows;
        }
        Ok(size)
    }

    /// Executes one replay op against the arena. Output offsets strictly
    /// exceed every operand offset (bump-assigned at compile time), so
    /// `split_at_mut` hands out disjoint slices.
    fn run_op(&self, op: &OpKind, arena: &mut Arena) {
        match op {
            OpKind::Product { a, b, cards, stride_a, stride_b, off, len } => {
                let (lo, hi) = arena.f64s.split_at_mut(*off);
                let lo: &[f64] = lo;
                let out = &mut hi[..*len];
                let av = self.resolve(a, lo);
                let bv = self.resolve(b, lo);
                product_into(av, bv, cards, stride_a, stride_b, &mut arena.scratch, out);
            }
            OpKind::ProductSumOut {
                a,
                b,
                cards,
                stride_a,
                stride_b,
                card_v,
                sav,
                sbv,
                off,
                len,
            } => {
                let (lo, hi) = arena.f64s.split_at_mut(*off);
                let lo: &[f64] = lo;
                let out = &mut hi[..*len];
                let av = self.resolve(a, lo);
                let bv = self.resolve(b, lo);
                product_sum_out_into(
                    av,
                    bv,
                    cards,
                    stride_a,
                    stride_b,
                    *card_v,
                    *sav,
                    *sbv,
                    &mut arena.scratch,
                    out,
                );
            }
            OpKind::SumOut { src, outer, card, inner, off, len } => {
                let (lo, hi) = arena.f64s.split_at_mut(*off);
                let lo: &[f64] = lo;
                let out = &mut hi[..*len];
                let sv = self.resolve(src, lo);
                sum_out_into(sv, *outer, *card, *inner, out);
            }
            OpKind::ProductMasked {
                a,
                b,
                cards,
                stride_a,
                stride_b,
                masks,
                off,
                len,
            } => {
                let (lo, hi) = arena.f64s.split_at_mut(*off);
                let lo: &[f64] = lo;
                let out = &mut hi[..*len];
                let av = self.resolve(a, lo);
                let bv = self.resolve(b, lo);
                product_masked_into(
                    av,
                    bv,
                    cards,
                    stride_a,
                    stride_b,
                    masks,
                    &arena.codes,
                    &mut arena.scratch,
                    out,
                );
            }
            OpKind::ProductSumOutMasked {
                a,
                b,
                cards,
                stride_a,
                stride_b,
                masks,
                card_v,
                sav,
                sbv,
                v_mask,
                off,
                len,
            } => {
                let (lo, hi) = arena.f64s.split_at_mut(*off);
                let lo: &[f64] = lo;
                let out = &mut hi[..*len];
                let av = self.resolve(a, lo);
                let bv = self.resolve(b, lo);
                product_sum_out_masked_into(
                    av,
                    bv,
                    cards,
                    stride_a,
                    stride_b,
                    masks,
                    &arena.codes,
                    *card_v,
                    *sav,
                    *sbv,
                    *v_mask,
                    &mut arena.scratch,
                    out,
                );
            }
            OpKind::SumOutMasked {
                src,
                cards,
                stride,
                masks,
                card_v,
                sv,
                v_mask,
                off,
                len,
            } => {
                let (lo, hi) = arena.f64s.split_at_mut(*off);
                let lo: &[f64] = lo;
                let out = &mut hi[..*len];
                let data = self.resolve(src, lo);
                sum_out_masked_into(
                    data,
                    cards,
                    stride,
                    masks,
                    &arena.codes,
                    *card_v,
                    *sv,
                    *v_mask,
                    &mut arena.scratch,
                    out,
                );
            }
        }
    }

    fn resolve<'a>(&'a self, src: &Src, lo: &'a [f64]) -> &'a [f64] {
        match *src {
            Src::Base(i) => self.factors[i].data(),
            Src::Work { off, len } => &lo[off..off + len],
            Src::Const { off, len } => &self.consts[off..off + len],
        }
    }

    fn scalar_of(&self, src: &Src, arena: &Arena) -> f64 {
        match *src {
            Src::Base(i) => self.factors[i].data()[0],
            Src::Work { off, .. } => arena.f64s[off],
            Src::Const { off, .. } => self.consts[off],
        }
    }

    /// Number of nodes in the unrolled network this plan replays.
    pub fn n_nodes(&self) -> usize {
        self.factors.len()
    }

    /// Resident entries in this plan's reduced-factor memo.
    pub fn reduce_memo_len(&self) -> usize {
        self.memo.lock().len()
    }

    /// The memo capacity this plan was compiled with.
    pub fn reduce_memo_capacity(&self) -> usize {
        self.memo_capacity
    }

    /// Drops every memoized signature, forcing the next estimate of each
    /// constant set down the replay (memo-miss) path — used by benches to
    /// measure miss latency and by tests.
    pub fn clear_reduce_memo(&self) {
        self.memo.lock().clear();
    }
}

/// Executes one constant-foldable op at compile time against the plan's
/// `consts` buffer — the same kernels, strides, and operand bytes the
/// replay would use, so the folded output is bit-identical to what every
/// estimate would have recomputed. Operands are `Base` factors or
/// earlier folded regions (always below the output offset).
fn run_const_op(
    factors: &[Factor],
    op: &OpKind,
    consts: &mut [f64],
    scratch: &mut [usize],
) {
    fn res<'a>(factors: &'a [Factor], src: &Src, lo: &'a [f64]) -> &'a [f64] {
        match *src {
            Src::Base(i) => factors[i].data(),
            Src::Const { off, len } | Src::Work { off, len } => &lo[off..off + len],
        }
    }
    match op {
        OpKind::Product { a, b, cards, stride_a, stride_b, off, len } => {
            let (lo, hi) = consts.split_at_mut(*off);
            let lo: &[f64] = lo;
            let out = &mut hi[..*len];
            let av = res(factors, a, lo);
            let bv = res(factors, b, lo);
            product_into(av, bv, cards, stride_a, stride_b, scratch, out);
        }
        OpKind::ProductSumOut {
            a,
            b,
            cards,
            stride_a,
            stride_b,
            card_v,
            sav,
            sbv,
            off,
            len,
        } => {
            let (lo, hi) = consts.split_at_mut(*off);
            let lo: &[f64] = lo;
            let out = &mut hi[..*len];
            let av = res(factors, a, lo);
            let bv = res(factors, b, lo);
            product_sum_out_into(
                av, bv, cards, stride_a, stride_b, *card_v, *sav, *sbv, scratch, out,
            );
        }
        OpKind::SumOut { src, outer, card, inner, off, len } => {
            let (lo, hi) = consts.split_at_mut(*off);
            let lo: &[f64] = lo;
            let out = &mut hi[..*len];
            let sv = res(factors, src, lo);
            sum_out_into(sv, *outer, *card, *inner, out);
        }
        OpKind::ProductMasked { .. }
        | OpKind::ProductSumOutMasked { .. }
        | OpKind::SumOutMasked { .. } => {
            unreachable!("masked ops are evidence-dependent and never folded")
        }
    }
}

/// Replicates `bayesnet::infer`'s projected width: cells of the product
/// of all touching scopes (union incl. the eliminated variable),
/// saturating at `u64::MAX`.
fn projected_cells_of<S>(
    touching: &[S],
    parts: impl Fn(&S) -> (&Vec<usize>, &Vec<usize>),
) -> u64 {
    let mut scope: Vec<(usize, u64)> = Vec::new();
    for s in touching {
        let (vars, cards) = parts(s);
        for (&v, &c) in vars.iter().zip(cards) {
            match scope.binary_search_by_key(&v, |&(sv, _)| sv) {
                Ok(_) => {}
                Err(at) => scope.insert(at, (v, c as u64)),
            }
        }
    }
    scope.iter().fold(1u64, |acc, &(_, c)| acc.saturating_mul(c))
}

/// Sorted-merge union of two scopes with their cards — the compile-time
/// mirror of [`bayesnet::factor::union_scope`] over raw slices.
fn union_scope_parts(
    avars: &[usize],
    acards: &[usize],
    bvars: &[usize],
    bcards: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    let mut vars = Vec::with_capacity(avars.len() + bvars.len());
    let mut cards = Vec::with_capacity(avars.len() + bvars.len());
    let (mut i, mut j) = (0, 0);
    while i < avars.len() || j < bvars.len() {
        let take_a = j >= bvars.len() || (i < avars.len() && avars[i] <= bvars[j]);
        if take_a {
            if j < bvars.len() && avars[i] == bvars[j] {
                debug_assert_eq!(acards[i], bcards[j], "cardinality mismatch");
                j += 1;
            }
            vars.push(avars[i]);
            cards.push(acards[i]);
            i += 1;
        } else {
            vars.push(bvars[j]);
            cards.push(bcards[j]);
            j += 1;
        }
    }
    (vars, cards)
}

// ---------------------------------------------------------------------
// The fold cache.
// ---------------------------------------------------------------------

/// Content-keyed cache of folded-constant buffers, shared between the
/// plans of one model. Templates that fold the same evidence-independent
/// prefix (common when precompiling many templates over one closure)
/// produce byte-identical `consts` buffers; interning them here makes
/// every such plan share a single `Arc` allocation. Keys are FNV hashes
/// of the buffer bits, verified byte-for-byte on a bucket match, so a
/// hash collision can never splice the wrong constants into a plan.
#[derive(Debug, Default)]
pub struct FoldCache {
    inner: Mutex<HashMap<u64, Vec<Arc<Vec<f64>>>>>,
}

impl FoldCache {
    /// An empty fold cache.
    pub fn new() -> Self {
        FoldCache::default()
    }

    /// The shared buffer equal to `consts`, inserting it if new.
    fn intern(&self, consts: Vec<f64>) -> Arc<Vec<f64>> {
        let mut h = Fnv::new();
        for &x in &consts {
            h.write(&x.to_bits().to_le_bytes());
        }
        let hash = h.finish();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let bucket = inner.entry(hash).or_default();
        if let Some(existing) = bucket.iter().find(|e| {
            e.len() == consts.len()
                && e.iter().zip(&consts).all(|(a, b)| a.to_bits() == b.to_bits())
        }) {
            return existing.clone();
        }
        let arc = Arc::new(consts);
        bucket.push(arc.clone());
        arc
    }

    /// Number of distinct interned buffers.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every interned buffer (plans already holding one keep their
    /// `Arc`; used on model replacement).
    pub fn clear(&self) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }
}

// ---------------------------------------------------------------------
// The plan cache.
// ---------------------------------------------------------------------

/// One resident plan: the verified template key plus the shared plan.
#[derive(Debug)]
struct PlanEntry {
    key: PlanKey,
    plan: Arc<QueryPlan>,
}

/// Bounded LRU cache of compiled plans, keyed by query template.
///
/// Lookups hash the live query with the allocation-free
/// [`PlanKey::stable_hash_of`] and verify bucket candidates field-wise
/// against the query, so a warm hit builds no `PlanKey` and allocates
/// nothing. Recency is an intrusive list over a slab — promotion is a few
/// pointer swaps.
///
/// Concurrency: lookups and inserts take a short mutex; compilation runs
/// *outside* the lock, so workers compiling different templates do not
/// serialize. Two workers racing on the same template may both compile
/// it — the plans are bit-identical (see the module docs), the first
/// insert wins, and the loser's copy is used once and dropped.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<LruSlab<PlanEntry>>,
}

/// Default plan-cache capacity when `PRMSEL_PLAN_CACHE` is unset.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// Recomputes the `prm.plan.hit_ratio` gauge — hits / (hits + misses) —
/// from the process-global counters. Called on every lookup, so any
/// snapshot sees the current ratio.
fn refresh_hit_ratio() {
    let hits = obs::counter!("prm.plan.hit").get();
    let misses = obs::counter!("prm.plan.miss").get();
    let total = hits + misses;
    if total > 0 {
        obs::gauge!("prm.plan.hit_ratio").set(hits as f64 / total as f64);
    }
}

/// Recomputes the `prm.plan.reduce.hit_ratio` gauge — signature-memo hits
/// / (hits + misses) — from the process-global counters, mirroring
/// [`refresh_hit_ratio`]. Called on every memo lookup.
fn refresh_reduce_hit_ratio() {
    let hits = obs::counter!("prm.plan.reduce.hit").get();
    let misses = obs::counter!("prm.plan.reduce.miss").get();
    let total = hits + misses;
    if total > 0 {
        obs::gauge!("prm.plan.reduce.hit_ratio").set(hits as f64 / total as f64);
    }
}

fn count_evict(_: &PlanEntry) {
    obs::counter!("prm.plan.evict").inc();
}

impl PlanCache {
    /// A cache holding at most `capacity` plans; `0` disables caching
    /// (every call compiles, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        // Register the precompile counter up front so snapshots show an
        // explicit 0 when no manifest was loaded.
        obs::counter!("prm.plan.precompiled").add(0);
        PlanCache { inner: Mutex::new(LruSlab::new(capacity)) }
    }

    /// Capacity from the `PRMSEL_PLAN_CACHE` environment variable, else
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        let capacity = std::env::var("PRMSEL_PLAN_CACHE")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_PLAN_CACHE_CAPACITY);
        PlanCache::new(capacity)
    }

    /// The cached plan for `query`'s template, or the result of `compile`,
    /// recorded under the template key; the `bool` is true on a cache hit
    /// (the per-template warm-latency histograms only sample replays, not
    /// compiles). Hits, misses, evictions, and compile latency are
    /// reported as `prm.plan.hit` / `prm.plan.miss` / `prm.plan.evict` /
    /// `prm.plan.compile.ns`, plus a derived `prm.plan.hit_ratio` gauge;
    /// the outcome also lands on the live flight-recorder trace.
    pub fn get_or_compile(
        &self,
        query: &Query,
        compile: impl FnOnce() -> Result<QueryPlan>,
    ) -> Result<(Arc<QueryPlan>, bool)> {
        let hash = PlanKey::stable_hash_of(query);
        {
            let mut inner = self.lock();
            if let Some(entry) = inner.get(hash, |e| e.key.matches(query)) {
                let plan = entry.plan.clone();
                drop(inner);
                obs::counter!("prm.plan.hit").inc();
                refresh_hit_ratio();
                obs::flight::plan_cache(true);
                return Ok((plan, true));
            }
        }
        obs::counter!("prm.plan.miss").inc();
        refresh_hit_ratio();
        obs::flight::plan_cache(false);
        let compile_phase = obs::flight::phase("compile");
        let start = std::time::Instant::now();
        let plan = Arc::new(compile()?);
        obs::histogram!("prm.plan.compile.ns").record_duration(start.elapsed());
        drop(compile_phase);
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return Ok((plan, false));
        }
        if let Some(entry) = inner.get(hash, |e| e.key.matches(query)) {
            // Lost a compile race: adopt the resident plan (already
            // promoted by the lookup).
            return Ok((entry.plan.clone(), false));
        }
        inner.insert(
            hash,
            PlanEntry { key: PlanKey::of(query), plan: plan.clone() },
            &mut count_evict,
        );
        Ok((plan, false))
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a plan for `key` is resident (does not touch recency).
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.lock().peek(key.stable_hash(), |e| e.key == *key).is_some()
    }

    /// The resident plan for `query`'s template, if any (does not touch
    /// recency or the hit/miss counters) — introspection for tests and
    /// tools.
    pub fn peek(&self, query: &Query) -> Option<Arc<QueryPlan>> {
        let hash = PlanKey::stable_hash_of(query);
        self.lock().peek(hash, |e| e.key.matches(query)).map(|e| e.plan.clone())
    }

    /// Template keys of every resident plan, most recently used first —
    /// the export order of the precompile manifest, so a bounded manifest
    /// keeps the hottest templates.
    pub fn keys(&self) -> Vec<PlanKey> {
        self.lock().values_mru().into_iter().map(|e| e.key.clone()).collect()
    }

    /// Ahead-of-time compilation: compiles a plan for every manifest key
    /// not already resident and inserts it, fanning the compiles out
    /// across the worker pool. Returns how many plans were inserted
    /// (`prm.plan.precompiled` counts the same). Keys that fail to
    /// compile — e.g. a manifest recorded against a different schema —
    /// are skipped; precompilation is an optimization, never a gate, so
    /// the first live query of such a template just compiles on demand
    /// as before. Keys should be most-recent-first (as [`PlanCache::keys`]
    /// returns them): when the cache cannot hold the whole manifest, the
    /// most recent templates survive.
    pub fn precompile(
        &self,
        prm: &Prm,
        schema: &SchemaInfo,
        cache: &FactorCache,
        folds: &FoldCache,
        keys: &[PlanKey],
    ) -> usize {
        if self.lock().capacity == 0 {
            return 0;
        }
        let todo: Vec<PlanKey> =
            keys.iter().filter(|k| !self.contains(k)).cloned().collect();
        if todo.is_empty() {
            return 0;
        }
        let compiled = par::map(&todo, |key| {
            let query = key.to_template_query();
            QueryPlan::compile_with(prm, schema, cache, &query, Some(folds)).ok()
        });
        let mut inserted = 0usize;
        let mut inner = self.lock();
        // Insert in reverse so the manifest's first (most recent) key ends
        // up most recently used.
        for (key, plan) in todo.into_iter().zip(compiled).rev() {
            let Some(plan) = plan else { continue };
            if inner.capacity == 0 {
                break;
            }
            if inner.peek(key.stable_hash(), |e| e.key == key).is_none() {
                inner.insert(
                    key.stable_hash(),
                    PlanEntry { key, plan: Arc::new(plan) },
                    &mut count_evict,
                );
                obs::counter!("prm.plan.precompiled").inc();
                inserted += 1;
            }
        }
        inserted
    }

    /// Clears the signature memo of every resident plan (the plans stay
    /// resident) — forces the next estimate of each template down the
    /// replay path, for miss-latency measurement.
    pub fn clear_reduce_memos(&self) {
        let plans: Vec<Arc<QueryPlan>> =
            self.lock().values_mru().into_iter().map(|e| e.plan.clone()).collect();
        for p in plans {
            p.clear_reduce_memo();
        }
    }

    /// Drops every resident plan (used on model replacement). Also drops
    /// each plan's reduced-factor memo with it, so a refreshed model can
    /// never replay factor data reduced under the old parameters.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Changes the capacity, evicting stalest plans if over the new
    /// bound. Capacity `0` clears the cache and disables it.
    pub fn set_capacity(&self, capacity: usize) {
        self.lock().set_capacity(capacity, &mut count_evict);
    }

    /// The current capacity bound (maximum resident plans).
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LruSlab<PlanEntry>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_slab_evicts_least_recently_used() {
        let mut lru: LruSlab<u32> = LruSlab::new(2);
        let mut evicted = Vec::new();
        lru.insert(1, 10, &mut |&v| evicted.push(v));
        lru.insert(2, 20, &mut |&v| evicted.push(v));
        assert_eq!(lru.get(1, |&v| v == 10), Some(&10)); // promote 10
        lru.insert(3, 30, &mut |&v| evicted.push(v));
        assert_eq!(evicted, vec![20]);
        assert!(lru.peek(2, |_| true).is_none());
        assert!(lru.peek(1, |_| true).is_some());
        assert!(lru.peek(3, |_| true).is_some());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_slab_handles_hash_collisions_by_predicate() {
        let mut lru: LruSlab<u32> = LruSlab::new(4);
        lru.insert(7, 1, &mut |_| {});
        lru.insert(7, 2, &mut |_| {});
        assert_eq!(lru.get(7, |&v| v == 2), Some(&2));
        assert_eq!(lru.get(7, |&v| v == 1), Some(&1));
        assert_eq!(lru.get(7, |&v| v == 3), None);
    }

    #[test]
    fn lru_slab_zero_capacity_stores_nothing() {
        let mut lru: LruSlab<u32> = LruSlab::new(0);
        lru.insert(1, 10, &mut |_| {});
        assert_eq!(lru.len(), 0);
        assert!(lru.get(1, |_| true).is_none());
    }

    #[test]
    fn lru_slab_set_capacity_trims_stalest() {
        let mut lru: LruSlab<u32> = LruSlab::new(4);
        for i in 0..4u64 {
            lru.insert(i, i as u32, &mut |_| {});
        }
        let mut evicted = Vec::new();
        lru.set_capacity(2, &mut |&v| evicted.push(v));
        assert_eq!(evicted, vec![0, 1]);
        assert_eq!(lru.len(), 2);
    }
}
