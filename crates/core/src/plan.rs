//! Compile-once, estimate-many: the online query-plan layer.
//!
//! The paper's operating model is one offline-learned PRM answering a
//! heavy stream of online queries (§2.3, §3.3–3.5). A planner issues the
//! same query *templates* over and over with different constants, so the
//! per-query work should be predicate decoding, factor masking, and an
//! elimination replay — not re-unrolling the QEBN, re-materializing CPDs,
//! and re-deriving an elimination order. This module splits the online
//! path accordingly:
//!
//! * [`FactorCache`] — each table/tree CPD of the model is materialized
//!   into its canonical dense factor **once**, lazily, behind an
//!   `Arc`-shared [`std::sync::OnceLock`] slot, so concurrent
//!   `estimate_batch` workers share the result;
//! * [`QueryPlan`] — for one query template, the unrolled network
//!   structure, the evidence-independent factors (with the fixed
//!   `J = true` join evidence already folded in), and the full
//!   elimination order;
//! * [`PlanCache`] — a bounded LRU of compiled plans keyed by
//!   [`PlanKey`], hung off [`crate::PrmEstimator`].
//!
//! ## Determinism
//!
//! Plan-cached estimates are **bit-identical** to the uncached
//! [`QueryEvalBn::build`] + `estimated_size` path (see DESIGN.md §6c):
//! factor entries are copied CPD parameters (no arithmetic, so the
//! construction route cannot change them); evidence reduction zeroes
//! entries without touching scopes, so pre-reducing the fixed join
//! evidence at compile time commutes bitwise with the per-query predicate
//! reduction; the recorded elimination order is the same deterministic
//! function of the (reduction-invariant) scopes the fallback path
//! derives; and the replay kernel preserves the floating-point operation
//! order of the unfused pipeline. The proptest suite in
//! `crates/core/tests/plan_proptests.rs` asserts the equality with
//! `f64::to_bits`.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use bayesnet::{elimination_order, try_eliminate_in_order, Evidence, Factor};
use reldb::Query;

use crate::error::Result;
use crate::prm::Prm;
use crate::qebn::{pred_codes, NodeSource, QueryEvalBn};
use crate::schema::SchemaInfo;

/// Lazily materialized canonical CPD factors, one slot per CPD of the
/// model (value attributes and join indicators). Tree CPDs pay their
/// per-parent-configuration tree walk once per model instead of once per
/// query; table CPDs pay one copy.
#[derive(Debug)]
pub struct FactorCache {
    /// `[table][attr]` slots.
    attrs: Vec<Vec<OnceLock<Arc<Factor>>>>,
    /// `[table][fk]` slots.
    jis: Vec<Vec<OnceLock<Arc<Factor>>>>,
}

impl FactorCache {
    /// Empty cache shaped like `prm` (nothing is materialized yet).
    pub fn new(prm: &Prm) -> Self {
        FactorCache {
            attrs: prm
                .tables
                .iter()
                .map(|t| t.attrs.iter().map(|_| OnceLock::new()).collect())
                .collect(),
            jis: prm
                .tables
                .iter()
                .map(|t| t.join_indicators.iter().map(|_| OnceLock::new()).collect())
                .collect(),
        }
    }

    /// The canonical slot-local factor (see [`bayesnet::Cpd`]'s
    /// `to_local_factor`) for `source`, materialized on first use and
    /// shared afterwards. `prm` must be the model this cache was shaped
    /// from.
    pub fn local(&self, prm: &Prm, source: NodeSource) -> Arc<Factor> {
        let slot = match source {
            NodeSource::Attr { table, attr } => &self.attrs[table][attr],
            NodeSource::Ji { table, fk } => &self.jis[table][fk],
        };
        slot.get_or_init(|| {
            obs::counter!("prm.factor.materialize").inc();
            Arc::new(match source {
                NodeSource::Attr { table, attr } => {
                    prm.tables[table].attrs[attr].cpd.to_local_factor()
                }
                NodeSource::Ji { table, fk } => {
                    prm.tables[table].join_indicators[fk].to_cpd().to_local_factor()
                }
            })
        })
        .clone()
    }

    /// How many CPD factors have been materialized so far.
    pub fn materialized(&self) -> usize {
        self.attrs
            .iter()
            .chain(self.jis.iter())
            .flatten()
            .filter(|slot| slot.get().is_some())
            .count()
    }
}

/// The *template* of a query: its tuple variables, join skeleton, and
/// predicate slots, with the predicate constants abstracted away. Two
/// queries with the same key unroll to the same QEBN structure and share
/// one compiled plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    vars: Vec<String>,
    /// `(child var, fk attr, parent var)` per keyjoin.
    joins: Vec<(usize, String, usize)>,
    /// `(var, attr)` per predicate, in predicate order.
    preds: Vec<(usize, String)>,
}

impl PlanKey {
    /// The template key of `query`.
    pub fn of(query: &Query) -> PlanKey {
        PlanKey {
            vars: query.vars.clone(),
            joins: query
                .joins
                .iter()
                .map(|j| (j.child, j.fk_attr.clone(), j.parent))
                .collect(),
            preds: query.preds.iter().map(|p| (p.var(), p.attr().to_owned())).collect(),
        }
    }

    /// A stable 64-bit template hash (FNV-1a over the key's fields).
    ///
    /// Unlike `std::hash::Hash`, this value is identical across processes
    /// and runs, so it can label exported metric series (the
    /// `template="<16 hex digits>"` label on per-template quality
    /// histograms) and remain joinable across scrapes and restarts.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_usize(self.vars.len());
        for v in &self.vars {
            h.write_str(v);
        }
        h.write_usize(self.joins.len());
        for (child, fk, parent) in &self.joins {
            h.write_usize(*child);
            h.write_str(fk);
            h.write_usize(*parent);
        }
        h.write_usize(self.preds.len());
        for (var, attr) in &self.preds {
            h.write_usize(*var);
            h.write_str(attr);
        }
        h.finish()
    }

    /// [`PlanKey::stable_hash`] computed straight from `query` without
    /// building the key — the allocation-free form for the per-estimate
    /// telemetry path. Guaranteed equal to `PlanKey::of(query).stable_hash()`.
    pub fn stable_hash_of(query: &Query) -> u64 {
        let mut h = Fnv::new();
        h.write_usize(query.vars.len());
        for v in &query.vars {
            h.write_str(v);
        }
        h.write_usize(query.joins.len());
        for j in &query.joins {
            h.write_usize(j.child);
            h.write_str(&j.fk_attr);
            h.write_usize(j.parent);
        }
        h.write_usize(query.preds.len());
        for p in &query.preds {
            h.write_usize(p.var());
            h.write_str(p.attr());
        }
        h.finish()
    }
}

/// FNV-1a, 64-bit: tiny, allocation-free, and stable across platforms —
/// exactly what an exported label needs (`std::hash` is explicitly not
/// stable across releases or processes).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    /// Length-prefixed so adjacent strings cannot collide by shifting
    /// bytes across the boundary.
    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One predicate slot of a compiled plan, aligned with the template's
/// predicate list.
#[derive(Debug, Clone, Copy)]
struct PredSlot {
    /// QEBN node the predicate masks.
    node: usize,
    /// Cardinality of that node.
    card: usize,
    /// PRM table index whose domain decodes the predicate constants.
    table: usize,
}

/// A compiled query template: everything about estimation that does not
/// depend on the predicate constants.
#[derive(Debug)]
pub struct QueryPlan {
    /// Evidence-independent factors in node order: cached canonical
    /// factors relabeled to the QEBN's ids, with the fixed `J = true`
    /// join evidence pre-reduced (zeroing commutes bitwise with the
    /// per-query predicate reduction).
    factors: Vec<Factor>,
    /// Recorded min-weight elimination order over all nodes.
    order: Vec<usize>,
    /// Per-predicate decode/mask instructions.
    pred_slots: Vec<PredSlot>,
    /// `|T_v|` per closure tuple variable, in closure order; replayed as
    /// the same sequential multiply as the uncached scale step.
    row_factors: Vec<f64>,
}

impl QueryPlan {
    /// Compiles the plan for `query`'s template: unrolls the QEBN once,
    /// instantiates its factors from the cache, folds in the join
    /// evidence, and records the elimination order.
    pub fn compile(
        prm: &Prm,
        schema: &SchemaInfo,
        cache: &FactorCache,
        query: &Query,
    ) -> Result<QueryPlan> {
        failpoint::fail_point!("plan.compile").map_err(crate::error::Error::from)?;
        let qebn = QueryEvalBn::build(prm, schema, query)?;
        let n = qebn.bn.len();
        let mut factors = Vec::with_capacity(n);
        for v in 0..n {
            let local = cache.local(prm, qebn.node_sources[v]);
            let mut ids = qebn.bn.parents(v).to_vec();
            ids.push(v);
            let mut f = local.relabeled(&ids);
            for sv in f.vars().to_vec() {
                if qebn.ji_nodes.binary_search(&sv).is_ok() {
                    f = f.reduce(sv, &[false, true]);
                }
            }
            factors.push(f);
        }
        let scopes: Vec<Vec<usize>> = factors.iter().map(|f| f.vars().to_vec()).collect();
        // Every materialized node is evidence or an ancestor of evidence
        // (the builder only unrolls queried attributes and their
        // ancestors), so the eliminated set is all of them — exactly the
        // relevance prune of the uncached path.
        let elim: Vec<usize> = (0..n).collect();
        let order = elimination_order(&scopes, &elim, |v| qebn.bn.card(v));
        let pred_slots = query
            .preds
            .iter()
            .zip(&qebn.pred_nodes)
            .map(|(pred, &node)| PredSlot {
                node,
                card: qebn.bn.card(node),
                table: qebn.closure_tables[pred.var()],
            })
            .collect();
        let row_factors =
            qebn.closure_tables.iter().map(|&t| prm.tables[t].n_rows as f64).collect();
        Ok(QueryPlan { factors, order, pred_slots, row_factors })
    }

    /// Executes the plan for one concrete query of its template: decode
    /// predicates to masks, reduce the touched factors (untouched ones
    /// are borrowed, not copied), replay the elimination order, scale by
    /// the table sizes.
    pub fn estimate(&self, schema: &SchemaInfo, query: &Query) -> Result<f64> {
        debug_assert_eq!(query.preds.len(), self.pred_slots.len(), "template mismatch");
        let decode = obs::flight::phase("decode");
        let mut evidence = Evidence::new();
        for (slot, pred) in self.pred_slots.iter().zip(&query.preds) {
            let codes = pred_codes(schema, slot.table, pred)?;
            if obs::flight::active() {
                obs::flight::pred_mask(slot.node, codes.len(), slot.card);
            }
            evidence.isin(slot.node, &codes, slot.card);
        }
        drop(decode);
        let reduce = obs::flight::phase("reduce");
        let mut work: Vec<Cow<'_, Factor>> = Vec::with_capacity(self.factors.len());
        for f in &self.factors {
            let mut cur = Cow::Borrowed(f);
            for sv in f.vars().to_vec() {
                if let Some(mask) = evidence.mask_of(sv) {
                    cur = Cow::Owned(cur.reduce(sv, mask));
                }
            }
            work.push(cur);
        }
        drop(reduce);
        let eliminate = obs::flight::phase("eliminate");
        // Guarded replay: arithmetic is identical to the unguarded kernel
        // (bit-identity holds); the budget only adds control-flow checks,
        // and costs two relaxed loads when no knob is set.
        let p =
            try_eliminate_in_order(work, &self.order, crate::guard::estimate_budget())?;
        drop(eliminate);
        let mut size = p;
        for &rows in &self.row_factors {
            size *= rows;
        }
        Ok(size)
    }

    /// Number of nodes in the unrolled network this plan replays.
    pub fn n_nodes(&self) -> usize {
        self.factors.len()
    }
}

/// Bounded LRU cache of compiled plans, keyed by query template.
///
/// Concurrency: lookups and inserts take a short mutex; compilation runs
/// *outside* the lock, so workers compiling different templates do not
/// serialize. Two workers racing on the same template may both compile
/// it — the plans are bit-identical (see the module docs), the first
/// insert wins, and the loser's copy is used once and dropped.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

#[derive(Debug)]
struct PlanCacheInner {
    capacity: usize,
    /// Monotonic access clock; larger = more recently used.
    tick: u64,
    plans: HashMap<PlanKey, (Arc<QueryPlan>, u64)>,
    /// Recency index: tick → key, mirrored with the `plans` ticks. Makes
    /// eviction `pop_first()` (the stalest entry) instead of a full-map
    /// min scan. Ticks are unique (the clock only moves forward under the
    /// lock), so a plain map suffices.
    by_tick: BTreeMap<u64, PlanKey>,
}

impl PlanCacheInner {
    /// Moves `key`'s recency from `old_tick` to `new_tick` in the index.
    fn touch(&mut self, old_tick: u64, new_tick: u64) {
        let key = self.by_tick.remove(&old_tick).expect("recency index in sync");
        self.by_tick.insert(new_tick, key);
    }

    /// Evicts stalest plans until `plans` fits the capacity.
    fn evict_to_capacity(&mut self) {
        while self.plans.len() > self.capacity {
            let (_, oldest) =
                self.by_tick.pop_first().expect("recency index is non-empty");
            self.plans.remove(&oldest);
            obs::counter!("prm.plan.evict").inc();
        }
    }
}

/// Default plan-cache capacity when `PRMSEL_PLAN_CACHE` is unset.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// Recomputes the `prm.plan.hit_ratio` gauge — hits / (hits + misses) —
/// from the process-global counters. Called on every lookup, so any
/// snapshot sees the current ratio.
fn refresh_hit_ratio() {
    let hits = obs::counter!("prm.plan.hit").get();
    let misses = obs::counter!("prm.plan.miss").get();
    let total = hits + misses;
    if total > 0 {
        obs::gauge!("prm.plan.hit_ratio").set(hits as f64 / total as f64);
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans; `0` disables caching
    /// (every call compiles, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(PlanCacheInner {
                capacity,
                tick: 0,
                plans: HashMap::new(),
                by_tick: BTreeMap::new(),
            }),
        }
    }

    /// Capacity from the `PRMSEL_PLAN_CACHE` environment variable, else
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        let capacity = std::env::var("PRMSEL_PLAN_CACHE")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_PLAN_CACHE_CAPACITY);
        PlanCache::new(capacity)
    }

    /// The cached plan for `key`, or the result of `compile`, recorded
    /// under the key; the `bool` is true on a cache hit (the per-template
    /// warm-latency histograms only sample replays, not compiles). Hits,
    /// misses, evictions, and compile latency are reported as
    /// `prm.plan.hit` / `prm.plan.miss` / `prm.plan.evict` /
    /// `prm.plan.compile.ns`, plus a derived `prm.plan.hit_ratio` gauge;
    /// the outcome also lands on the live flight-recorder trace.
    pub fn get_or_compile(
        &self,
        key: PlanKey,
        compile: impl FnOnce() -> Result<QueryPlan>,
    ) -> Result<(Arc<QueryPlan>, bool)> {
        {
            let mut guard = self.lock();
            let inner = &mut *guard;
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.plans.get_mut(&key) {
                let old_tick = entry.1;
                entry.1 = tick;
                let plan = entry.0.clone();
                inner.touch(old_tick, tick);
                obs::counter!("prm.plan.hit").inc();
                refresh_hit_ratio();
                obs::flight::plan_cache(true);
                return Ok((plan, true));
            }
        }
        obs::counter!("prm.plan.miss").inc();
        refresh_hit_ratio();
        obs::flight::plan_cache(false);
        let compile_phase = obs::flight::phase("compile");
        let start = std::time::Instant::now();
        let plan = Arc::new(compile()?);
        obs::histogram!("prm.plan.compile.ns").record_duration(start.elapsed());
        drop(compile_phase);
        let mut guard = self.lock();
        let inner = &mut *guard;
        if inner.capacity == 0 {
            return Ok((plan, false));
        }
        inner.tick += 1;
        let tick = inner.tick;
        let resident = if let Some(entry) = inner.plans.get_mut(&key) {
            // Lost a compile race: adopt the resident plan and refresh
            // its recency.
            let old_tick = entry.1;
            entry.1 = tick;
            let plan = entry.0.clone();
            inner.touch(old_tick, tick);
            plan
        } else {
            inner.by_tick.insert(tick, key.clone());
            inner.plans.insert(key, (plan.clone(), tick));
            plan
        };
        inner.evict_to_capacity();
        Ok((resident, false))
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.lock().plans.len()
    }

    /// True when no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a plan for `key` is resident (does not touch recency).
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.lock().plans.contains_key(key)
    }

    /// Drops every resident plan (used on model replacement).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.plans.clear();
        inner.by_tick.clear();
    }

    /// Changes the capacity, evicting stalest plans if over the new
    /// bound. Capacity `0` clears the cache and disables it.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        inner.evict_to_capacity();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCacheInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
