//! The unified estimation-error taxonomy.
//!
//! An optimizer embedding the estimator needs to *branch* on why an
//! estimate failed: a malformed query is the caller's bug (reject it), a
//! corrupt model file is an operational incident (reload, page someone), a
//! blown inference budget is expected on pathological templates (fall back
//! to a cheaper estimator), and an internal panic means degrade and keep
//! serving. [`Error`] carries exactly those classes; the lower layers'
//! [`reldb::Error`] values classify into it losslessly via `From`, and a
//! reverse `From` keeps legacy `reldb::Result` call sites compiling.
//!
//! The class taxonomy:
//!
//! | class | meaning | typical reaction |
//! |---|---|---|
//! | [`Error::Schema`]   | query names unknown tables/attrs, bad joins | reject the query |
//! | [`Error::Parse`]    | malformed input text (SQL, CSV, manifest) | reject the input |
//! | [`Error::Budget`]   | an inference guard tripped (width/deadline) | fall back |
//! | [`Error::Corrupt`]  | persisted artifact failed validation | reload / alert |
//! | [`Error::Internal`] | bug, injected fault, or isolated panic | degrade, file a bug |

use std::fmt;

/// Convenience alias used throughout the online estimation path.
pub type Result<T> = std::result::Result<T, Error>;

/// The failure class of an [`Error`] — what callers branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// The query does not fit the schema/model.
    Schema,
    /// Input text failed to parse.
    Parse,
    /// An inference guard (width budget or deadline) tripped.
    Budget,
    /// A persisted artifact is corrupt or incompatible.
    Corrupt,
    /// A bug, injected fault, or isolated worker panic.
    Internal,
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorClass::Schema => "schema",
            ErrorClass::Parse => "parse",
            ErrorClass::Budget => "budget",
            ErrorClass::Corrupt => "corrupt",
            ErrorClass::Internal => "internal",
        })
    }
}

/// Which guard rejected the inference (see [`crate::guard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// An elimination step would materialize a factor wider than
    /// `PRMSEL_WIDTH_BUDGET` cells.
    Width,
    /// The per-estimate wall-clock deadline (`PRMSEL_DEADLINE_MS`) passed.
    Deadline,
}

/// Errors raised by the estimation stack, grouped by failure class.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The query references schema objects the model does not know, or its
    /// join graph is malformed. Wraps the precise relational error.
    Schema(reldb::Error),
    /// Malformed input text (SQL, CSV contents, schema manifests).
    Parse(String),
    /// An inference guard tripped instead of letting the process OOM or
    /// stall; the detail says which limit and by how much.
    Budget {
        /// Which guard fired.
        kind: BudgetKind,
        /// Human-readable specifics (projected cells vs. limit, elapsed
        /// vs. deadline).
        detail: String,
    },
    /// A persisted artifact failed validation, with the byte offset at
    /// which the damage was detected when known.
    Corrupt {
        /// Byte offset into the artifact where validation failed.
        offset: Option<u64>,
        /// What failed (bad magic, checksum mismatch, truncated field…).
        detail: String,
    },
    /// A bug, an injected fault, or a worker panic isolated by the
    /// resilience layer.
    Internal(String),
}

impl Error {
    /// The failure class — what degradation ladders and optimizers branch
    /// on.
    pub fn class(&self) -> ErrorClass {
        match self {
            Error::Schema(_) => ErrorClass::Schema,
            Error::Parse(_) => ErrorClass::Parse,
            Error::Budget { .. } => ErrorClass::Budget,
            Error::Corrupt { .. } => ErrorClass::Corrupt,
            Error::Internal(_) => ErrorClass::Internal,
        }
    }

    /// An [`Error::Internal`] from a payload caught by
    /// `std::panic::catch_unwind`.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Error {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_owned());
        Error::Internal(format!("worker panicked: {msg}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(e) => write!(f, "schema error: {e}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Budget { kind, detail } => match kind {
                BudgetKind::Width => write!(f, "budget exceeded (width): {detail}"),
                BudgetKind::Deadline => write!(f, "budget exceeded (deadline): {detail}"),
            },
            Error::Corrupt { offset: Some(at), detail } => {
                write!(f, "corrupt artifact at byte {at}: {detail}")
            }
            Error::Corrupt { offset: None, detail } => {
                write!(f, "corrupt artifact: {detail}")
            }
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Classifies a relational-engine error into the estimation taxonomy.
impl From<reldb::Error> for Error {
    fn from(e: reldb::Error) -> Error {
        match e {
            reldb::Error::Parse(msg) => Error::Parse(msg),
            reldb::Error::Corrupt(detail) => Error::Corrupt { offset: None, detail },
            reldb::Error::Io(msg) => Error::Internal(format!("i/o: {msg}")),
            reldb::Error::Exhausted(detail) => {
                Error::Budget { kind: BudgetKind::Width, detail }
            }
            reldb::Error::Internal(msg) => Error::Internal(msg),
            // Everything else describes a query/schema mismatch precisely;
            // keep the original for its message and structure.
            other => Error::Schema(other),
        }
    }
}

/// Back-map for legacy `reldb::Result` call sites (examples, benches, the
/// executor): the class survives, structure degrades to text where reldb
/// has no equivalent variant.
impl From<Error> for reldb::Error {
    fn from(e: Error) -> reldb::Error {
        match e {
            Error::Schema(inner) => inner,
            Error::Parse(msg) => reldb::Error::Parse(msg),
            Error::Budget { .. } => reldb::Error::Exhausted(e_detail(&e)),
            Error::Corrupt { offset: Some(at), detail } => {
                reldb::Error::Corrupt(format!("at byte {at}: {detail}"))
            }
            Error::Corrupt { offset: None, detail } => reldb::Error::Corrupt(detail),
            Error::Internal(msg) => reldb::Error::Internal(msg),
        }
    }
}

fn e_detail(e: &Error) -> String {
    match e {
        Error::Budget { kind: BudgetKind::Width, detail } => format!("width: {detail}"),
        Error::Budget { kind: BudgetKind::Deadline, detail } => {
            format!("deadline: {detail}")
        }
        other => other.to_string(),
    }
}

/// Injected faults surface as [`Error::Internal`] so the ladder treats
/// them exactly like real bugs.
impl From<failpoint::Injected> for Error {
    fn from(e: failpoint::Injected) -> Error {
        Error::Internal(e.to_string())
    }
}

/// Budget aborts from the inference kernel (which cannot depend on this
/// crate) carry their guard kind across the boundary.
impl From<bayesnet::InferAbort> for Error {
    fn from(a: bayesnet::InferAbort) -> Error {
        match a {
            bayesnet::InferAbort::Width { var, cells, budget } => Error::Budget {
                kind: BudgetKind::Width,
                detail: format!(
                    "eliminating node {var} would materialize {cells} cells \
                     (budget {budget}, PRMSEL_WIDTH_BUDGET)"
                ),
            },
            bayesnet::InferAbort::Deadline => Error::Budget {
                kind: BudgetKind::Deadline,
                detail: "estimate deadline passed (PRMSEL_DEADLINE_MS)".to_owned(),
            },
            bayesnet::InferAbort::Fault(msg) => Error::Internal(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_every_variant() {
        let cases = [
            (Error::Schema(reldb::Error::UnknownTable("t".into())), ErrorClass::Schema),
            (Error::Parse("x".into()), ErrorClass::Parse),
            (
                Error::Budget { kind: BudgetKind::Width, detail: "w".into() },
                ErrorClass::Budget,
            ),
            (Error::Corrupt { offset: Some(3), detail: "c".into() }, ErrorClass::Corrupt),
            (Error::Internal("i".into()), ErrorClass::Internal),
        ];
        for (err, class) in cases {
            assert_eq!(err.class(), class, "{err}");
        }
    }

    #[test]
    fn reldb_errors_classify() {
        let schema: Error = reldb::Error::UnknownTable("t".into()).into();
        assert_eq!(schema.class(), ErrorClass::Schema);
        let parse: Error = reldb::Error::Parse("bad".into()).into();
        assert_eq!(parse.class(), ErrorClass::Parse);
        let corrupt: Error = reldb::Error::Corrupt("bits".into()).into();
        assert_eq!(corrupt.class(), ErrorClass::Corrupt);
        let io: Error = reldb::Error::Io("disk".into()).into();
        assert_eq!(io.class(), ErrorClass::Internal);
    }

    #[test]
    fn back_map_round_trips_schema_structure() {
        let original = reldb::Error::UnknownAttr { table: "t".into(), attr: "a".into() };
        let up: Error = original.clone().into();
        let down: reldb::Error = up.into();
        assert_eq!(down, original);
    }

    #[test]
    fn corrupt_offset_lands_in_both_renderings() {
        let e = Error::Corrupt { offset: Some(17), detail: "checksum".into() };
        assert!(e.to_string().contains("byte 17"));
        let down: reldb::Error = e.into();
        assert!(down.to_string().contains("byte 17"));
    }

    #[test]
    fn panics_become_internal() {
        let r = std::panic::catch_unwind(|| panic!("boom {}", 7));
        let e = Error::from_panic(r.unwrap_err());
        assert_eq!(e.class(), ErrorClass::Internal);
        assert!(e.to_string().contains("boom 7"), "{e}");
    }
}
