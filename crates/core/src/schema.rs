//! Schema metadata captured from a database at model-build time.
//!
//! Estimation happens long after (and far away from) the data: the online
//! phase must map query constants to dictionary codes and foreign-key
//! names to model slots without touching the tables. `SchemaInfo` is the
//! small immutable snapshot that makes this possible; its table and
//! foreign-key ordering matches [`crate::prm::Prm`]'s (both are derived
//! from the database's declaration order).

use reldb::{Database, Domain, Result};

/// One foreign key of a table.
#[derive(Debug, Clone)]
pub struct FkInfo {
    /// Foreign-key attribute name.
    pub attr: String,
    /// Target table index within [`SchemaInfo::tables`].
    pub target: usize,
}

/// Snapshot of one table's schema.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// Row count when the model was built.
    pub n_rows: u64,
    /// Value attribute names, in schema order.
    pub attrs: Vec<String>,
    /// Value attribute domains, aligned with `attrs`.
    pub domains: Vec<Domain>,
    /// Foreign keys, in schema order.
    pub fks: Vec<FkInfo>,
}

/// Snapshot of the whole database's schema (tables in database order).
#[derive(Debug, Clone)]
pub struct SchemaInfo {
    /// Per-table snapshots.
    pub tables: Vec<TableInfo>,
}

impl SchemaInfo {
    /// Captures the schema of `db`.
    pub fn from_db(db: &Database) -> Result<SchemaInfo> {
        let mut tables = Vec::with_capacity(db.tables().len());
        for t in db.tables() {
            let attrs: Vec<String> =
                t.schema().value_attrs().iter().map(|s| s.to_string()).collect();
            let domains: Vec<Domain> =
                attrs.iter().map(|a| t.domain(a).cloned()).collect::<Result<_>>()?;
            let fks = t
                .schema()
                .foreign_keys()
                .into_iter()
                .map(|fk| {
                    Ok(FkInfo { attr: fk.attr, target: db.table_index(&fk.target)? })
                })
                .collect::<Result<_>>()?;
            tables.push(TableInfo {
                name: t.name().to_owned(),
                n_rows: t.n_rows() as u64,
                attrs,
                domains,
                fks,
            });
        }
        Ok(SchemaInfo { tables })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldb::{Cell, DatabaseBuilder, TableBuilder};

    #[test]
    fn captures_tables_attrs_and_fks_in_order() {
        let mut p = TableBuilder::new("p").key("id").col("x");
        p.push_row(vec![Cell::Key(1), "a".into()]).unwrap();
        let mut c = TableBuilder::new("c").key("id").fk("p", "p").col("y").col("z");
        c.push_row(vec![Cell::Key(1), Cell::Key(1), "u".into(), "v".into()]).unwrap();
        let db = DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap();
        let s = SchemaInfo::from_db(&db).unwrap();
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.tables[0].name, "p");
        assert_eq!(s.tables[1].attrs, vec!["y", "z"]);
        assert_eq!(s.tables[1].fks.len(), 1);
        assert_eq!(s.tables[1].fks[0].attr, "p");
        assert_eq!(s.tables[1].fks[0].target, 0);
        assert_eq!(s.tables[1].n_rows, 1);
        assert_eq!(s.tables[0].domains[0].card(), 1);
    }
}
