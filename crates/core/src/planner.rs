//! A miniature cost-based join-order optimizer driven by the estimator.
//!
//! The paper's first motivation (§1): "cost-based query optimizers use
//! intermediate result size estimates to choose the optimal query
//! execution plan". This module closes that loop: given a select-keyjoin
//! query, it enumerates **left-deep join orders**, costs each order as the
//! sum of its intermediate result sizes — every prefix of the order is
//! itself a select-keyjoin query the estimator can answer — and returns
//! the cheapest plan.
//!
//! A join prefix must stay *connected* (no Cartesian products), which is
//! the standard System-R restriction; disconnected orderings are pruned.

use std::collections::HashMap;

use reldb::{Error, Join, Pred, Query, Result};

use crate::estimator::SelectivityEstimator;

/// One evaluated join order.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Tuple-variable indices in join order (first is the base relation).
    pub order: Vec<usize>,
    /// Estimated size of each intermediate prefix (len = vars − 1; the
    /// last entry is the final result estimate).
    pub intermediate_sizes: Vec<f64>,
    /// Total cost: the sum of intermediate sizes.
    pub cost: f64,
}

/// Enumerates all connected left-deep join orders of `query` and costs
/// them with `estimator`. Returns plans sorted by ascending cost.
///
/// The query must have at least two tuple variables and a connected join
/// graph.
pub fn enumerate_plans(
    estimator: &dyn SelectivityEstimator,
    query: &Query,
) -> Result<Vec<Plan>> {
    let n = query.vars.len();
    if n < 2 {
        return Err(Error::BadJoin("join planning needs at least two variables".into()));
    }
    // Adjacency over the join graph.
    let mut adjacent = vec![vec![false; n]; n];
    for j in &query.joins {
        adjacent[j.child][j.parent] = true;
        adjacent[j.parent][j.child] = true;
    }
    let mut plans = Vec::new();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    // A left-deep prefix's estimated size depends only on the *set* of
    // variables it covers (the subquery is order-independent), so prefix
    // estimates are shared across the orders that permute them.
    let mut memo: HashMap<Vec<usize>, f64> = HashMap::new();
    enumerate(estimator, query, &adjacent, &mut order, &mut used, &mut plans, &mut memo)?;
    if plans.is_empty() {
        return Err(Error::BadJoin("join graph is disconnected".into()));
    }
    plans.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
    Ok(plans)
}

/// The cheapest plan.
pub fn best_plan(estimator: &dyn SelectivityEstimator, query: &Query) -> Result<Plan> {
    Ok(enumerate_plans(estimator, query)?.remove(0))
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    estimator: &dyn SelectivityEstimator,
    query: &Query,
    adjacent: &[Vec<bool>],
    order: &mut Vec<usize>,
    used: &mut [bool],
    plans: &mut Vec<Plan>,
    memo: &mut HashMap<Vec<usize>, f64>,
) -> Result<()> {
    let n = query.vars.len();
    if order.len() == n {
        let (sizes, cost) = cost_of(estimator, query, order, memo)?;
        plans.push(Plan { order: order.clone(), intermediate_sizes: sizes, cost });
        return Ok(());
    }
    for v in 0..n {
        if used[v] {
            continue;
        }
        // Connectivity: after the first variable, the next one must join
        // something already in the prefix.
        if !order.is_empty() && !order.iter().any(|&u| adjacent[u][v]) {
            continue;
        }
        used[v] = true;
        order.push(v);
        enumerate(estimator, query, adjacent, order, used, plans, memo)?;
        order.pop();
        used[v] = false;
    }
    Ok(())
}

/// Costs one complete order: Σ over prefixes of length ≥ 2 of the
/// estimated prefix result size, memoized per variable set.
fn cost_of(
    estimator: &dyn SelectivityEstimator,
    query: &Query,
    order: &[usize],
    memo: &mut HashMap<Vec<usize>, f64>,
) -> Result<(Vec<f64>, f64)> {
    let mut sizes = Vec::with_capacity(order.len() - 1);
    let mut cost = 0.0;
    for k in 2..=order.len() {
        let mut key: Vec<usize> = order[..k].to_vec();
        key.sort_unstable();
        let est = match memo.get(&key) {
            Some(&e) => e,
            None => {
                let prefix = subquery(query, &order[..k]);
                let e = estimator.estimate(&prefix)?;
                memo.insert(key, e);
                e
            }
        };
        sizes.push(est);
        cost += est;
    }
    Ok((sizes, cost))
}

/// The restriction of `query` to a subset of its tuple variables: keeps
/// the joins and predicates whose variables all lie in the subset, with
/// variable indices remapped.
pub fn subquery(query: &Query, vars: &[usize]) -> Query {
    let remap = |v: usize| vars.iter().position(|&u| u == v);
    let mut q = Query {
        vars: vars.iter().map(|&v| query.vars[v].clone()).collect(),
        joins: Vec::new(),
        preds: Vec::new(),
    };
    for j in &query.joins {
        if let (Some(c), Some(p)) = (remap(j.child), remap(j.parent)) {
            q.joins.push(Join { child: c, fk_attr: j.fk_attr.clone(), parent: p });
        }
    }
    for pred in &query.preds {
        if let Some(v) = remap(pred.var()) {
            let mut p = pred.clone();
            match &mut p {
                Pred::Eq { var, .. } | Pred::In { var, .. } | Pred::Range { var, .. } => {
                    *var = v;
                }
            }
            q.preds.push(p);
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::PrmEstimator;
    use crate::learn::PrmLearnConfig;
    use workloads::tb::tb_database_sized;

    fn chain_query() -> Query {
        let mut b = Query::builder();
        let c = b.var("contact");
        let p = b.var("patient");
        let s = b.var("strain");
        b.join(c, "patient", p)
            .join(p, "strain", s)
            .eq(s, "unique", "yes")
            .eq(c, "contype", 4);
        b.build()
    }

    #[test]
    fn subquery_restricts_and_remaps() {
        let q = chain_query();
        let sub = subquery(&q, &[1, 2]); // patient, strain
        assert_eq!(sub.vars, vec!["patient", "strain"]);
        assert_eq!(sub.joins.len(), 1);
        assert_eq!(sub.joins[0].child, 0);
        assert_eq!(sub.joins[0].parent, 1);
        assert_eq!(sub.preds.len(), 1); // only the strain predicate survives
        assert_eq!(sub.preds[0].var(), 1);
    }

    #[test]
    fn planner_explores_only_connected_orders() {
        let db = tb_database_sized(100, 150, 1_000, 5);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let plans = enumerate_plans(&est, &chain_query()).unwrap();
        // The chain c—p—s admits 4 connected left-deep orders:
        // cps, pcs/psc (both directions from the middle), spc.
        assert_eq!(plans.len(), 4);
        for plan in &plans {
            assert_eq!(plan.intermediate_sizes.len(), 2);
            assert!(plan.cost >= 0.0);
            // Costs are sorted.
        }
        for w in plans.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    fn selective_predicates_pull_their_relation_early() {
        // strain.unique = yes + contype = roommate are selective; the best
        // plan should start from a filtered side, not from the unfiltered
        // middle with maximal intermediates. At minimum: the best plan's
        // cost is no more than any other plan's (trivially true), and the
        // worst plan differs from the best (the estimator discriminates).
        let db = tb_database_sized(200, 300, 3_000, 6);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let plans = enumerate_plans(&est, &chain_query()).unwrap();
        let best = &plans[0];
        let worst = plans.last().unwrap();
        assert!(best.cost < worst.cost, "planner cannot discriminate orders");
    }

    #[test]
    fn final_prefix_estimate_matches_whole_query_estimate() {
        let db = tb_database_sized(100, 150, 1_000, 5);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let q = chain_query();
        let plans = enumerate_plans(&est, &q).unwrap();
        let direct = est.estimate(&q).unwrap();
        for plan in &plans {
            let last = *plan.intermediate_sizes.last().unwrap();
            assert!(
                (last - direct).abs() < 1e-6 * direct.max(1.0),
                "final prefix {last} vs direct {direct}"
            );
        }
    }

    #[test]
    fn single_variable_query_is_rejected() {
        let db = tb_database_sized(50, 60, 200, 5);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let mut b = Query::builder();
        b.var("patient");
        assert!(enumerate_plans(&est, &b.build()).is_err());
    }

    #[test]
    fn disconnected_query_is_rejected() {
        let db = tb_database_sized(50, 60, 200, 5);
        let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).unwrap();
        let mut b = Query::builder();
        b.var("patient");
        b.var("strain");
        assert!(enumerate_plans(&est, &b.build()).is_err());
    }
}
