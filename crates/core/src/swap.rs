//! Atomic epoch hot-swap: an immutable `Arc<T>` slot that readers load
//! without blocking writers (and vice versa), built from std only.
//!
//! The design is a sequence-stamped `Mutex<Arc<T>>` with a per-thread
//! cache. A reader first checks its thread-local cache against the
//! cell's published sequence number (one atomic load); on a hit the
//! load is a plain `Arc::clone` — no lock, no allocation — so the warm
//! estimate path keeps its zero-allocation guarantee from PR 7. Only
//! the first load after a swap (or from a brand-new thread) takes the
//! mutex, and the mutex is only ever held for the few instructions of
//! an `Arc` clone/replace, so writers cannot stall readers behind a
//! long critical section.
//!
//! In-flight readers keep their pinned `Arc<T>` alive across a swap;
//! the old epoch is dropped when the last such reader (and each
//! thread-local cache entry, refreshed on that thread's next load)
//! lets go of it.

use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-unique cell ids, so the shared thread-local cache can serve
/// any number of cells (thread-locals inside a generic type would be
/// shared across instantiations — and across *instances* — so the cache
/// is keyed explicitly instead).
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// Per-thread cache: `(cell id, sequence, pinned value)`. Bounded — a
/// process holds a handful of live cells, so eviction is FIFO once the
/// cap is reached (stale entries for dropped cells age out the same way).
const CACHE_CAP: usize = 16;

/// One cache entry: `(cell id, sequence, pinned value)`.
type CacheEntry = (u64, u64, Arc<dyn Any + Send + Sync>);

thread_local! {
    static EPOCH_CACHE: RefCell<Vec<CacheEntry>> = const { RefCell::new(Vec::new()) };
}

/// A swappable `Arc<T>` slot with per-thread cached reads.
pub struct EpochCell<T: Send + Sync + 'static> {
    id: u64,
    /// Bumped (release) on every swap, read (acquire) by the fast path.
    seq: AtomicU64,
    slot: Mutex<Arc<T>>,
}

impl<T: Send + Sync + 'static> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("id", &self.id)
            .field("seq", &self.seq())
            .finish()
    }
}

impl<T: Send + Sync + 'static> EpochCell<T> {
    /// Creates a cell holding `value` as epoch sequence 1.
    pub fn new(value: T) -> Self {
        EpochCell {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            seq: AtomicU64::new(1),
            slot: Mutex::new(Arc::new(value)),
        }
    }

    /// Loads the current epoch. Warm path (no swap since this thread's
    /// last load): one atomic load + `Arc` clone, no lock, no heap
    /// allocation.
    pub fn load(&self) -> Arc<T> {
        let seq = self.seq.load(Ordering::Acquire);
        let cached = EPOCH_CACHE.with(|c| {
            c.borrow().iter().find_map(|(id, s, v)| {
                (*id == self.id && *s == seq).then(|| Arc::clone(v))
            })
        });
        if let Some(v) = cached {
            if let Ok(v) = v.downcast::<T>() {
                return v;
            }
        }
        self.load_slow()
    }

    #[cold]
    fn load_slow(&self) -> Arc<T> {
        let guard = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Read the sequence under the lock so the cached pair is
        // consistent even when a swap raced the fast path's load.
        let seq = self.seq.load(Ordering::Acquire);
        let value = Arc::clone(&*guard);
        drop(guard);
        let erased: Arc<dyn Any + Send + Sync> = value.clone();
        EPOCH_CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            cache.retain(|(id, _, _)| *id != self.id);
            if cache.len() >= CACHE_CAP {
                cache.remove(0);
            }
            cache.push((self.id, seq, erased));
        });
        value
    }

    /// Publishes `value` as the new epoch and returns the previous one.
    /// Readers that already hold the old `Arc` finish on it; new loads
    /// see `value`.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        let mut guard =
            self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let old = std::mem::replace(&mut *guard, value);
        // Bump under the lock so load_slow never caches a (new seq, old
        // value) pair.
        self.seq.fetch_add(1, Ordering::Release);
        old
    }

    /// The current epoch sequence number (starts at 1, +1 per swap).
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_current_and_swap_bumps_seq() {
        let cell = EpochCell::new(41i64);
        assert_eq!(*cell.load(), 41);
        assert_eq!(cell.seq(), 1);
        let old = cell.swap(Arc::new(42));
        assert_eq!(*old, 41);
        assert_eq!(*cell.load(), 42);
        assert_eq!(cell.seq(), 2);
    }

    #[test]
    fn warm_load_is_allocation_free_after_first_touch() {
        // The second load on the same thread must come from the
        // thread-local cache: same Arc, no slow path. We can't count
        // allocations here (the global counting allocator lives in the
        // zero_alloc integration test) but we can assert pointer
        // identity, which the cache guarantees.
        let cell = EpochCell::new(String::from("epoch"));
        let a = cell.load();
        let b = cell.load();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn two_cells_of_same_type_do_not_cross_cache() {
        let c1 = EpochCell::new(1u32);
        let c2 = EpochCell::new(2u32);
        assert_eq!(*c1.load(), 1);
        assert_eq!(*c2.load(), 2);
        c1.swap(Arc::new(10));
        assert_eq!(*c1.load(), 10);
        assert_eq!(*c2.load(), 2);
    }

    #[test]
    fn in_flight_readers_keep_old_epoch_alive_until_release() {
        struct DropFlag(Arc<AtomicBool>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicBool::new(false));
        let cell = EpochCell::new(DropFlag(dropped.clone()));
        let pinned = cell.load();
        cell.swap(Arc::new(DropFlag(Arc::new(AtomicBool::new(false)))));
        // Refresh this thread's cache so it no longer pins the old epoch;
        // the explicit `pinned` handle is now the only reader.
        let _new = cell.load();
        assert!(!dropped.load(Ordering::SeqCst), "pinned reader keeps epoch alive");
        drop(pinned);
        assert!(dropped.load(Ordering::SeqCst), "old epoch freed on last release");
    }

    #[test]
    fn concurrent_readers_never_observe_torn_state() {
        // Each epoch is a (n, n) pair; a reader must never see a mix.
        let cell = Arc::new(EpochCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let v = cell.load();
                        assert_eq!(v.0, v.1, "torn epoch observed");
                    }
                })
            })
            .collect();
        for n in 1..200u64 {
            cell.swap(Arc::new((n, n)));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.seq(), 200);
    }
}
