//! Crate-internal learning context: materialized code columns per table,
//! including foreign-key-joined columns (one pointer chase per hop under
//! referential integrity), shared by structure search (`learn`) and
//! parameter maintenance (`maintain`).

use bayesnet::graph::Dag;
use reldb::{Database, Error, Result};

use crate::learn::PrmLearnConfig;

pub(crate) struct FkCtx {
    pub(crate) attr: String,
    pub(crate) target: usize,
    /// Target-table value attribute columns, materialized per child row.
    pub(crate) foreign_cols: Vec<Vec<u32>>,
}

pub(crate) struct TableCtx {
    pub(crate) name: String,
    pub(crate) n_rows: usize,
    pub(crate) attr_names: Vec<String>,
    pub(crate) cards: Vec<usize>,
    pub(crate) cols: Vec<Vec<u32>>,
    pub(crate) fks: Vec<FkCtx>,
}

pub(crate) struct Ctx {
    pub(crate) tables: Vec<TableCtx>,
}

impl Ctx {
    pub(crate) fn build(db: &Database, config: &PrmLearnConfig) -> Result<Ctx> {
        // Stratification check: the FK graph must be acyclic for foreign
        // parents to define a coherent (stratified) PRM.
        if config.allow_foreign_parents {
            check_fk_graph_acyclic(db)?;
        }
        let mut tables = Vec::new();
        for t in db.tables() {
            let attr_names: Vec<String> =
                t.schema().value_attrs().iter().map(|s| s.to_string()).collect();
            let cards: Vec<usize> = attr_names
                .iter()
                .map(|a| t.domain(a).map(|d| d.card()))
                .collect::<Result<_>>()?;
            let cols: Vec<Vec<u32>> = attr_names
                .iter()
                .map(|a| t.codes(a).map(|c| c.to_vec()))
                .collect::<Result<_>>()?;
            let mut fks = Vec::new();
            for fk in t.schema().foreign_keys() {
                let target_idx = db.table_index(&fk.target)?;
                let target = db.table(&fk.target)?;
                let rows = db.fk_target_rows(t.name(), &fk.attr)?;
                let mut foreign_cols = Vec::new();
                for attr in target.schema().value_attrs() {
                    let codes = target.codes(attr)?;
                    foreign_cols.push(rows.iter().map(|&r| codes[r as usize]).collect());
                }
                fks.push(FkCtx { attr: fk.attr, target: target_idx, foreign_cols });
            }
            tables.push(TableCtx {
                name: t.name().to_owned(),
                n_rows: t.n_rows(),
                attr_names,
                cards,
                cols,
                fks,
            });
        }
        Ok(Ctx { tables })
    }
}

pub(crate) fn check_fk_graph_acyclic(db: &Database) -> Result<()> {
    let n = db.tables().len();
    let mut dag = Dag::empty(n);
    for (ti, t) in db.tables().iter().enumerate() {
        for fk in t.schema().foreign_keys() {
            let target = db.table_index(&fk.target)?;
            if target != ti && !dag.has_edge(target, ti) {
                if dag.creates_cycle(target, ti) {
                    return Err(Error::BadJoin(
                        "foreign-key graph is cyclic; PRM stratification (Def. 3.2) impossible"
                            .into(),
                    ));
                }
                dag.add_edge(target, ti);
            } else if target == ti {
                return Err(Error::BadJoin(
                    "self-referencing foreign key breaks stratification".into(),
                ));
            }
        }
    }
    Ok(())
}
