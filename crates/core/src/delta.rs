//! Sufficient-statistic delta maintenance (paper §6, made incremental).
//!
//! [`refresh_parameters`](crate::maintain::refresh_parameters) refits
//! every CPD from a full scan — O(db) per refresh. This module keeps the
//! *sufficient statistics* of every family live instead: per-attribute
//! joint count tables `(parents…, child)` and per-join-indicator
//! `(n_true, child marginal, parent marginal)` counts. An insert/delete
//! batch updates them in O(batch · model), and a refit from the
//! accumulators produces **bit-identical** parameters to a from-scratch
//! [`refresh_parameters`] on the same data: both paths reduce to the
//! same integer counts, and the same `count → f64` arithmetic runs on
//! them (proptested in `tests/delta_equivalence.rs`).
//!
//! The model log-likelihood is tracked from the same counts, so drift
//! (per-row score decay since the structure was adopted — the paper's
//! relearn trigger) costs O(model), not O(db), per batch.
//!
//! Propagation subtlety: a parent-table row update changes the
//! FK-joined evidence of every child row pointing at it. [`UpdateBatch::diff`]
//! therefore encodes each row *with* its joined foreign codes, so a
//! parent change surfaces as delete+insert pairs on the affected child
//! rows, and the child-side families stay exact.

use std::collections::HashMap;

use bayesnet::cpd::TableCpd;
use bayesnet::Cpd;
use reldb::Database;

use crate::error::{Error, Result};
use crate::maintain::{ctx_for, decode, family_counts, ji_counts, linearize, P_FLOOR};
use crate::prm::{JiParentRef, ParentRef, Prm};

/// One row in a maintenance batch: the row's own value-attribute codes
/// plus, per foreign key, the joined target row's value-attribute codes
/// — everything the child-side families need, with no database lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRow {
    /// Own value-attribute codes, in schema attr order.
    pub attrs: Vec<u32>,
    /// Per foreign key (schema order): the joined target row's
    /// value-attribute codes.
    pub foreign: Vec<Vec<u32>>,
}

/// Inserted and deleted rows of one table.
#[derive(Debug, Clone, Default)]
pub struct TableDelta {
    /// Rows added since the last batch.
    pub inserts: Vec<DeltaRow>,
    /// Rows removed since the last batch (their *old* contents).
    pub deletes: Vec<DeltaRow>,
}

/// An insert/delete batch across all tables, aligned with the model's
/// table order.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    /// Per-table deltas, aligned with `Prm::tables`.
    pub tables: Vec<TableDelta>,
}

impl UpdateBatch {
    /// An empty batch over `n_tables` tables.
    pub fn new(n_tables: usize) -> UpdateBatch {
        UpdateBatch { tables: vec![TableDelta::default(); n_tables] }
    }

    /// Total rows touched (inserts + deletes).
    pub fn rows(&self) -> u64 {
        self.tables.iter().map(|t| (t.inserts.len() + t.deletes.len()) as u64).sum()
    }

    /// True when no table has any delta.
    pub fn is_empty(&self) -> bool {
        self.tables.iter().all(|t| t.inserts.is_empty() && t.deletes.is_empty())
    }

    /// Diffs two versions of the database into a batch, keyed by each
    /// table's primary key. `old` is the coding authority: `new`'s values
    /// are re-encoded into `old`'s domains, and a value `old` has never
    /// seen is schema drift (the caller should relearn, not patch).
    ///
    /// A row whose own attrs *or* joined foreign codes changed becomes a
    /// delete (old contents) + insert (new contents) pair, so parent-row
    /// updates fan out to their children as required.
    pub fn diff(old: &Database, new: &Database) -> Result<UpdateBatch> {
        if old.tables().len() != new.tables().len() {
            return Err(schema_drift("table count changed"));
        }
        // Per-table, per-attr map from `new` codes into `old` codes.
        let mut remaps: Vec<Vec<Vec<u32>>> = Vec::with_capacity(old.tables().len());
        for old_t in old.tables() {
            let new_t = new.table(old_t.name()).map_err(Error::Schema)?;
            let attrs = old_t.schema().value_attrs();
            if new_t.schema().value_attrs() != attrs {
                return Err(schema_drift(&format!(
                    "value attributes of `{}` changed",
                    old_t.name()
                )));
            }
            let mut per_attr = Vec::with_capacity(attrs.len());
            for attr in &attrs {
                let old_dom = old_t.domain(attr).map_err(Error::Schema)?;
                let new_dom = new_t.domain(attr).map_err(Error::Schema)?;
                let map: Vec<u32> = new_dom
                    .values()
                    .iter()
                    .map(|v| {
                        old_dom.code(v).ok_or_else(|| {
                            schema_drift(&format!(
                                "`{}.{attr}` value {v:?} not in the model's domain",
                                old_t.name()
                            ))
                        })
                    })
                    .collect::<Result<_>>()?;
                per_attr.push(map);
            }
            remaps.push(per_attr);
        }
        let mut batch = UpdateBatch::new(old.tables().len());
        for (t, old_t) in old.tables().iter().enumerate() {
            let new_t = new.table(old_t.name()).map_err(Error::Schema)?;
            let old_rows = keyed_rows(old, old_t, None)?;
            let new_rows = keyed_rows(new, new_t, Some(&remaps))?;
            let delta = &mut batch.tables[t];
            for (key, row) in &old_rows {
                match new_rows.get(key) {
                    Some(new_row) if new_row == row => {}
                    Some(new_row) => {
                        delta.deletes.push(row.clone());
                        delta.inserts.push(new_row.clone());
                    }
                    None => delta.deletes.push(row.clone()),
                }
            }
            for (key, row) in &new_rows {
                if !old_rows.contains_key(key) {
                    delta.inserts.push(row.clone());
                }
            }
        }
        Ok(batch)
    }
}

fn schema_drift(detail: &str) -> Error {
    Error::Schema(reldb::Error::BadJoin(format!("schema drift: {detail}")))
}

/// Encodes every row of `table` as a keyed [`DeltaRow`], optionally
/// remapping codes (`remaps[table][attr][code]`) into the base coding.
fn keyed_rows(
    db: &Database,
    table: &reldb::Table,
    remaps: Option<&[Vec<Vec<u32>>]>,
) -> Result<HashMap<i64, DeltaRow>> {
    let keys = table.key_values().ok_or_else(|| {
        schema_drift(&format!("table `{}` has no primary key to diff by", table.name()))
    })?;
    let t_idx = db.table_index(table.name()).map_err(Error::Schema)?;
    let attrs = table.schema().value_attrs();
    let cols: Vec<&[u32]> = attrs
        .iter()
        .map(|a| table.codes(a).map_err(Error::Schema))
        .collect::<Result<_>>()?;
    // Per own fk: (joined target row per child row, target codes, target idx).
    let mut fk_cols: Vec<Vec<Vec<u32>>> = Vec::new();
    for fk in table.schema().foreign_keys() {
        let target_idx = db.table_index(&fk.target).map_err(Error::Schema)?;
        let target = db.table(&fk.target).map_err(Error::Schema)?;
        let rows = db.fk_target_rows(table.name(), &fk.attr).map_err(Error::Schema)?;
        let mut joined = Vec::new();
        for (a, attr) in target.schema().value_attrs().iter().enumerate() {
            let codes = target.codes(attr).map_err(Error::Schema)?;
            joined.push(
                rows.iter()
                    .map(|&r| {
                        let code = codes[r as usize];
                        match remaps {
                            Some(m) => m[target_idx][a][code as usize],
                            None => code,
                        }
                    })
                    .collect(),
            );
        }
        fk_cols.push(joined);
    }
    let mut out = HashMap::with_capacity(keys.len());
    for (row, &key) in keys.iter().enumerate() {
        let attrs: Vec<u32> = cols
            .iter()
            .enumerate()
            .map(|(a, col)| match remaps {
                Some(m) => m[t_idx][a][col[row] as usize],
                None => col[row],
            })
            .collect();
        let foreign: Vec<Vec<u32>> = fk_cols
            .iter()
            .map(|per_attr| per_attr.iter().map(|c| c[row]).collect())
            .collect();
        out.insert(key, DeltaRow { attrs, foreign });
    }
    Ok(out)
}

/// Live sufficient statistics of one attribute family: the joint
/// `(parents…, child)` count table, child fastest-varying — the exact
/// layout [`family_counts`] produces.
struct AttrState {
    parents: Vec<ParentRef>,
    /// `(parent cards…, child card)`.
    cards: Vec<usize>,
    counts: Vec<i64>,
}

/// Live sufficient statistics of one join-indicator family.
struct JiState {
    parents: Vec<JiParentRef>,
    cards: Vec<usize>,
    child_dims: Vec<usize>,
    parent_dims: Vec<usize>,
    n_true: Vec<i64>,
    child_counts: Vec<i64>,
    parent_counts: Vec<i64>,
}

struct TableState {
    n_rows: i64,
    /// Per value attr, for batch validation.
    cards: Vec<usize>,
    /// Per fk: target table index (join indicators align with fks).
    fk_targets: Vec<usize>,
    attrs: Vec<AttrState>,
    jis: Vec<JiState>,
}

/// The live accumulator set for a model: every family's sufficient
/// statistics, updated per batch in O(batch · model) and refit into a
/// fresh [`Prm`] without touching the database.
pub struct DeltaState {
    tables: Vec<TableState>,
    /// Per-row MLE log-likelihood when the structure was adopted — the
    /// reference point drift is measured against.
    baseline_per_row: Option<f64>,
    corrupt: bool,
}

impl DeltaState {
    /// Builds the accumulators from the current database contents with
    /// one full scan (the last one: every later update is O(batch)).
    /// Also records the drift baseline from an immediate MLE refit.
    pub fn build(prm: &Prm, db: &Database) -> Result<DeltaState> {
        let ctx = ctx_for(prm, db)?;
        let mut tables = Vec::with_capacity(prm.tables.len());
        for (t, table_model) in prm.tables.iter().enumerate() {
            let table = &ctx.tables[t];
            let mut attrs = Vec::with_capacity(table_model.attrs.len());
            for (a, attr) in table_model.attrs.iter().enumerate() {
                let parent_data: Vec<(&[u32], usize)> = attr
                    .parents
                    .iter()
                    .map(|&p| crate::maintain::parent_column(&ctx, t, p))
                    .collect();
                let counts = family_counts(&parent_data, &table.cols[a], attr.card);
                attrs.push(AttrState {
                    parents: attr.parents.clone(),
                    cards: counts.cards,
                    counts: counts.counts.iter().map(|&c| c as i64).collect(),
                });
            }
            let mut jis = Vec::with_capacity(table_model.join_indicators.len());
            for (f, ji) in table_model.join_indicators.iter().enumerate() {
                let (n_true, child_counts, parent_counts, cards, child_dims, parent_dims) =
                    ji_counts(&ctx, t, f, &ji.parents);
                jis.push(JiState {
                    parents: ji.parents.clone(),
                    cards,
                    child_dims,
                    parent_dims,
                    n_true: n_true.iter().map(|&c| c as i64).collect(),
                    child_counts: child_counts.iter().map(|&c| c as i64).collect(),
                    parent_counts: parent_counts.iter().map(|&c| c as i64).collect(),
                });
            }
            tables.push(TableState {
                n_rows: table.n_rows as i64,
                cards: table.cards.clone(),
                fk_targets: table.fks.iter().map(|fk| fk.target).collect(),
                attrs,
                jis,
            });
        }
        let mut state = DeltaState { tables, baseline_per_row: None, corrupt: false };
        let fresh = state.refit(prm)?;
        state.note_baseline(&fresh)?;
        Ok(state)
    }

    /// Applies an insert/delete batch to the accumulators. Shape errors
    /// are detected *before* any mutation (the state stays valid);
    /// count underflow mid-apply means the batch lied about the data and
    /// poisons the state (every later call errors until rebuilt).
    /// Returns the number of rows applied.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<u64> {
        if self.corrupt {
            return Err(corrupt_err());
        }
        self.validate(batch)?;
        let n_tables = self.tables.len();
        for t in 0..n_tables {
            let delta = &batch.tables[t];
            // Own-table families: attr count tables, JI n_true + child
            // marginals, row count.
            for (sign, rows) in [(-1i64, &delta.deletes), (1i64, &delta.inserts)] {
                for row in rows {
                    let st = &mut self.tables[t];
                    st.n_rows += sign;
                    if st.n_rows < 0 {
                        return self.poison();
                    }
                    for a in 0..st.attrs.len() {
                        let idx = family_index(&st.attrs[a], a, row);
                        let ast = &mut st.attrs[a];
                        ast.counts[idx] += sign;
                        if ast.counts[idx] < 0 {
                            return self.poison();
                        }
                    }
                    for f in 0..st.jis.len() {
                        let ji = &st.jis[f];
                        let idx = ji_index(ji, f, row);
                        let ci = ji_marginal_index(ji, &ji.child_dims, f, row);
                        let ji = &mut st.jis[f];
                        ji.n_true[idx] += sign;
                        ji.child_counts[ci] += sign;
                        if ji.n_true[idx] < 0 || ji.child_counts[ci] < 0 {
                            return self.poison();
                        }
                    }
                }
            }
            // Cross-table pass: this table is the *target* of other
            // tables' join indicators; their parent-side marginals count
            // target rows.
            for s in 0..n_tables {
                for f in 0..self.tables[s].jis.len() {
                    if self.tables[s].fk_targets[f] != t {
                        continue;
                    }
                    for (sign, rows) in [
                        (-1i64, &batch.tables[t].deletes),
                        (1i64, &batch.tables[t].inserts),
                    ] {
                        for row in rows {
                            let ji = &self.tables[s].jis[f];
                            let pi = parent_marginal_index(ji, row);
                            let ji = &mut self.tables[s].jis[f];
                            ji.parent_counts[pi] += sign;
                            if ji.parent_counts[pi] < 0 {
                                return self.poison();
                            }
                        }
                    }
                }
            }
        }
        Ok(batch.rows())
    }

    /// Shape-checks a batch against the model without mutating anything.
    fn validate(&self, batch: &UpdateBatch) -> Result<()> {
        if batch.tables.len() != self.tables.len() {
            return Err(schema_drift("batch table count mismatch"));
        }
        for (t, (st, delta)) in self.tables.iter().zip(&batch.tables).enumerate() {
            for row in delta.inserts.iter().chain(&delta.deletes) {
                if row.attrs.len() != st.cards.len() {
                    return Err(schema_drift(&format!("bad attr arity in table {t}")));
                }
                for (a, (&code, &card)) in row.attrs.iter().zip(&st.cards).enumerate() {
                    if code as usize >= card {
                        return Err(schema_drift(&format!(
                            "code {code} out of domain for table {t} attr {a}"
                        )));
                    }
                }
                if row.foreign.len() != st.fk_targets.len() {
                    return Err(schema_drift(&format!("bad fk arity in table {t}")));
                }
                for (f, (codes, &target)) in
                    row.foreign.iter().zip(&st.fk_targets).enumerate()
                {
                    let target_cards = &self.tables[target].cards;
                    if codes.len() != target_cards.len() {
                        return Err(schema_drift(&format!(
                            "bad foreign arity in table {t} fk {f}"
                        )));
                    }
                    for (&code, &card) in codes.iter().zip(target_cards) {
                        if code as usize >= card {
                            return Err(schema_drift(&format!(
                                "foreign code {code} out of domain (table {t} fk {f})"
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn poison<T>(&mut self) -> Result<T> {
        self.corrupt = true;
        Err(corrupt_err())
    }

    /// True once an apply tore the accumulators; refits are refused.
    pub fn is_corrupt(&self) -> bool {
        self.corrupt
    }

    /// Marks the accumulators as torn (e.g. a panic mid-apply observed
    /// by the caller's isolation layer).
    pub fn mark_corrupt(&mut self) {
        self.corrupt = true;
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> u64 {
        self.tables.iter().map(|t| t.n_rows.max(0) as u64).sum()
    }

    /// Refits every parameter of `prm` from the accumulators, keeping
    /// structure — bit-identical to `refresh_parameters` on a database
    /// with the same contents, without scanning one.
    pub fn refit(&self, prm: &Prm) -> Result<Prm> {
        if self.corrupt {
            return Err(corrupt_err());
        }
        if prm.tables.len() != self.tables.len() {
            return Err(schema_drift("model/accumulator table count mismatch"));
        }
        let mut out = prm.clone();
        for (t, table_model) in out.tables.iter_mut().enumerate() {
            let st = &self.tables[t];
            table_model.n_rows = st.n_rows.max(0) as u64;
            for (a, attr) in table_model.attrs.iter_mut().enumerate() {
                let ast = &st.attrs[a];
                let counts = reldb::CountTable {
                    cards: ast.cards.clone(),
                    counts: ast.counts.iter().map(|&c| c.max(0) as u64).collect(),
                };
                attr.cpd = match &attr.cpd {
                    Cpd::Table(_) => TableCpd::from_counts(&counts).into(),
                    Cpd::Tree(tree) => tree.refit_from_counts(&counts).into(),
                };
            }
            for (f, ji) in table_model.join_indicators.iter_mut().enumerate() {
                let js = &st.jis[f];
                // Replicates `ji_statistics` exactly: p = n_true / pairs,
                // zero-pair configurations keep probability 0.0.
                let mut p_true = vec![0.0f64; js.n_true.len()];
                let mut config = vec![0u32; js.cards.len()];
                for (idx, &nt) in js.n_true.iter().enumerate() {
                    decode(idx, &js.cards, &mut config);
                    let ci = linearize(&config, &js.child_dims, &js.cards);
                    let pi = linearize(&config, &js.parent_dims, &js.cards);
                    let pairs = js.child_counts[ci] as f64 * js.parent_counts[pi] as f64;
                    if pairs <= 0.0 {
                        continue;
                    }
                    p_true[idx] = nt as f64 / pairs;
                }
                ji.p_true = p_true;
            }
        }
        Ok(out)
    }

    /// Per-row log-likelihood of the accumulated data under `prm`'s
    /// current parameters, computed from counts alone (O(model)).
    pub fn per_row_loglik(&self, prm: &Prm) -> Result<f64> {
        if self.corrupt {
            return Err(corrupt_err());
        }
        let mut ll = 0.0;
        for (t, table_model) in prm.tables.iter().enumerate() {
            let st = &self.tables[t];
            for (a, attr) in table_model.attrs.iter().enumerate() {
                let ast = &st.attrs[a];
                let n_parents = ast.cards.len() - 1;
                let mut config = vec![0u32; ast.cards.len()];
                for (idx, &cnt) in ast.counts.iter().enumerate() {
                    if cnt <= 0 {
                        continue;
                    }
                    decode(idx, &ast.cards, &mut config);
                    let child = config[n_parents] as usize;
                    let p = attr.cpd.dist(&config[..n_parents])[child].max(P_FLOOR);
                    ll += cnt as f64 * p.ln();
                }
            }
            for (f, ji) in table_model.join_indicators.iter().enumerate() {
                let js = &st.jis[f];
                // Replicates `ji_statistics_against` on the live counts.
                let mut config = vec![0u32; js.cards.len()];
                for (idx, &nt) in js.n_true.iter().enumerate() {
                    decode(idx, &js.cards, &mut config);
                    let ci = linearize(&config, &js.child_dims, &js.cards);
                    let pi = linearize(&config, &js.parent_dims, &js.cards);
                    let pairs = js.child_counts[ci] as f64 * js.parent_counts[pi] as f64;
                    if pairs <= 0.0 {
                        continue;
                    }
                    let p = ji.p_true[idx.min(ji.p_true.len() - 1)]
                        .clamp(P_FLOOR, 1.0 - P_FLOOR);
                    if nt > 0 {
                        ll += nt as f64 * p.ln();
                    }
                    if pairs > nt as f64 {
                        ll += (pairs - nt as f64) * (1.0 - p).ln();
                    }
                }
            }
        }
        Ok(ll / self.total_rows().max(1) as f64)
    }

    /// Records the drift baseline from a freshly refit model (call at
    /// structure adoption).
    pub fn note_baseline(&mut self, fresh: &Prm) -> Result<()> {
        self.baseline_per_row = Some(self.per_row_loglik(fresh)?);
        Ok(())
    }

    /// Per-row score decay since the structure was adopted: baseline −
    /// current best-achievable (MLE) per-row log-likelihood, given a
    /// freshly refit model. Positive and growing means the fixed
    /// structure no longer matches the data — the paper's relearn
    /// trigger.
    pub fn drift(&self, fresh: &Prm) -> Result<f64> {
        let now = self.per_row_loglik(fresh)?;
        Ok(self.baseline_per_row.map_or(0.0, |base| base - now))
    }
}

fn corrupt_err() -> Error {
    Error::Corrupt {
        offset: None,
        detail: "maintenance accumulators poisoned; rebuild DeltaState from the \
                 database"
            .into(),
    }
}

/// Family cell index for one row: fold parents then the child, matching
/// the `family_counts` layout.
fn family_index(ast: &AttrState, attr: usize, row: &DeltaRow) -> usize {
    let n_parents = ast.parents.len();
    let mut idx = 0usize;
    for (p, &card) in ast.parents.iter().zip(&ast.cards[..n_parents]) {
        let code = match *p {
            ParentRef::Local { attr } => row.attrs[attr],
            ParentRef::Foreign { fk, attr } => row.foreign[fk][attr],
        };
        idx = idx * card + code as usize;
    }
    idx * ast.cards[n_parents] + row.attrs[attr] as usize
}

/// Joint JI configuration index for one child row.
fn ji_index(ji: &JiState, fk: usize, row: &DeltaRow) -> usize {
    let mut idx = 0usize;
    for (p, &card) in ji.parents.iter().zip(&ji.cards) {
        let code = match *p {
            JiParentRef::Child { attr } => row.attrs[attr],
            JiParentRef::Parent { attr } => row.foreign[fk][attr],
        };
        idx = idx * card + code as usize;
    }
    idx
}

/// Child-side marginal index for one child row (1 for the empty scope).
fn ji_marginal_index(ji: &JiState, dims: &[usize], fk: usize, row: &DeltaRow) -> usize {
    let mut idx = 0usize;
    for &d in dims {
        let code = match ji.parents[d] {
            JiParentRef::Child { attr } => row.attrs[attr],
            JiParentRef::Parent { attr } => row.foreign[fk][attr],
        };
        idx = idx * ji.cards[d] + code as usize;
    }
    idx
}

/// Parent-side marginal index for one *target-table* row: parent-scope
/// dims read the target row's own attrs.
fn parent_marginal_index(ji: &JiState, row: &DeltaRow) -> usize {
    let mut idx = 0usize;
    for &d in &ji.parent_dims {
        let code = match ji.parents[d] {
            JiParentRef::Parent { attr } => row.attrs[attr],
            // parent_dims only indexes Parent refs by construction.
            JiParentRef::Child { .. } => unreachable!("child ref in parent dims"),
        };
        idx = idx * ji.cards[d] + code as usize;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::{learn_prm, PrmLearnConfig};
    use crate::maintain::refresh_parameters;
    use reldb::{Cell, DatabaseBuilder, TableBuilder, Value};

    fn two_table_db(n_children: i64, shift: i64) -> Database {
        let mut p = TableBuilder::new("parent").key("id").col("x");
        for i in 0..20i64 {
            p.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 3))]).unwrap();
        }
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        for i in 0..n_children {
            let target = (i * 7 + shift) % 20;
            let y = (target + shift) % 2;
            c.push_row(vec![Cell::Key(i), Cell::Key(target), Cell::Val(Value::Int(y))])
                .unwrap();
        }
        DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap()
    }

    fn assert_prm_bits_eq(a: &Prm, b: &Prm) {
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.n_rows, tb.n_rows, "row count of {}", ta.table);
            for (xa, xb) in ta.attrs.iter().zip(&tb.attrs) {
                assert_eq!(xa.cpd.parent_cards(), xb.cpd.parent_cards());
                let cards: Vec<usize> = xa.cpd.parent_cards().to_vec();
                let n_cfg: usize = cards.iter().product::<usize>().max(1);
                let mut config = vec![0u32; cards.len()];
                for idx in 0..n_cfg {
                    decode(idx, &cards, &mut config);
                    let da = xa.cpd.dist(&config);
                    let db = xb.cpd.dist(&config);
                    for (va, vb) in da.iter().zip(db) {
                        assert_eq!(
                            va.to_bits(),
                            vb.to_bits(),
                            "{}.{} cfg {config:?}",
                            ta.table,
                            xa.name
                        );
                    }
                }
            }
            for (ja, jb) in ta.join_indicators.iter().zip(&tb.join_indicators) {
                assert_eq!(ja.p_true.len(), jb.p_true.len());
                for (va, vb) in ja.p_true.iter().zip(&jb.p_true) {
                    assert_eq!(va.to_bits(), vb.to_bits(), "ji of {}", ta.table);
                }
            }
        }
    }

    #[test]
    fn build_then_refit_matches_refresh_bitwise() {
        let db = two_table_db(200, 0);
        let prm = learn_prm(&db, &PrmLearnConfig::default()).unwrap();
        let state = DeltaState::build(&prm, &db).unwrap();
        let from_counts = state.refit(&prm).unwrap();
        let from_scan = refresh_parameters(&prm, &db).unwrap();
        assert_prm_bits_eq(&from_counts, &from_scan);
    }

    #[test]
    fn diff_then_apply_tracks_the_new_database() {
        let old = two_table_db(200, 0);
        let new = two_table_db(180, 1); // dropped rows + changed values
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        let mut state = DeltaState::build(&prm, &old).unwrap();
        let batch = UpdateBatch::diff(&old, &new).unwrap();
        assert!(!batch.is_empty());
        state.apply(&batch).unwrap();
        let incremental = state.refit(&prm).unwrap();
        let scratch = refresh_parameters(&prm, &new).unwrap();
        assert_prm_bits_eq(&incremental, &scratch);
    }

    #[test]
    fn parent_row_change_fans_out_to_children() {
        // Change only parent.x values; the child table's rows are
        // byte-identical, but their joined foreign codes change, so the
        // diff must carry child delete+insert pairs.
        let old = two_table_db(100, 0);
        let mut p = TableBuilder::new("parent").key("id").col("x");
        for i in 0..20i64 {
            p.push_row(vec![Cell::Key(i), Cell::Val(Value::Int((i + 1) % 3))]).unwrap();
        }
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        for i in 0..100i64 {
            let target = (i * 7) % 20;
            c.push_row(vec![
                Cell::Key(i),
                Cell::Key(target),
                Cell::Val(Value::Int(target % 2)),
            ])
            .unwrap();
        }
        let new = DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap();
        let batch = UpdateBatch::diff(&old, &new).unwrap();
        assert!(
            !batch.tables[1].inserts.is_empty(),
            "parent change must fan out to child rows"
        );
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        let mut state = DeltaState::build(&prm, &old).unwrap();
        state.apply(&batch).unwrap();
        assert_prm_bits_eq(
            &state.refit(&prm).unwrap(),
            &refresh_parameters(&prm, &new).unwrap(),
        );
    }

    #[test]
    fn drift_grows_when_data_departs_from_structure() {
        let old = two_table_db(300, 0);
        let new = two_table_db(300, 1);
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        let mut state = DeltaState::build(&prm, &old).unwrap();
        let fresh = state.refit(&prm).unwrap();
        assert!(state.drift(&fresh).unwrap().abs() < 1e-12, "no drift at adoption");
        state.apply(&UpdateBatch::diff(&old, &new).unwrap()).unwrap();
        let refreshed = state.refit(&prm).unwrap();
        let drift = state.drift(&refreshed).unwrap();
        assert!(drift.is_finite());
    }

    #[test]
    fn bad_batches_are_rejected_and_underflow_poisons() {
        let db = two_table_db(50, 0);
        let prm = learn_prm(&db, &PrmLearnConfig::default()).unwrap();
        let mut state = DeltaState::build(&prm, &db).unwrap();
        // Shape error: rejected before mutation, state still usable.
        let mut bad = UpdateBatch::new(2);
        bad.tables[0].inserts.push(DeltaRow { attrs: vec![0, 0, 0], foreign: vec![] });
        assert!(state.apply(&bad).is_err());
        assert!(!state.is_corrupt());
        assert!(state.refit(&prm).is_ok());
        // Underflow: deleting a row that was never counted poisons.
        let n_parent_attrs = prm.tables[0].attrs.len();
        let mut lie = UpdateBatch::new(2);
        for _ in 0..100 {
            lie.tables[0]
                .deletes
                .push(DeltaRow { attrs: vec![0; n_parent_attrs], foreign: vec![] });
        }
        assert!(state.apply(&lie).is_err());
        assert!(state.is_corrupt());
        assert!(state.refit(&prm).is_err());
    }

    #[test]
    fn diff_rejects_unknown_domain_values() {
        let old = two_table_db(50, 0);
        // A child.y value (7) the old domain has never seen.
        let mut p = TableBuilder::new("parent").key("id").col("x");
        for i in 0..20i64 {
            p.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 3))]).unwrap();
        }
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        for i in 0..50i64 {
            c.push_row(vec![
                Cell::Key(i),
                Cell::Key((i * 7) % 20),
                Cell::Val(Value::Int(7)),
            ])
            .unwrap();
        }
        let new = DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap();
        assert!(UpdateBatch::diff(&old, &new).is_err());
    }
}
