//! Incremental model maintenance (paper §6).
//!
//! "It is straightforward to extend our approach to adapt the parameters
//! of the PRM over time, keeping the structure fixed. … We can also keep
//! track of the model score, relearning the structure if the score
//! decreases drastically."
//!
//! * [`refresh_parameters`] — re-estimates every CPD and join-indicator
//!   table from the current database contents while keeping all parent
//!   sets and tree-split structures fixed: one group-by pass per family,
//!   orders of magnitude cheaper than a structure search.
//! * [`model_loglik`] — the log-likelihood of the current database under a
//!   PRM (attribute families on their tables, join-indicator families on
//!   the pair populations). Tracking this score across updates is the
//!   paper's trigger for structural relearning: a model whose score decays
//!   badly no longer matches the data's dependence structure.

use bayesnet::cpd::TableCpd;
use bayesnet::Cpd;
use reldb::{Database, Error, Result};

use crate::ctx::Ctx;
use crate::learn::PrmLearnConfig;
use crate::prm::{JiParentRef, ParentRef, Prm};

/// Floor applied to model probabilities when scoring (see [`model_loglik`]).
const P_FLOOR: f64 = 1e-12;

/// Re-estimates all parameters of `prm` from `db`, keeping structure.
///
/// The database must have the same schema (tables, value attributes,
/// foreign keys, domain cardinalities) the PRM was learned from; row
/// contents may differ arbitrarily. Returns the refreshed model.
pub fn refresh_parameters(prm: &Prm, db: &Database) -> Result<Prm> {
    let ctx = ctx_for(prm, db)?;
    let mut out = prm.clone();
    for (t, table_model) in out.tables.iter_mut().enumerate() {
        let table = &ctx.tables[t];
        table_model.n_rows = table.n_rows as u64;
        for (a, attr) in table_model.attrs.iter_mut().enumerate() {
            let parent_data: Vec<(&[u32], usize)> =
                attr.parents.iter().map(|&p| parent_column(&ctx, t, p)).collect();
            attr.cpd = match &attr.cpd {
                Cpd::Table(_) => {
                    let counts = family_counts(&parent_data, &table.cols[a], attr.card);
                    TableCpd::from_counts(&counts).into()
                }
                Cpd::Tree(tree) => {
                    let cols: Vec<&[u32]> = parent_data.iter().map(|&(c, _)| c).collect();
                    tree.refit(&table.cols[a], &cols).into()
                }
            };
        }
        for (f, ji) in table_model.join_indicators.iter_mut().enumerate() {
            let (p_true, _) = ji_statistics(&ctx, t, f, &ji.parents);
            ji.p_true = p_true;
        }
    }
    Ok(out)
}

/// Log-likelihood of the database under the PRM's *current parameters*
/// (not the MLE refit): attribute families contribute
/// `Σ_rows ln P(x | pa)`, join indicators contribute the Bernoulli
/// likelihood over the `T × S` pair population.
///
/// Probabilities are floored at `1e-12` so that a drifted row landing on
/// an MLE-zero cell produces a large finite penalty instead of `-∞` —
/// this keeps the score usable as the paper's relearning trigger.
pub fn model_loglik(prm: &Prm, db: &Database) -> Result<f64> {
    let ctx = ctx_for(prm, db)?;
    let mut ll = 0.0;
    for (t, table_model) in prm.tables.iter().enumerate() {
        let table = &ctx.tables[t];
        for (a, attr) in table_model.attrs.iter().enumerate() {
            let parent_data: Vec<(&[u32], usize)> =
                attr.parents.iter().map(|&p| parent_column(&ctx, t, p)).collect();
            let child_col = &table.cols[a];
            let mut config = vec![0u32; parent_data.len()];
            for (row, &child) in child_col.iter().enumerate() {
                for (slot, (col, _)) in config.iter_mut().zip(&parent_data) {
                    *slot = col[row];
                }
                let p = attr.cpd.dist(&config)[child as usize].max(P_FLOOR);
                ll += p.ln();
            }
        }
        for (f, ji) in table_model.join_indicators.iter().enumerate() {
            let (_, family_ll) = ji_statistics_against(&ctx, t, f, ji);
            ll += family_ll;
        }
    }
    Ok(ll)
}

/// Builds a learning context matching the PRM's schema assumptions.
fn ctx_for(prm: &Prm, db: &Database) -> Result<Ctx> {
    let needs_foreign = prm.foreign_parent_count() > 0;
    let config =
        PrmLearnConfig { allow_foreign_parents: needs_foreign, ..Default::default() };
    let ctx = Ctx::build(db, &config)?;
    if ctx.tables.len() != prm.tables.len() {
        return Err(Error::BadJoin("database/model table count mismatch".into()));
    }
    for (t, model) in prm.tables.iter().enumerate() {
        if ctx.tables[t].name != model.table
            || ctx.tables[t].attr_names.len() != model.attrs.len()
        {
            return Err(Error::BadJoin(format!(
                "schema drift: table `{}` no longer matches the model",
                model.table
            )));
        }
        for (a, attr) in model.attrs.iter().enumerate() {
            if ctx.tables[t].cards[a] != attr.card {
                return Err(Error::BadJoin(format!(
                    "domain of `{}.{}` changed cardinality; relearn the structure",
                    model.table, attr.name
                )));
            }
        }
    }
    Ok(ctx)
}

fn parent_column(ctx: &Ctx, t: usize, p: ParentRef) -> (&[u32], usize) {
    let table = &ctx.tables[t];
    match p {
        ParentRef::Local { attr } => (&table.cols[attr], table.cards[attr]),
        ParentRef::Foreign { fk, attr } => (
            &table.fks[fk].foreign_cols[attr],
            ctx.tables[table.fks[fk].target].cards[attr],
        ),
    }
}

fn family_counts(
    parent_data: &[(&[u32], usize)],
    child_col: &[u32],
    child_card: usize,
) -> reldb::CountTable {
    let mut cards: Vec<usize> = parent_data.iter().map(|&(_, c)| c).collect();
    cards.push(child_card);
    let size: usize = cards.iter().product::<usize>().max(1);
    let mut counts = vec![0u64; size];
    for (row, &child) in child_col.iter().enumerate() {
        let mut idx = 0usize;
        for ((col, _), &card) in parent_data.iter().zip(&cards) {
            idx = idx * card + col[row] as usize;
        }
        idx = idx * child_card + child as usize;
        counts[idx] += 1;
    }
    reldb::CountTable { cards, counts }
}

/// MLE join-indicator probabilities plus MLE log-likelihood for a given
/// parent set.
fn ji_statistics(
    ctx: &Ctx,
    t: usize,
    f: usize,
    parents: &[JiParentRef],
) -> (Vec<f64>, f64) {
    let (n_true, child_counts, parent_counts, cards, child_dims, parent_dims) =
        ji_counts(ctx, t, f, parents);
    let size = n_true.len();
    let mut p_true = vec![0.0f64; size];
    let mut ll = 0.0;
    let mut config = vec![0u32; cards.len()];
    for (idx, &nt) in n_true.iter().enumerate() {
        decode(idx, &cards, &mut config);
        let ci = linearize(&config, &child_dims, &cards);
        let pi = linearize(&config, &parent_dims, &cards);
        let pairs = child_counts[ci] as f64 * parent_counts[pi] as f64;
        if pairs <= 0.0 {
            continue;
        }
        let p = nt as f64 / pairs;
        p_true[idx] = p;
        if nt > 0 {
            ll += nt as f64 * p.ln();
        }
        if pairs > nt as f64 && p < 1.0 {
            ll += (pairs - nt as f64) * (1.0 - p).ln();
        }
    }
    (p_true, ll)
}

/// Log-likelihood of the pair population under the model's *stored*
/// join-indicator probabilities.
fn ji_statistics_against(
    ctx: &Ctx,
    t: usize,
    f: usize,
    ji: &crate::prm::JoinIndicatorModel,
) -> (Vec<f64>, f64) {
    let (n_true, child_counts, parent_counts, cards, child_dims, parent_dims) =
        ji_counts(ctx, t, f, &ji.parents);
    let mut ll = 0.0;
    let mut config = vec![0u32; cards.len()];
    for (idx, &nt) in n_true.iter().enumerate() {
        decode(idx, &cards, &mut config);
        let ci = linearize(&config, &child_dims, &cards);
        let pi = linearize(&config, &parent_dims, &cards);
        let pairs = child_counts[ci] as f64 * parent_counts[pi] as f64;
        if pairs <= 0.0 {
            continue;
        }
        let p = ji.p_true[idx.min(ji.p_true.len() - 1)].clamp(P_FLOOR, 1.0 - P_FLOOR);
        if nt > 0 {
            ll += nt as f64 * p.ln();
        }
        if pairs > nt as f64 {
            ll += (pairs - nt as f64) * (1.0 - p).ln();
        }
    }
    (Vec::new(), ll)
}

type JiCounts = (Vec<u64>, Vec<u64>, Vec<u64>, Vec<usize>, Vec<usize>, Vec<usize>);

fn ji_counts(ctx: &Ctx, t: usize, f: usize, parents: &[JiParentRef]) -> JiCounts {
    let table = &ctx.tables[t];
    let fk = &table.fks[f];
    let target = &ctx.tables[fk.target];
    let joined: Vec<&[u32]> = parents
        .iter()
        .map(|p| match *p {
            JiParentRef::Child { attr } => table.cols[attr].as_slice(),
            JiParentRef::Parent { attr } => fk.foreign_cols[attr].as_slice(),
        })
        .collect();
    let cards: Vec<usize> = parents
        .iter()
        .map(|p| match *p {
            JiParentRef::Child { attr } => table.cards[attr],
            JiParentRef::Parent { attr } => target.cards[attr],
        })
        .collect();
    let size: usize = cards.iter().product::<usize>().max(1);
    let mut n_true = vec![0u64; size];
    for row in 0..table.n_rows {
        let mut idx = 0usize;
        for (col, &card) in joined.iter().zip(&cards) {
            idx = idx * card + col[row] as usize;
        }
        n_true[idx] += 1;
    }
    let child_dims: Vec<usize> = parents
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, JiParentRef::Child { .. }))
        .map(|(i, _)| i)
        .collect();
    let parent_dims: Vec<usize> = parents
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, JiParentRef::Parent { .. }))
        .map(|(i, _)| i)
        .collect();
    let child_counts = marginal_counts(
        &parents
            .iter()
            .filter_map(|p| match *p {
                JiParentRef::Child { attr } => {
                    Some((table.cols[attr].as_slice(), table.cards[attr]))
                }
                _ => None,
            })
            .collect::<Vec<_>>(),
        table.n_rows,
    );
    let parent_counts = marginal_counts(
        &parents
            .iter()
            .filter_map(|p| match *p {
                JiParentRef::Parent { attr } => {
                    Some((target.cols[attr].as_slice(), target.cards[attr]))
                }
                _ => None,
            })
            .collect::<Vec<_>>(),
        target.n_rows,
    );
    (n_true, child_counts, parent_counts, cards, child_dims, parent_dims)
}

fn marginal_counts(data: &[(&[u32], usize)], n_rows: usize) -> Vec<u64> {
    let size: usize = data.iter().map(|&(_, c)| c).product::<usize>().max(1);
    let mut counts = vec![0u64; size];
    if data.is_empty() {
        counts[0] = n_rows as u64;
        return counts;
    }
    for row in 0..n_rows {
        let mut idx = 0usize;
        for (col, card) in data {
            idx = idx * card + col[row] as usize;
        }
        counts[idx] += 1;
    }
    counts
}

fn decode(mut idx: usize, cards: &[usize], config: &mut [u32]) {
    for k in (0..cards.len()).rev() {
        config[k] = (idx % cards[k]) as u32;
        idx /= cards[k];
    }
}

fn linearize(config: &[u32], dims: &[usize], cards: &[usize]) -> usize {
    let mut idx = 0usize;
    for &d in dims {
        idx = idx * cards[d] + config[d] as usize;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{PrmEstimator, SelectivityEstimator};
    use crate::learn::learn_prm;
    use reldb::{Cell, DatabaseBuilder, Query, TableBuilder, Value};

    /// `flip`: when true, child.y anticopies parent.x instead of copying.
    fn db(flip: bool) -> Database {
        let mut p = TableBuilder::new("parent").key("id").col("x");
        for i in 0..40i64 {
            p.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 2))]).unwrap();
        }
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        for i in 0..400i64 {
            let target = (i * 7) % 40;
            let y = if flip { 1 - target % 2 } else { target % 2 };
            c.push_row(vec![Cell::Key(i), Cell::Key(target), Cell::Val(Value::Int(y))])
                .unwrap();
        }
        DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap()
    }

    #[test]
    fn refresh_restores_accuracy_after_drift() {
        let old = db(false);
        let new = db(true);
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        let refreshed = refresh_parameters(&prm, &new).unwrap();

        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p).eq(c, "y", 1).eq(p, "x", 0);
        let q = b.build();
        let truth = reldb::result_size(&new, &q).unwrap() as f64;
        assert!(truth > 0.0);

        let stale = PrmEstimator::from_prm(prm.clone(), &new, "stale").unwrap();
        let fresh = PrmEstimator::from_prm(refreshed, &new, "fresh").unwrap();
        let stale_err = (stale.estimate(&q).unwrap() - truth).abs();
        let fresh_err = (fresh.estimate(&q).unwrap() - truth).abs();
        assert!(
            fresh_err < stale_err,
            "fresh={fresh_err} stale={stale_err} truth={truth}"
        );
        assert!(fresh_err / truth < 0.2, "fresh err too large: {fresh_err}");
    }

    #[test]
    fn refresh_preserves_structure_and_size() {
        let old = db(false);
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        let refreshed = refresh_parameters(&prm, &db(true)).unwrap();
        assert_eq!(prm.size_bytes(), refreshed.size_bytes());
        for (a, b) in prm.tables.iter().zip(&refreshed.tables) {
            for (x, y) in a.attrs.iter().zip(&b.attrs) {
                assert_eq!(x.parents, y.parents);
            }
            for (x, y) in a.join_indicators.iter().zip(&b.join_indicators) {
                assert_eq!(x.parents, y.parents);
            }
        }
    }

    #[test]
    fn refresh_on_same_data_is_a_fixed_point() {
        let data = db(false);
        let prm = learn_prm(&data, &PrmLearnConfig::default()).unwrap();
        let refreshed = refresh_parameters(&prm, &data).unwrap();
        let ll_before = model_loglik(&prm, &data).unwrap();
        let ll_after = model_loglik(&refreshed, &data).unwrap();
        assert!((ll_before - ll_after).abs() < 1e-6);
    }

    #[test]
    fn score_tracks_drift() {
        // The paper's relearning trigger: the model score drops sharply
        // when the data stops matching the learned dependencies.
        let old = db(false);
        let new = db(true);
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        let ll_old = model_loglik(&prm, &old).unwrap();
        let ll_new = model_loglik(&prm, &new).unwrap();
        assert!(
            ll_new < ll_old - 1.0,
            "score should decay under drift: old={ll_old} new={ll_new}"
        );
    }

    #[test]
    fn schema_drift_is_rejected() {
        let old = db(false);
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        // A database with a different child domain cardinality.
        let mut p = TableBuilder::new("parent").key("id").col("x");
        for i in 0..4i64 {
            p.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 2))]).unwrap();
        }
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        for i in 0..12i64 {
            c.push_row(vec![
                Cell::Key(i),
                Cell::Key(i % 4),
                Cell::Val(Value::Int(i % 3)),
            ])
            .unwrap();
        }
        let drifted = DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap();
        assert!(refresh_parameters(&prm, &drifted).is_err());
    }
}
