//! Incremental model maintenance (paper §6).
//!
//! "It is straightforward to extend our approach to adapt the parameters
//! of the PRM over time, keeping the structure fixed. … We can also keep
//! track of the model score, relearning the structure if the score
//! decreases drastically."
//!
//! * [`refresh_parameters`] — re-estimates every CPD and join-indicator
//!   table from the current database contents while keeping all parent
//!   sets and tree-split structures fixed: one group-by pass per family,
//!   orders of magnitude cheaper than a structure search.
//! * [`model_loglik`] — the log-likelihood of the current database under a
//!   PRM (attribute families on their tables, join-indicator families on
//!   the pair populations). Tracking this score across updates is the
//!   paper's trigger for structural relearning: a model whose score decays
//!   badly no longer matches the data's dependence structure.
//! * [`Maintainer`] — the background repair loop: consumes
//!   [`UpdateBatch`]es, folds them into a [`DeltaState`] (O(batch), not
//!   O(database)), refits, validates, and hot-swaps a new
//!   [`crate::ModelEpoch`] into a shared [`crate::PrmEstimator`] — all off
//!   the request path. Drift beyond [`drift_relearn_threshold`] escalates
//!   to a structural relearn (or a watchdog alert when no relearn source
//!   is wired). A failed or panicking cycle leaves the old epoch serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

use bayesnet::cpd::TableCpd;
use bayesnet::Cpd;
use reldb::{Database, Error, Result};

use crate::ctx::Ctx;
use crate::delta::{DeltaState, UpdateBatch};
use crate::error::{Error as CoreError, Result as CoreResult};
use crate::estimator::PrmEstimator;
use crate::learn::PrmLearnConfig;
use crate::prm::{JiParentRef, ParentRef, Prm};
use crate::schema::SchemaInfo;

/// Floor applied to model probabilities when scoring (see [`model_loglik`]).
pub(crate) const P_FLOOR: f64 = 1e-12;

/// Re-estimates all parameters of `prm` from `db`, keeping structure.
///
/// The database must have the same schema (tables, value attributes,
/// foreign keys, domain cardinalities) the PRM was learned from; row
/// contents may differ arbitrarily. Returns the refreshed model.
pub fn refresh_parameters(prm: &Prm, db: &Database) -> Result<Prm> {
    let ctx = ctx_for(prm, db)?;
    let mut out = prm.clone();
    for (t, table_model) in out.tables.iter_mut().enumerate() {
        let table = &ctx.tables[t];
        table_model.n_rows = table.n_rows as u64;
        for (a, attr) in table_model.attrs.iter_mut().enumerate() {
            let parent_data: Vec<(&[u32], usize)> =
                attr.parents.iter().map(|&p| parent_column(&ctx, t, p)).collect();
            attr.cpd = match &attr.cpd {
                Cpd::Table(_) => {
                    let counts = family_counts(&parent_data, &table.cols[a], attr.card);
                    TableCpd::from_counts(&counts).into()
                }
                Cpd::Tree(tree) => {
                    let cols: Vec<&[u32]> = parent_data.iter().map(|&(c, _)| c).collect();
                    tree.refit(&table.cols[a], &cols).into()
                }
            };
        }
        for (f, ji) in table_model.join_indicators.iter_mut().enumerate() {
            let (p_true, _) = ji_statistics(&ctx, t, f, &ji.parents);
            ji.p_true = p_true;
        }
    }
    Ok(out)
}

/// Row chunk size for the parallel scoring pass. Chunk boundaries are
/// *fixed* (independent of `PRMSEL_THREADS`), and per-chunk partial sums
/// are folded sequentially in chunk order, so the result is bit-identical
/// at every thread count — the watchdog compares scores across runs, and
/// a thread-count-dependent rounding wobble would read as phantom drift.
const LOGLIK_CHUNK: usize = 8192;

/// Log-likelihood of the database under the PRM's *current parameters*
/// (not the MLE refit): attribute families contribute
/// `Σ_rows ln P(x | pa)`, join indicators contribute the Bernoulli
/// likelihood over the `T × S` pair population.
///
/// Probabilities are floored at `1e-12` so that a drifted row landing on
/// an MLE-zero cell produces a large finite penalty instead of `-∞` —
/// this keeps the score usable as the paper's relearning trigger.
///
/// The per-row attribute scan fans out across the worker pool in fixed
/// [`LOGLIK_CHUNK`]-row chunks; see there for why the answer does not
/// depend on the thread count.
pub fn model_loglik(prm: &Prm, db: &Database) -> Result<f64> {
    let ctx = ctx_for(prm, db)?;
    let mut ll = 0.0;
    for (t, table_model) in prm.tables.iter().enumerate() {
        let table = &ctx.tables[t];
        for (a, attr) in table_model.attrs.iter().enumerate() {
            let parent_data: Vec<(&[u32], usize)> =
                attr.parents.iter().map(|&p| parent_column(&ctx, t, p)).collect();
            let child_col = &table.cols[a];
            let starts: Vec<usize> = (0..child_col.len()).step_by(LOGLIK_CHUNK).collect();
            let partials = par::map(&starts, |&start| {
                let end = (start + LOGLIK_CHUNK).min(child_col.len());
                let mut config = vec![0u32; parent_data.len()];
                let mut part = 0.0f64;
                for row in start..end {
                    for (slot, (col, _)) in config.iter_mut().zip(&parent_data) {
                        *slot = col[row];
                    }
                    let p = attr.cpd.dist(&config)[child_col[row] as usize].max(P_FLOOR);
                    part += p.ln();
                }
                part
            });
            for part in partials {
                ll += part;
            }
        }
        for (f, ji) in table_model.join_indicators.iter().enumerate() {
            let (_, family_ll) = ji_statistics_against(&ctx, t, f, ji);
            ll += family_ll;
        }
    }
    Ok(ll)
}

/// Builds a learning context matching the PRM's schema assumptions.
pub(crate) fn ctx_for(prm: &Prm, db: &Database) -> Result<Ctx> {
    let needs_foreign = prm.foreign_parent_count() > 0;
    let config =
        PrmLearnConfig { allow_foreign_parents: needs_foreign, ..Default::default() };
    let ctx = Ctx::build(db, &config)?;
    if ctx.tables.len() != prm.tables.len() {
        return Err(Error::BadJoin("database/model table count mismatch".into()));
    }
    for (t, model) in prm.tables.iter().enumerate() {
        if ctx.tables[t].name != model.table
            || ctx.tables[t].attr_names.len() != model.attrs.len()
        {
            return Err(Error::BadJoin(format!(
                "schema drift: table `{}` no longer matches the model",
                model.table
            )));
        }
        for (a, attr) in model.attrs.iter().enumerate() {
            if ctx.tables[t].cards[a] != attr.card {
                return Err(Error::BadJoin(format!(
                    "domain of `{}.{}` changed cardinality; relearn the structure",
                    model.table, attr.name
                )));
            }
        }
    }
    Ok(ctx)
}

pub(crate) fn parent_column(ctx: &Ctx, t: usize, p: ParentRef) -> (&[u32], usize) {
    let table = &ctx.tables[t];
    match p {
        ParentRef::Local { attr } => (&table.cols[attr], table.cards[attr]),
        ParentRef::Foreign { fk, attr } => (
            &table.fks[fk].foreign_cols[attr],
            ctx.tables[table.fks[fk].target].cards[attr],
        ),
    }
}

pub(crate) fn family_counts(
    parent_data: &[(&[u32], usize)],
    child_col: &[u32],
    child_card: usize,
) -> reldb::CountTable {
    let mut cards: Vec<usize> = parent_data.iter().map(|&(_, c)| c).collect();
    cards.push(child_card);
    let size: usize = cards.iter().product::<usize>().max(1);
    let mut counts = vec![0u64; size];
    for (row, &child) in child_col.iter().enumerate() {
        let mut idx = 0usize;
        for ((col, _), &card) in parent_data.iter().zip(&cards) {
            idx = idx * card + col[row] as usize;
        }
        idx = idx * child_card + child as usize;
        counts[idx] += 1;
    }
    reldb::CountTable { cards, counts }
}

/// MLE join-indicator probabilities plus MLE log-likelihood for a given
/// parent set.
fn ji_statistics(
    ctx: &Ctx,
    t: usize,
    f: usize,
    parents: &[JiParentRef],
) -> (Vec<f64>, f64) {
    let (n_true, child_counts, parent_counts, cards, child_dims, parent_dims) =
        ji_counts(ctx, t, f, parents);
    let size = n_true.len();
    let mut p_true = vec![0.0f64; size];
    let mut ll = 0.0;
    let mut config = vec![0u32; cards.len()];
    for (idx, &nt) in n_true.iter().enumerate() {
        decode(idx, &cards, &mut config);
        let ci = linearize(&config, &child_dims, &cards);
        let pi = linearize(&config, &parent_dims, &cards);
        let pairs = child_counts[ci] as f64 * parent_counts[pi] as f64;
        if pairs <= 0.0 {
            continue;
        }
        let p = nt as f64 / pairs;
        p_true[idx] = p;
        if nt > 0 {
            ll += nt as f64 * p.ln();
        }
        if pairs > nt as f64 && p < 1.0 {
            ll += (pairs - nt as f64) * (1.0 - p).ln();
        }
    }
    (p_true, ll)
}

/// Log-likelihood of the pair population under the model's *stored*
/// join-indicator probabilities.
fn ji_statistics_against(
    ctx: &Ctx,
    t: usize,
    f: usize,
    ji: &crate::prm::JoinIndicatorModel,
) -> (Vec<f64>, f64) {
    let (n_true, child_counts, parent_counts, cards, child_dims, parent_dims) =
        ji_counts(ctx, t, f, &ji.parents);
    let mut ll = 0.0;
    let mut config = vec![0u32; cards.len()];
    for (idx, &nt) in n_true.iter().enumerate() {
        decode(idx, &cards, &mut config);
        let ci = linearize(&config, &child_dims, &cards);
        let pi = linearize(&config, &parent_dims, &cards);
        let pairs = child_counts[ci] as f64 * parent_counts[pi] as f64;
        if pairs <= 0.0 {
            continue;
        }
        let p = ji.p_true[idx.min(ji.p_true.len() - 1)].clamp(P_FLOOR, 1.0 - P_FLOOR);
        if nt > 0 {
            ll += nt as f64 * p.ln();
        }
        if pairs > nt as f64 {
            ll += (pairs - nt as f64) * (1.0 - p).ln();
        }
    }
    (Vec::new(), ll)
}

pub(crate) type JiCounts =
    (Vec<u64>, Vec<u64>, Vec<u64>, Vec<usize>, Vec<usize>, Vec<usize>);

pub(crate) fn ji_counts(
    ctx: &Ctx,
    t: usize,
    f: usize,
    parents: &[JiParentRef],
) -> JiCounts {
    let table = &ctx.tables[t];
    let fk = &table.fks[f];
    let target = &ctx.tables[fk.target];
    let joined: Vec<&[u32]> = parents
        .iter()
        .map(|p| match *p {
            JiParentRef::Child { attr } => table.cols[attr].as_slice(),
            JiParentRef::Parent { attr } => fk.foreign_cols[attr].as_slice(),
        })
        .collect();
    let cards: Vec<usize> = parents
        .iter()
        .map(|p| match *p {
            JiParentRef::Child { attr } => table.cards[attr],
            JiParentRef::Parent { attr } => target.cards[attr],
        })
        .collect();
    let size: usize = cards.iter().product::<usize>().max(1);
    let mut n_true = vec![0u64; size];
    for row in 0..table.n_rows {
        let mut idx = 0usize;
        for (col, &card) in joined.iter().zip(&cards) {
            idx = idx * card + col[row] as usize;
        }
        n_true[idx] += 1;
    }
    let child_dims: Vec<usize> = parents
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, JiParentRef::Child { .. }))
        .map(|(i, _)| i)
        .collect();
    let parent_dims: Vec<usize> = parents
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, JiParentRef::Parent { .. }))
        .map(|(i, _)| i)
        .collect();
    let child_counts = marginal_counts(
        &parents
            .iter()
            .filter_map(|p| match *p {
                JiParentRef::Child { attr } => {
                    Some((table.cols[attr].as_slice(), table.cards[attr]))
                }
                _ => None,
            })
            .collect::<Vec<_>>(),
        table.n_rows,
    );
    let parent_counts = marginal_counts(
        &parents
            .iter()
            .filter_map(|p| match *p {
                JiParentRef::Parent { attr } => {
                    Some((target.cols[attr].as_slice(), target.cards[attr]))
                }
                _ => None,
            })
            .collect::<Vec<_>>(),
        target.n_rows,
    );
    (n_true, child_counts, parent_counts, cards, child_dims, parent_dims)
}

pub(crate) fn marginal_counts(data: &[(&[u32], usize)], n_rows: usize) -> Vec<u64> {
    let size: usize = data.iter().map(|&(_, c)| c).product::<usize>().max(1);
    let mut counts = vec![0u64; size];
    if data.is_empty() {
        counts[0] = n_rows as u64;
        return counts;
    }
    for row in 0..n_rows {
        let mut idx = 0usize;
        for (col, card) in data {
            idx = idx * card + col[row] as usize;
        }
        counts[idx] += 1;
    }
    counts
}

pub(crate) fn decode(mut idx: usize, cards: &[usize], config: &mut [u32]) {
    for k in (0..cards.len()).rev() {
        config[k] = (idx % cards[k]) as u32;
        idx /= cards[k];
    }
}

pub(crate) fn linearize(config: &[u32], dims: &[usize], cards: &[usize]) -> usize {
    let mut idx = 0usize;
    for &d in dims {
        idx = idx * cards[d] + config[d] as usize;
    }
    idx
}

// ---------------------------------------------------------------------
// Process-wide serving-model freshness.
// ---------------------------------------------------------------------

static MODEL_EPOCH: AtomicU64 = AtomicU64::new(0);
static LAST_REFRESH_MS: AtomicU64 = AtomicU64::new(0);

/// Records a model (re)build. Called by the estimator on construction
/// and on every hot swap; when several estimators live in one process
/// the freshest write wins (same convention as the gauges).
pub(crate) fn note_model_refreshed(seq: u64) {
    MODEL_EPOCH.store(seq, Ordering::Relaxed);
    LAST_REFRESH_MS.store(obs::timeseries::now_ms(), Ordering::Relaxed);
    obs::gauge!("prm.model.epoch").set(seq as f64);
    obs::gauge!("prm.model.staleness_ms").set(0.0);
}

/// The serving-model epoch sequence (0 before any model is built) —
/// what `/buildinfo`, `/health`, and `prmsel top` report.
pub fn model_epoch() -> u64 {
    MODEL_EPOCH.load(Ordering::Relaxed)
}

/// Milliseconds since the serving model was last built or hot-swapped
/// (0 before any model is built).
pub fn model_staleness_ms() -> u64 {
    let last = LAST_REFRESH_MS.load(Ordering::Relaxed);
    if last == 0 {
        return 0;
    }
    obs::timeseries::now_ms().saturating_sub(last)
}

/// Default for `PRMSEL_DRIFT_RELEARN`: per-row log-likelihood decay (in
/// nats) beyond which parameter refits are judged insufficient and the
/// repair loop escalates to a structural relearn.
pub const DEFAULT_DRIFT_RELEARN: f64 = 0.5;

/// The relearn threshold from `PRMSEL_DRIFT_RELEARN`, else
/// [`DEFAULT_DRIFT_RELEARN`].
pub fn drift_relearn_threshold() -> f64 {
    std::env::var("PRMSEL_DRIFT_RELEARN")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .unwrap_or(DEFAULT_DRIFT_RELEARN)
}

// ---------------------------------------------------------------------
// The background repair loop.
// ---------------------------------------------------------------------

/// Tuning for a [`Maintainer`].
#[derive(Debug, Clone)]
pub struct MaintainOptions {
    /// Per-row drift (nats) beyond which the loop escalates to a
    /// structural relearn; `None` reads `PRMSEL_DRIFT_RELEARN` at spawn.
    pub drift_relearn: Option<f64>,
    /// Idle period between staleness-gauge refreshes when no work
    /// arrives.
    pub tick: Duration,
}

impl Default for MaintainOptions {
    fn default() -> Self {
        MaintainOptions { drift_relearn: None, tick: Duration::from_millis(250) }
    }
}

/// A caller-supplied structural-relearn source: returns a freshly
/// learned model, its schema snapshot, and a [`DeltaState`] rebuilt
/// against the new structure — or `None` when relearning is unavailable
/// (the loop then raises a `prm.maintain.drift` watchdog warning and
/// keeps refitting parameters).
pub type RelearnFn = Box<dyn FnMut() -> Option<(Prm, SchemaInfo, DeltaState)> + Send>;

enum Cmd {
    Batch(UpdateBatch),
    Refit,
    Sync(mpsc::Sender<()>),
    Stop,
}

/// The zero-downtime maintenance loop (paper §6, made operational).
///
/// A `Maintainer` owns a background thread holding the mutable
/// [`DeltaState`]; the serving [`PrmEstimator`] is only ever touched
/// through its atomic [`replace_model`](PrmEstimator::replace_model)
/// hot swap, so traffic never blocks on maintenance. Each cycle runs in
/// two isolated phases:
///
/// 1. **apply** — fold the batch into the sufficient statistics
///    (`maintain.apply` failpoint). This phase mutates the accumulators,
///    so a panic here marks the state corrupt (subsequent cycles are
///    rejected until a rebuild) — but the serving model is untouched.
/// 2. **refit + swap** — rebuild CPDs from the accumulators, score
///    drift, and publish a new epoch (`maintain.refit` /
///    `maintain.swap` failpoints). This phase only reads the state, so
///    any failure or panic leaves *both* the accumulators and the old
///    serving epoch intact.
///
/// Every rejected cycle raises a critical `prm.maintain.failed`
/// watchdog alert (resolved by the next success); drift past the
/// relearn threshold triggers the [`RelearnFn`] when one is wired, a
/// `prm.maintain.drift` warning otherwise.
pub struct Maintainer {
    tx: mpsc::Sender<Cmd>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Maintainer {
    /// Spawns the repair loop over `est`, seeding it with `state` (built
    /// by [`DeltaState::build`] against the same model generation).
    pub fn spawn(
        est: Arc<PrmEstimator>,
        state: DeltaState,
        opts: MaintainOptions,
    ) -> Maintainer {
        Self::spawn_with_relearn(est, state, opts, None)
    }

    /// [`Maintainer::spawn`] with a structural-relearn source consulted
    /// when drift exceeds the threshold.
    pub fn spawn_with_relearn(
        est: Arc<PrmEstimator>,
        mut state: DeltaState,
        opts: MaintainOptions,
        mut relearn: Option<RelearnFn>,
    ) -> Maintainer {
        // Register the family up front so a snapshot distinguishes "no
        // maintenance yet" (explicit zeros) from "not exported".
        obs::counter!("prm.maintain.batches").add(0);
        obs::counter!("prm.maintain.rows").add(0);
        obs::counter!("prm.maintain.refits").add(0);
        obs::counter!("prm.maintain.swaps").add(0);
        obs::counter!("prm.maintain.relearn").add(0);
        obs::counter!("prm.maintain.rejected").add(0);
        let threshold = opts.drift_relearn.unwrap_or_else(drift_relearn_threshold);
        let tick = opts.tick;
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("prmsel-maintain".into())
            .spawn(move || loop {
                match rx.recv_timeout(tick) {
                    Ok(Cmd::Stop) | Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => {
                        obs::gauge!("prm.model.staleness_ms")
                            .set(model_staleness_ms() as f64);
                    }
                    Ok(Cmd::Sync(ack)) => {
                        let _ = ack.send(());
                    }
                    Ok(Cmd::Batch(batch)) => {
                        run_cycle(&est, &mut state, Some(batch), threshold, &mut relearn);
                    }
                    Ok(Cmd::Refit) => {
                        run_cycle(&est, &mut state, None, threshold, &mut relearn);
                    }
                }
            })
            .expect("spawn prmsel-maintain thread");
        Maintainer { tx, handle: Some(handle) }
    }

    /// Queues an update batch for the next cycle. Returns `false` if the
    /// loop has stopped.
    pub fn submit(&self, batch: UpdateBatch) -> bool {
        self.tx.send(Cmd::Batch(batch)).is_ok()
    }

    /// Queues a refit-and-swap cycle with no new data (e.g. after the
    /// watchdog flags quality decay). Returns `false` if the loop has
    /// stopped.
    pub fn refit_now(&self) -> bool {
        self.tx.send(Cmd::Refit).is_ok()
    }

    /// Blocks until every previously queued command has been processed.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.tx.send(Cmd::Sync(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Stops the loop and joins the thread (also done on drop).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let _ = self.tx.send(Cmd::Stop);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Maintainer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One maintenance cycle. See [`Maintainer`] for the phase contract.
fn run_cycle(
    est: &PrmEstimator,
    state: &mut DeltaState,
    batch: Option<UpdateBatch>,
    threshold: f64,
    relearn: &mut Option<RelearnFn>,
) {
    if let Some(batch) = batch {
        let applied = catch_unwind(AssertUnwindSafe(|| -> CoreResult<u64> {
            failpoint::fail_point!("maintain.apply").map_err(CoreError::from)?;
            state.apply(&batch)
        }));
        match applied {
            Ok(Ok(rows)) => {
                obs::counter!("prm.maintain.batches").inc();
                obs::counter!("prm.maintain.rows").add(rows);
            }
            Ok(Err(e)) => return reject(&format!("apply: {e}")),
            Err(payload) => {
                // The panic may have torn the accumulators mid-update;
                // only a rebuild makes them trustworthy again.
                state.mark_corrupt();
                return reject(&format!("{}", CoreError::from_panic(payload)));
            }
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| -> CoreResult<f64> {
        failpoint::fail_point!("maintain.refit").map_err(CoreError::from)?;
        let ep = est.epoch();
        let fresh = state.refit(&ep.prm)?;
        let drift = state.drift(&fresh)?;
        failpoint::fail_point!("maintain.swap").map_err(CoreError::from)?;
        est.replace_model(fresh, ep.schema.clone());
        Ok(drift)
    }));
    let drift = match outcome {
        Ok(Ok(drift)) => drift,
        Ok(Err(e)) => return reject(&format!("refit: {e}")),
        Err(payload) => return reject(&format!("{}", CoreError::from_panic(payload))),
    };
    obs::counter!("prm.maintain.refits").inc();
    obs::watchdog::resolve("prm.maintain.failed");
    if drift <= threshold {
        obs::watchdog::resolve("prm.maintain.drift");
        return;
    }
    obs::counter!("prm.maintain.relearn").inc();
    if let Some(cb) = relearn.as_mut() {
        if let Some((prm, schema, fresh_state)) = cb() {
            est.replace_model(prm, schema);
            *state = fresh_state;
            obs::watchdog::resolve("prm.maintain.drift");
            obs::info!(
                "structural relearn swapped in (drift {drift:.3} > {threshold:.3})"
            );
            return;
        }
    }
    obs::watchdog::raise(
        obs::watchdog::Severity::Warning,
        "prm.maintain.drift",
        drift,
        threshold,
    );
}

/// Books a rejected cycle: the old epoch keeps serving, the operator
/// hears about it.
fn reject(detail: &str) {
    obs::counter!("prm.maintain.rejected").inc();
    obs::warn!("maintenance cycle rejected (old epoch keeps serving): {detail}");
    obs::watchdog::raise(
        obs::watchdog::Severity::Critical,
        "prm.maintain.failed",
        1.0,
        0.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{PrmEstimator, SelectivityEstimator};
    use crate::learn::learn_prm;
    use reldb::{Cell, DatabaseBuilder, Query, TableBuilder, Value};

    /// `flip`: when true, child.y anticopies parent.x instead of copying.
    fn db(flip: bool) -> Database {
        let mut p = TableBuilder::new("parent").key("id").col("x");
        for i in 0..40i64 {
            p.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 2))]).unwrap();
        }
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        for i in 0..400i64 {
            let target = (i * 7) % 40;
            let y = if flip { 1 - target % 2 } else { target % 2 };
            c.push_row(vec![Cell::Key(i), Cell::Key(target), Cell::Val(Value::Int(y))])
                .unwrap();
        }
        DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap()
    }

    #[test]
    fn refresh_restores_accuracy_after_drift() {
        let old = db(false);
        let new = db(true);
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        let refreshed = refresh_parameters(&prm, &new).unwrap();

        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p).eq(c, "y", 1).eq(p, "x", 0);
        let q = b.build();
        let truth = reldb::result_size(&new, &q).unwrap() as f64;
        assert!(truth > 0.0);

        let stale = PrmEstimator::from_prm(prm.clone(), &new, "stale").unwrap();
        let fresh = PrmEstimator::from_prm(refreshed, &new, "fresh").unwrap();
        let stale_err = (stale.estimate(&q).unwrap() - truth).abs();
        let fresh_err = (fresh.estimate(&q).unwrap() - truth).abs();
        assert!(
            fresh_err < stale_err,
            "fresh={fresh_err} stale={stale_err} truth={truth}"
        );
        assert!(fresh_err / truth < 0.2, "fresh err too large: {fresh_err}");
    }

    #[test]
    fn refresh_preserves_structure_and_size() {
        let old = db(false);
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        let refreshed = refresh_parameters(&prm, &db(true)).unwrap();
        assert_eq!(prm.size_bytes(), refreshed.size_bytes());
        for (a, b) in prm.tables.iter().zip(&refreshed.tables) {
            for (x, y) in a.attrs.iter().zip(&b.attrs) {
                assert_eq!(x.parents, y.parents);
            }
            for (x, y) in a.join_indicators.iter().zip(&b.join_indicators) {
                assert_eq!(x.parents, y.parents);
            }
        }
    }

    #[test]
    fn refresh_on_same_data_is_a_fixed_point() {
        let data = db(false);
        let prm = learn_prm(&data, &PrmLearnConfig::default()).unwrap();
        let refreshed = refresh_parameters(&prm, &data).unwrap();
        let ll_before = model_loglik(&prm, &data).unwrap();
        let ll_after = model_loglik(&refreshed, &data).unwrap();
        assert!((ll_before - ll_after).abs() < 1e-6);
    }

    #[test]
    fn score_tracks_drift() {
        // The paper's relearning trigger: the model score drops sharply
        // when the data stops matching the learned dependencies.
        let old = db(false);
        let new = db(true);
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        let ll_old = model_loglik(&prm, &old).unwrap();
        let ll_new = model_loglik(&prm, &new).unwrap();
        assert!(
            ll_new < ll_old - 1.0,
            "score should decay under drift: old={ll_old} new={ll_new}"
        );
    }

    #[test]
    fn schema_drift_is_rejected() {
        let old = db(false);
        let prm = learn_prm(&old, &PrmLearnConfig::default()).unwrap();
        // A database with a different child domain cardinality.
        let mut p = TableBuilder::new("parent").key("id").col("x");
        for i in 0..4i64 {
            p.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 2))]).unwrap();
        }
        let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
        for i in 0..12i64 {
            c.push_row(vec![
                Cell::Key(i),
                Cell::Key(i % 4),
                Cell::Val(Value::Int(i % 3)),
            ])
            .unwrap();
        }
        let drifted = DatabaseBuilder::new()
            .add_table(p.finish().unwrap())
            .add_table(c.finish().unwrap())
            .finish()
            .unwrap();
        assert!(refresh_parameters(&prm, &drifted).is_err());
    }
}
