//! Correctness contract of the incremental-maintenance path (paper §6):
//!
//! * **Delta refit ≡ scratch refresh** — for any sequence of row
//!   mutations, folding the diff into a [`DeltaState`] and refitting
//!   must produce the same parameters as [`refresh_parameters`] run
//!   against the mutated database from scratch (counts are integers, so
//!   the two paths perform identical floating-point work).
//! * **Score is thread-count invariant** — `model_loglik` fans out in
//!   fixed-size chunks; `PRMSEL_THREADS=1` and `=4` must agree bitwise,
//!   or the drift watchdog would see phantom decay after a deployment
//!   changes core counts.
//! * **The repair loop is fault-isolated** — a failing or panicking
//!   maintenance cycle leaves the old epoch serving and raises a
//!   critical alert; the next healthy cycle swaps and resolves it.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use prmsel::{
    model_loglik, refresh_parameters, DeltaState, MaintainOptions, Maintainer,
    PrmEstimator, SelectivityEstimator, UpdateBatch,
};
use proptest::prelude::*;
use reldb::{Cell, Database, DatabaseBuilder, Query, TableBuilder, Value};

/// Serializes tests that touch process-global state (failpoints,
/// watchdog alerts, worker counts).
fn with_global_lock<R>(f: impl FnOnce() -> R) -> R {
    static LOCK: Mutex<()> = Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    failpoint::clear();
    let out = f();
    failpoint::clear();
    out
}

const N_PARENT: usize = 24;

/// Two tables, fixed schema and domains: parent(x ∈ 0..3) with
/// `N_PARENT` rows, child(y ∈ 0..2, fk → parent). The first rows
/// enumerate every domain value so old and new databases always share
/// dictionaries (domain drift is a schema change, rejected elsewhere).
fn two_table_db(parent_x: &[u32], child_rows: &[(u32, i64)]) -> Database {
    assert_eq!(parent_x.len(), N_PARENT);
    let mut p = TableBuilder::new("parent").key("id").col("x");
    for (i, &x) in parent_x.iter().enumerate() {
        let x = if i < 3 { i as u32 % 3 } else { x % 3 };
        p.push_row(vec![Cell::Key(i as i64), Cell::Val(Value::Int(x as i64))]).unwrap();
    }
    let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
    for (i, &(y, target)) in child_rows.iter().enumerate() {
        let y = if i < 2 { i as u32 % 2 } else { y % 2 };
        c.push_row(vec![
            Cell::Key(i as i64),
            Cell::Key(target.rem_euclid(N_PARENT as i64)),
            Cell::Val(Value::Int(y as i64)),
        ])
        .unwrap();
    }
    DatabaseBuilder::new()
        .add_table(p.finish().unwrap())
        .add_table(c.finish().unwrap())
        .finish()
        .unwrap()
}

fn base_parent_x() -> Vec<u32> {
    (0..N_PARENT as u32).map(|i| i % 3).collect()
}

fn base_child_rows() -> Vec<(u32, i64)> {
    (0..150i64).map(|i| ((((i * 7) % 24) % 2) as u32, (i * 7) % 24)).collect()
}

/// The model under maintenance, learned once: every proptest case
/// reuses it (learning is the expensive part; the property is about the
/// delta path, not the learner).
fn learned() -> &'static (Database, prmsel::Prm) {
    static MODEL: OnceLock<(Database, prmsel::Prm)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let db = two_table_db(&base_parent_x(), &base_child_rows());
        let prm = prmsel::learn_prm(&db, &prmsel::PrmLearnConfig::default()).unwrap();
        (db, prm)
    })
}

fn decode(mut idx: usize, cards: &[usize]) -> Vec<u32> {
    let mut config = vec![0u32; cards.len()];
    for k in (0..cards.len()).rev() {
        config[k] = (idx % cards[k]) as u32;
        idx /= cards[k];
    }
    config
}

/// Asserts the incremental refit matches the scratch refresh: row
/// counts exactly, every CPD cell and join-indicator probability within
/// 1e-12 (they are bit-identical in practice — both paths divide the
/// same integer counts — but the contract we document is 1e-12).
fn assert_models_match(incr: &prmsel::Prm, scratch: &prmsel::Prm) {
    for (ti, (a, b)) in incr.tables.iter().zip(&scratch.tables).enumerate() {
        assert_eq!(a.n_rows, b.n_rows, "table {ti} row count");
        for (ai, (xa, xb)) in a.attrs.iter().zip(&b.attrs).enumerate() {
            let cards = xa.cpd.parent_cards().to_vec();
            let n_configs: usize = cards.iter().product::<usize>().max(1);
            for idx in 0..n_configs {
                let config = decode(idx, &cards);
                for (pa, pb) in xa.cpd.dist(&config).iter().zip(xb.cpd.dist(&config)) {
                    assert!(
                        (pa - pb).abs() <= 1e-12,
                        "table {ti} attr {ai} config {config:?}: {pa} vs {pb}"
                    );
                }
            }
        }
        for (ji_a, ji_b) in a.join_indicators.iter().zip(&b.join_indicators) {
            assert_eq!(ji_a.p_true.len(), ji_b.p_true.len());
            for (pa, pb) in ji_a.p_true.iter().zip(&ji_b.p_true) {
                assert!((pa - pb).abs() <= 1e-12, "join indicator: {pa} vs {pb}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // For arbitrary mutations — parent attribute rewrites (which fan
    // out to child join statistics), child inserts, deletes, and value
    // changes — the O(batch) delta refit equals the O(database) scratch
    // refresh.
    #[test]
    fn delta_refit_matches_scratch_refresh(
        new_parent in proptest::collection::vec(0u32..3, N_PARENT),
        new_children in proptest::collection::vec((0u32..2, 0i64..N_PARENT as i64), 80..220),
    ) {
        let (old_db, prm) = learned();
        let new_db = two_table_db(&new_parent, &new_children);

        let mut state = DeltaState::build(prm, old_db).unwrap();
        let batch = UpdateBatch::diff(old_db, &new_db).unwrap();
        state.apply(&batch).unwrap();

        let incr = state.refit(prm).unwrap();
        let scratch = refresh_parameters(prm, &new_db).unwrap();
        assert_models_match(&incr, &scratch);
    }
}

#[test]
fn model_loglik_is_bit_identical_across_thread_counts() {
    with_global_lock(|| {
        // Enough rows to span several 8192-row scoring chunks.
        let children: Vec<(u32, i64)> = (0..20_000i64)
            .map(|i| ((((i * 13) % 24) % 2) as u32, (i * 13) % 24))
            .collect();
        let db = two_table_db(&base_parent_x(), &children);
        let prm = prmsel::learn_prm(&db, &prmsel::PrmLearnConfig::default()).unwrap();
        let mut scores = Vec::new();
        for threads in [1usize, 4] {
            par::set_threads(Some(threads));
            scores.push(model_loglik(&prm, &db).unwrap());
            par::set_threads(None);
        }
        assert_eq!(
            scores[0].to_bits(),
            scores[1].to_bits(),
            "1-thread {} vs 4-thread {}",
            scores[0],
            scores[1]
        );
    });
}

fn probe_query() -> Query {
    let mut b = Query::builder();
    let c = b.var("child");
    let p = b.var("parent");
    b.join(c, "parent", p).eq(c, "y", 1).eq(p, "x", 0);
    b.build()
}

#[test]
fn maintainer_applies_batches_and_hot_swaps() {
    with_global_lock(|| {
        let (old_db, prm) = learned();
        let est = Arc::new(PrmEstimator::from_prm(prm.clone(), old_db, "PRM").unwrap());
        let state = DeltaState::build(prm, old_db).unwrap();
        let seq0 = est.epoch_seq();

        // Children of even parents flip their y value: parameters drift,
        // structure does not.
        let children: Vec<(u32, i64)> = (0..150i64)
            .map(|i| {
                let t = (i * 7) % 24;
                (if t % 2 == 0 { 1 - ((t % 2) as u32) } else { (t % 2) as u32 }, t)
            })
            .collect();
        let new_db = two_table_db(&base_parent_x(), &children);
        let batch = UpdateBatch::diff(old_db, &new_db).unwrap();

        let maintainer = Maintainer::spawn(
            est.clone(),
            state,
            MaintainOptions { drift_relearn: Some(f64::INFINITY), ..Default::default() },
        );
        assert!(maintainer.submit(batch));
        maintainer.flush();
        assert_eq!(est.epoch_seq(), seq0 + 1, "one batch, one swap");

        // The swapped epoch answers like a from-scratch refresh.
        let scratch = refresh_parameters(prm, &new_db).unwrap();
        let fresh = PrmEstimator::from_prm(scratch, &new_db, "fresh").unwrap();
        let q = probe_query();
        assert_eq!(
            est.estimate(&q).unwrap().to_bits(),
            fresh.estimate(&q).unwrap().to_bits()
        );
        maintainer.shutdown();
    });
}

#[test]
fn failed_swap_leaves_old_epoch_serving_and_raises_alert() {
    with_global_lock(|| {
        let (old_db, prm) = learned();
        let est = Arc::new(PrmEstimator::from_prm(prm.clone(), old_db, "PRM").unwrap());
        let state = DeltaState::build(prm, old_db).unwrap();
        let q = probe_query();
        let baseline = est.estimate(&q).unwrap();
        let seq0 = est.epoch_seq();

        let maintainer = Maintainer::spawn(
            est.clone(),
            state,
            MaintainOptions { drift_relearn: Some(f64::INFINITY), ..Default::default() },
        );

        // A panic at the swap site must not take the serving path down:
        // the epoch stays, estimates keep answering, the operator hears
        // about it through a critical alert.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        failpoint::arm("maintain.swap", failpoint::Action::Panic);
        assert!(maintainer.refit_now());
        maintainer.flush();
        failpoint::disarm("maintain.swap");
        std::panic::set_hook(hook);

        assert_eq!(est.epoch_seq(), seq0, "failed cycle must not publish");
        assert_eq!(est.estimate(&q).unwrap().to_bits(), baseline.to_bits());
        assert!(
            obs::watchdog::firing_critical()
                .iter()
                .any(|a| a.metric == "prm.maintain.failed"),
            "rejected cycle raises a critical alert"
        );

        // The next healthy cycle swaps and clears the alert.
        assert!(maintainer.refit_now());
        maintainer.flush();
        assert_eq!(est.epoch_seq(), seq0 + 1);
        assert!(
            !obs::watchdog::firing_critical()
                .iter()
                .any(|a| a.metric == "prm.maintain.failed"),
            "healthy cycle resolves the alert"
        );
        maintainer.shutdown();
    });
}

#[test]
fn corrupted_apply_rejects_followup_cycles_until_rebuilt() {
    with_global_lock(|| {
        let (old_db, prm) = learned();
        let est = Arc::new(PrmEstimator::from_prm(prm.clone(), old_db, "PRM").unwrap());
        let mut state = DeltaState::build(prm, old_db).unwrap();
        state.mark_corrupt();
        let seq0 = est.epoch_seq();
        let maintainer =
            Maintainer::spawn(est.clone(), state, MaintainOptions::default());
        assert!(maintainer.refit_now());
        maintainer.flush();
        assert_eq!(est.epoch_seq(), seq0, "corrupt state must never publish");
        maintainer.shutdown();

        // A rebuilt state recovers the loop.
        let rebuilt = DeltaState::build(prm, old_db).unwrap();
        let maintainer =
            Maintainer::spawn(est.clone(), rebuilt, MaintainOptions::default());
        assert!(maintainer.refit_now());
        maintainer.flush();
        assert_eq!(est.epoch_seq(), seq0 + 1);
        maintainer.shutdown();
    });
}
