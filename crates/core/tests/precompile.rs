//! Ahead-of-time plan precompilation: a manifest of recent `PlanKey`s
//! round-trips through `save_manifest`/`load_manifest`, `precompile`
//! makes first touches plan-cache hits, and precompiled answers are
//! bit-identical to organically compiled ones.
//!
//! `PRMSEL_PRECOMPILE` is process-global, so env-touching tests
//! serialize on one lock.

use prmsel::{
    load_manifest, save_manifest, PrmEstimator, PrmLearnConfig, SelectivityEstimator,
};
use reldb::{Cell, Database, DatabaseBuilder, Query, TableBuilder, Value};

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny_db() -> Database {
    let mut acct = TableBuilder::new("account").key("id").col("tier");
    let mut tx = TableBuilder::new("tx").key("id").fk("account", "account").col("kind");
    for i in 0..8i64 {
        acct.push_row(vec![Cell::Key(i), Cell::Val(Value::Int(i % 2))]).unwrap();
    }
    for i in 0..64i64 {
        tx.push_row(vec![Cell::Key(i), Cell::Key(i % 8), Cell::Val(Value::Int(i % 3))])
            .unwrap();
    }
    DatabaseBuilder::new()
        .add_table(acct.finish().unwrap())
        .add_table(tx.finish().unwrap())
        .finish()
        .unwrap()
}

fn join_query(kind: i64) -> Query {
    let mut b = Query::builder();
    let t = b.var("tx");
    let a = b.var("account");
    b.join(t, "account", a).eq(a, "tier", 1).eq(t, "kind", kind);
    b.build()
}

fn select_query(tier: i64) -> Query {
    let mut b = Query::builder();
    let a = b.var("account");
    b.eq(a, "tier", tier);
    b.build()
}

#[test]
fn precompiled_first_touch_hits_the_plan_cache_and_matches_bits() {
    let _serial = serialized();
    let db = tiny_db();
    let warm = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");
    let expect_join = warm.estimate(&join_query(0)).expect("join");
    let expect_sel = warm.estimate(&select_query(1)).expect("select");
    assert_eq!(warm.plan_keys().len(), 2, "two templates resident");

    // Manifest round-trip through bytes, exactly as the CLI would do it.
    let mut buf = Vec::new();
    save_manifest(&warm.plan_keys(), &mut buf).expect("save manifest");
    let keys = load_manifest(buf.as_slice()).expect("load manifest");
    assert_eq!(keys.len(), 2);

    let reg = obs::registry();
    let pre_0 = reg.counter("prm.plan.precompiled").get();
    let cold = PrmEstimator::from_parts(
        warm.epoch().prm.clone(),
        warm.epoch().schema.clone(),
        "PRM",
    );
    assert_eq!(cold.plan_cache_len(), 0);
    assert_eq!(cold.precompile(&keys), 2, "both templates compile");
    assert_eq!(reg.counter("prm.plan.precompiled").get() - pre_0, 2);
    assert!(cold.has_cached_plan(&join_query(5)), "any constant, same template");
    assert!(cold.has_cached_plan(&select_query(0)));

    let hit_0 = reg.counter("prm.plan.hit").get();
    let got_join = cold.estimate(&join_query(0)).expect("join");
    let got_sel = cold.estimate(&select_query(1)).expect("select");
    assert_eq!(reg.counter("prm.plan.hit").get() - hit_0, 2, "first touches hit");
    assert_eq!(got_join.to_bits(), expect_join.to_bits());
    assert_eq!(got_sel.to_bits(), expect_sel.to_bits());

    // Re-precompiling resident templates is a no-op.
    assert_eq!(cold.precompile(&keys), 0);
}

#[test]
fn memo_cleared_replay_stays_bit_identical() {
    let _serial = serialized();
    let est = PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
    let q = join_query(1);
    let first = est.estimate(&q).expect("cold");
    let warm = est.estimate(&q).expect("warm");
    est.clear_reduce_memos();
    assert_eq!(est.reduce_memo_len(&q), Some(0), "memo dropped, plan kept");
    let reg = obs::registry();
    let miss_0 = reg.counter("prm.plan.reduce.miss").get();
    let replay = est.estimate(&q).expect("miss replay");
    assert_eq!(reg.counter("prm.plan.reduce.miss").get() - miss_0, 1);
    assert_eq!(first.to_bits(), warm.to_bits());
    assert_eq!(first.to_bits(), replay.to_bits(), "masked replay must match");
}

#[test]
fn env_manifest_precompiles_on_load_and_survives_garbage() {
    let _serial = serialized();
    let db = tiny_db();
    let warm = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");
    warm.estimate(&join_query(0)).expect("prime");

    let dir =
        std::env::temp_dir().join(format!("prmsel-precompile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("manifest.bin");
    let mut f = std::fs::File::create(&path).expect("create");
    save_manifest(&warm.plan_keys(), &mut f).expect("save");
    drop(f);

    struct Unset;
    impl Drop for Unset {
        fn drop(&mut self) {
            std::env::remove_var("PRMSEL_PRECOMPILE");
        }
    }
    let _unset = Unset;
    std::env::set_var("PRMSEL_PRECOMPILE", &path);
    let est = PrmEstimator::from_parts(
        warm.epoch().prm.clone(),
        warm.epoch().schema.clone(),
        "PRM",
    );
    assert!(est.has_cached_plan(&join_query(2)), "env manifest precompiled");

    // A corrupt manifest must degrade to a cold cache, not an error.
    std::fs::write(&path, b"not a manifest").expect("overwrite");
    let est = PrmEstimator::from_parts(
        warm.epoch().prm.clone(),
        warm.epoch().schema.clone(),
        "PRM",
    );
    assert_eq!(est.plan_cache_len(), 0, "corrupt manifest is skipped");
    est.estimate(&join_query(0)).expect("still estimates");
    let _ = std::fs::remove_dir_all(&dir);
}
