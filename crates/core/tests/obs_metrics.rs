//! Integration test for the observability wiring: building a PRM and
//! running estimates must leave the expected traces in the process-global
//! metrics registry.
//!
//! The registry is shared across the whole process, so every assertion is
//! a *delta* against a snapshot taken before the workload — absolute
//! values would couple this test to execution order.

use prmsel::{PrmEstimator, PrmLearnConfig, SelectivityEstimator};
use reldb::{Cell, Database, DatabaseBuilder, Query, TableBuilder, Value};

fn tiny_db() -> Database {
    let mut p = TableBuilder::new("parent").key("id").col("x");
    for (id, x) in [(0, 0i64), (1, 1), (2, 0), (3, 1)] {
        p.push_row(vec![Cell::Key(id), Cell::Val(Value::Int(x))]).unwrap();
    }
    let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
    for (id, pa, y) in [
        (0, 0, 0i64),
        (1, 0, 1),
        (2, 1, 0),
        (3, 2, 1),
        (4, 3, 0),
        (5, 3, 1),
        (6, 1, 0),
        (7, 2, 1),
    ] {
        c.push_row(vec![Cell::Key(id), Cell::Key(pa), Cell::Val(Value::Int(y))]).unwrap();
    }
    DatabaseBuilder::new()
        .add_table(p.finish().unwrap())
        .add_table(c.finish().unwrap())
        .finish()
        .unwrap()
}

#[test]
fn build_and_estimate_increment_the_expected_metrics() {
    let reg = obs::registry();
    let calls_before = reg.counter("prm.estimate.calls").get();
    let ns_before = reg.histogram("prm.estimate.ns").count();
    let qebn_before = reg.histogram("prm.qebn.nodes").count();

    let db = tiny_db();
    let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");

    // The built model reports its size.
    assert!(reg.gauge("prm.model.bytes").get() > 0.0, "model bytes gauge unset");
    // The build phase ran under a span that records its latency.
    assert!(
        reg.histogram("span.prm.build.ns").count() > 0,
        "prm.build span not recorded"
    );

    // Run a few estimates: single-table and join queries.
    let mut b = Query::builder();
    let c = b.var("child");
    b.eq(c, "y", 0);
    est.estimate(&b.build()).expect("estimate");

    let mut b = Query::builder();
    let c = b.var("child");
    let p = b.var("parent");
    b.join(c, "parent", p).eq(p, "x", 1);
    est.estimate(&b.build()).expect("estimate");

    let calls = reg.counter("prm.estimate.calls").get() - calls_before;
    assert_eq!(calls, 2, "each estimate() call must count once");
    assert_eq!(
        reg.histogram("prm.estimate.ns").count() - ns_before,
        2,
        "each estimate() call must record a latency sample"
    );
    let qebn = reg.histogram("prm.qebn.nodes").count() - qebn_before;
    assert_eq!(qebn, 2, "each estimate() call must record the QEBN node count");
    // The join query unrolls at least child.y, parent.x and one join
    // indicator, so the QEBN histogram must have seen a value ≥ 3.
    assert!(
        reg.histogram("prm.qebn.nodes").snapshot().max >= 3,
        "join QEBN should have at least 3 nodes"
    );
}

#[test]
fn suite_evaluation_drives_executor_and_quality_metrics() {
    let reg = obs::registry();
    let exec_before = reg.counter("reldb.exec.queries").get();
    let rows_before = reg.counter("reldb.exec.rows_scanned").get();
    let quality_before = reg.histogram("quality.adj_rel_err_pct").count();

    let db = tiny_db();
    let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");

    let mut b = Query::builder();
    let c = b.var("child");
    b.eq(c, "y", 1);
    let suite = [b.build()];
    let eval = prmsel::metrics::evaluate_suite(&db, &est, &suite).expect("evaluate");
    assert_eq!(eval.len(), 1);

    // Ground truth ran through the relational executor...
    assert_eq!(reg.counter("reldb.exec.queries").get() - exec_before, 1);
    // ...scanning the 8 child rows once...
    assert_eq!(reg.counter("reldb.exec.rows_scanned").get() - rows_before, 8);
    // ...and the (truth, estimate) pair landed in the quality histogram.
    assert_eq!(reg.histogram("quality.adj_rel_err_pct").count() - quality_before, 1);
}

#[test]
fn histogram_snapshots_expose_quantiles_in_both_renderings() {
    let reg = obs::registry();
    for v in 1..=100u64 {
        reg.histogram("test.obs.quantiles.ns").record(v);
    }
    let snap = reg.snapshot();
    let h = snap.histogram("test.obs.quantiles.ns").expect("histogram");
    // Log₂ buckets: quantiles are upper bucket bounds, so they order
    // monotonically but may overshoot the exact max by one bucket.
    assert!(h.p50() >= 50 && h.p50() <= h.p90());
    assert!(h.p90() <= h.p99() && h.p99() <= h.max.next_power_of_two() * 2);
    let json = snap.to_json();
    for key in ["\"p50\"", "\"p90\"", "\"p99\""] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    let pretty = snap.to_pretty();
    assert!(pretty.contains("p50="), "{pretty}");
}

#[test]
fn plan_cache_hits_refresh_the_hit_ratio_gauge() {
    let reg = obs::registry();
    let db = tiny_db();
    let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");

    let mut b = Query::builder();
    let c = b.var("child");
    b.eq(c, "y", 0);
    let q = b.build();
    est.estimate(&q).expect("estimate"); // miss + compile
    est.estimate(&q).expect("estimate"); // hit

    // Counters move under concurrent tests, so assert the refreshed
    // gauge is a sane fraction rather than an exact quotient.
    let ratio = reg.gauge("prm.plan.hit_ratio").get();
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "hit ratio must be a refreshed fraction, got {ratio}"
    );
    assert!(
        reg.snapshot().to_json().contains("\"prm.plan.hit_ratio\""),
        "gauge must appear in the snapshot"
    );
}

/// Strict LRU at the default capacity (64): the 65th distinct template
/// evicts exactly the least-recently-used one, and the counter sees it.
#[test]
fn plan_cache_evicts_least_recently_used_at_capacity_64() {
    // A single table with 7 binary attributes gives 127 distinct
    // single-table templates (non-empty predicate-attribute subsets).
    let mut t = TableBuilder::new("wide").key("id");
    for i in 0..7 {
        t = t.col(format!("a{i}"));
    }
    for id in 0..32i64 {
        let mut row = vec![Cell::Key(id)];
        for i in 0..7 {
            row.push(Cell::Val(Value::Int((id >> i) & 1)));
        }
        t.push_row(row).unwrap();
    }
    let db = DatabaseBuilder::new().add_table(t.finish().unwrap()).finish().unwrap();
    let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");
    est.set_plan_cache_capacity(64);

    // 65 distinct templates, estimated in order.
    let templates: Vec<Query> = (1u32..=65)
        .map(|mask| {
            let mut b = Query::builder();
            let v = b.var("wide");
            for i in 0..7 {
                if mask & (1 << i) != 0 {
                    b.eq(v, format!("a{i}"), 0);
                }
            }
            b.build()
        })
        .collect();
    let evict_before = obs::registry().counter("prm.plan.evict").get();
    for q in &templates {
        est.estimate(q).expect("estimate");
    }
    assert_eq!(est.plan_cache_len(), 64, "cache must sit exactly at capacity");
    assert_eq!(
        obs::registry().counter("prm.plan.evict").get() - evict_before,
        1,
        "filling to 65 distinct templates evicts exactly once"
    );
    // The first (least recently used) template went; every later one stays.
    assert!(!est.has_cached_plan(&templates[0]), "LRU template must be evicted");
    for q in &templates[1..] {
        assert!(est.has_cached_plan(q), "recently used templates must stay resident");
    }
    // Touching a survivor then overflowing again evicts the next-oldest,
    // not the survivor.
    est.estimate(&templates[1]).expect("estimate");
    est.estimate(&templates[0]).expect("estimate"); // re-compiles, evicts [2]
    assert!(est.has_cached_plan(&templates[1]), "refreshed plan must survive");
    assert!(!est.has_cached_plan(&templates[2]), "next-oldest plan must be evicted");
}

#[test]
fn estimate_batch_picks_serial_or_parallel_by_cost() {
    let reg = obs::registry();
    let db = tiny_db();
    let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");
    let queries: Vec<Query> = (0..6)
        .map(|i| {
            let mut b = Query::builder();
            let c = b.var("child");
            b.eq(c, "y", i % 2);
            b.build()
        })
        .collect();

    // An unreachable threshold keeps the whole batch on this thread.
    let serial_before = reg.counter("par.batch.serial").get();
    let serial =
        prmsel::estimate_batch_with_threshold(&est, &queries, u64::MAX).expect("batch");
    assert_eq!(serial.len(), queries.len());
    assert_eq!(reg.counter("par.batch.serial").get() - serial_before, 1);

    // Threshold 0 projects every batch as worth fanning out — but a
    // one-worker pool still short-circuits to serial.
    let par_before = reg.counter("par.batch.parallel").get();
    let s_before = reg.counter("par.batch.serial").get();
    let fanned = prmsel::estimate_batch_with_threshold(&est, &queries, 0).expect("batch");
    assert_eq!(fanned, serial, "both paths must return identical estimates");
    if par::threads() > 1 {
        assert_eq!(reg.counter("par.batch.parallel").get() - par_before, 1);
    } else {
        assert_eq!(reg.counter("par.batch.serial").get() - s_before, 1);
    }
}

#[test]
fn flight_recorder_captures_phases_steps_and_quality() {
    let db = tiny_db();
    let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");
    let mut b = Query::builder();
    let c = b.var("child");
    let p = b.var("parent");
    b.join(c, "parent", p).eq(p, "x", 1);
    let q = b.build();

    obs::flight::set_recording(true);
    let e1 = est.estimate(&q).expect("estimate");
    let cold_id = obs::flight::last_finished_id();
    let e2 = est.estimate(&q).expect("estimate");
    let warm_id = obs::flight::last_finished_id();
    // Quality attaches to the last-finished (warm) trace on this thread.
    prmsel::record_quality(3, e2);
    obs::flight::set_recording(false);
    assert_eq!(e1, e2, "cached replay must be bit-identical");

    let cold = obs::flight::ring().find(cold_id).expect("cold trace in ring");
    let warm = obs::flight::ring().find(warm_id).expect("warm trace in ring");
    assert_ne!(cold.id, warm.id);
    assert!(cold.label.contains("JOIN"), "label describes the query: {}", cold.label);

    // Cold trace: miss, compile + execution phases, elimination steps.
    assert_eq!(cold.plan_hit, Some(false));
    let names: Vec<&str> = cold.phases.iter().map(|p| p.name).collect();
    for want in ["plan", "compile", "decode", "reduce", "eliminate"] {
        assert!(names.contains(&want), "cold phases {names:?} missing {want}");
    }
    assert!(!cold.elim_steps.is_empty(), "join query must record elimination steps");
    assert!(cold.elim_steps.iter().all(|s| s.width >= 1));
    assert_eq!(cold.estimate, Some(e1));
    assert!(cold.total_ns > 0);

    // Warm trace: hit, no compile phase, quality attached.
    assert_eq!(warm.plan_hit, Some(true));
    assert!(warm.phases.iter().all(|p| p.name != "compile"), "replay must not compile");
    assert_eq!(warm.truth, Some(3));
    let q_err = warm.q_error.expect("q-error attached");
    assert!(q_err >= 1.0);

    // Both traces export well-formed Chrome events.
    let json = obs::flight::to_chrome_trace(&[cold.clone(), warm.clone()]);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.matches("\"ph\":\"X\"").count() >= cold.chrome_event_count());
}

#[test]
fn quality_recording_feeds_the_error_histograms() {
    let reg = obs::registry();
    let before = reg.histogram("quality.adj_rel_err_pct").count();
    let q_before = reg.histogram("quality.qerror_milli").count();

    prmsel::metrics::record_quality(100, 150.0);
    prmsel::metrics::record_quality(100, 100.0);

    assert_eq!(reg.histogram("quality.adj_rel_err_pct").count() - before, 2);
    assert_eq!(reg.histogram("quality.qerror_milli").count() - q_before, 2);
    // 50% error and q-error 1.5 both land in the snapshot's max.
    assert!(reg.histogram("quality.adj_rel_err_pct").snapshot().max >= 50);
    assert!(reg.histogram("quality.qerror_milli").snapshot().max >= 1500);
}

#[test]
fn reduce_memo_counters_track_miss_then_hit() {
    let reg = obs::registry();
    let est = PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
    let mut b = Query::builder();
    let c = b.var("child");
    b.eq(c, "y", 0);
    let q = b.build();

    let miss_before = reg.counter("prm.plan.reduce.miss").get();
    est.estimate(&q).expect("cold estimate");
    assert!(
        reg.counter("prm.plan.reduce.miss").get() > miss_before,
        "first sight of a constant signature must count a reduce miss"
    );
    let hits_before = reg.counter("prm.plan.reduce.hit").get();
    let miss_mid = reg.counter("prm.plan.reduce.miss").get();
    est.estimate(&q).expect("warm estimate");
    assert!(
        reg.counter("prm.plan.reduce.hit").get() > hits_before,
        "repeating the constants must count a reduce hit"
    );
    assert_eq!(
        reg.counter("prm.plan.reduce.miss").get(),
        miss_mid,
        "a memo hit must not also count a miss"
    );
}

#[test]
fn pool_dispatch_latency_is_recorded() {
    let before = obs::registry().histogram("par.pool.dispatch.ns").count();
    // Force a parallel region wide enough to enqueue jobs on the
    // persistent pool (the caller runs chunk 0 inline, the rest are
    // dispatched and must each record an enqueue→dequeue latency).
    let sums = par::chunks_with(2, 64, |r| r.len());
    assert_eq!(sums.iter().sum::<usize>(), 64);
    if par::threads() > 1 {
        assert!(
            obs::registry().histogram("par.pool.dispatch.ns").count() > before,
            "pool jobs must record dispatch latency"
        );
    }
}

#[test]
fn likelihood_weighting_materializes_each_cpd_once_per_estimate() {
    use prmsel::InferenceEngine;
    let reg = obs::registry();
    let db = tiny_db();
    let mut est = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");
    est.set_engine(InferenceEngine::LikelihoodWeighting { samples: 500, seed: 42 });

    let mut b = Query::builder();
    let c = b.var("child");
    let p = b.var("parent");
    b.join(c, "parent", p).eq(p, "x", 1);
    let q = b.build();

    let before = reg.counter("bn.factor.materialize").get();
    est.estimate(&q).expect("LW estimate");
    let per_estimate = reg.counter("bn.factor.materialize").get() - before;
    est.estimate(&q).expect("second LW estimate");
    let second = reg.counter("bn.factor.materialize").get() - before - per_estimate;

    // 500 samples over a ≥2-node unrolled network (parent.x plus the join
    // indicator): without the CPD factor cache this would be ≥ 1000
    // materializations per call. With it, each node materializes once per
    // unrolled network.
    assert!(per_estimate >= 2, "join QEBN has at least 2 nodes, got {per_estimate}");
    assert!(
        per_estimate <= 16,
        "materializations must be per-node, not per-sample: {per_estimate}"
    );
    assert_eq!(second, per_estimate, "each estimate materializes the same node set");
}
