//! Integration test for the observability wiring: building a PRM and
//! running estimates must leave the expected traces in the process-global
//! metrics registry.
//!
//! The registry is shared across the whole process, so every assertion is
//! a *delta* against a snapshot taken before the workload — absolute
//! values would couple this test to execution order.

use prmsel::{PrmEstimator, PrmLearnConfig, SelectivityEstimator};
use reldb::{Cell, Database, DatabaseBuilder, Query, TableBuilder, Value};

fn tiny_db() -> Database {
    let mut p = TableBuilder::new("parent").key("id").col("x");
    for (id, x) in [(0, 0i64), (1, 1), (2, 0), (3, 1)] {
        p.push_row(vec![Cell::Key(id), Cell::Val(Value::Int(x))]).unwrap();
    }
    let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
    for (id, pa, y) in [
        (0, 0, 0i64),
        (1, 0, 1),
        (2, 1, 0),
        (3, 2, 1),
        (4, 3, 0),
        (5, 3, 1),
        (6, 1, 0),
        (7, 2, 1),
    ] {
        c.push_row(vec![Cell::Key(id), Cell::Key(pa), Cell::Val(Value::Int(y))]).unwrap();
    }
    DatabaseBuilder::new()
        .add_table(p.finish().unwrap())
        .add_table(c.finish().unwrap())
        .finish()
        .unwrap()
}

#[test]
fn build_and_estimate_increment_the_expected_metrics() {
    let reg = obs::registry();
    let calls_before = reg.counter("prm.estimate.calls").get();
    let ns_before = reg.histogram("prm.estimate.ns").count();
    let qebn_before = reg.histogram("prm.qebn.nodes").count();

    let db = tiny_db();
    let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");

    // The built model reports its size.
    assert!(reg.gauge("prm.model.bytes").get() > 0.0, "model bytes gauge unset");
    // The build phase ran under a span that records its latency.
    assert!(
        reg.histogram("span.prm.build.ns").count() > 0,
        "prm.build span not recorded"
    );

    // Run a few estimates: single-table and join queries.
    let mut b = Query::builder();
    let c = b.var("child");
    b.eq(c, "y", 0);
    est.estimate(&b.build()).expect("estimate");

    let mut b = Query::builder();
    let c = b.var("child");
    let p = b.var("parent");
    b.join(c, "parent", p).eq(p, "x", 1);
    est.estimate(&b.build()).expect("estimate");

    let calls = reg.counter("prm.estimate.calls").get() - calls_before;
    assert_eq!(calls, 2, "each estimate() call must count once");
    assert_eq!(
        reg.histogram("prm.estimate.ns").count() - ns_before,
        2,
        "each estimate() call must record a latency sample"
    );
    let qebn = reg.histogram("prm.qebn.nodes").count() - qebn_before;
    assert_eq!(qebn, 2, "each estimate() call must record the QEBN node count");
    // The join query unrolls at least child.y, parent.x and one join
    // indicator, so the QEBN histogram must have seen a value ≥ 3.
    assert!(
        reg.histogram("prm.qebn.nodes").snapshot().max >= 3,
        "join QEBN should have at least 3 nodes"
    );
}

#[test]
fn suite_evaluation_drives_executor_and_quality_metrics() {
    let reg = obs::registry();
    let exec_before = reg.counter("reldb.exec.queries").get();
    let rows_before = reg.counter("reldb.exec.rows_scanned").get();
    let quality_before = reg.histogram("quality.adj_rel_err_pct").count();

    let db = tiny_db();
    let est = PrmEstimator::build(&db, &PrmLearnConfig::default()).expect("build");

    let mut b = Query::builder();
    let c = b.var("child");
    b.eq(c, "y", 1);
    let suite = [b.build()];
    let eval = prmsel::metrics::evaluate_suite(&db, &est, &suite).expect("evaluate");
    assert_eq!(eval.len(), 1);

    // Ground truth ran through the relational executor...
    assert_eq!(reg.counter("reldb.exec.queries").get() - exec_before, 1);
    // ...scanning the 8 child rows once...
    assert_eq!(reg.counter("reldb.exec.rows_scanned").get() - rows_before, 8);
    // ...and the (truth, estimate) pair landed in the quality histogram.
    assert_eq!(reg.histogram("quality.adj_rel_err_pct").count() - quality_before, 1);
}

#[test]
fn quality_recording_feeds_the_error_histograms() {
    let reg = obs::registry();
    let before = reg.histogram("quality.adj_rel_err_pct").count();
    let q_before = reg.histogram("quality.qerror_milli").count();

    prmsel::metrics::record_quality(100, 150.0);
    prmsel::metrics::record_quality(100, 100.0);

    assert_eq!(reg.histogram("quality.adj_rel_err_pct").count() - before, 2);
    assert_eq!(reg.histogram("quality.qerror_milli").count() - q_before, 2);
    // 50% error and q-error 1.5 both land in the snapshot's max.
    assert!(reg.histogram("quality.adj_rel_err_pct").snapshot().max >= 50);
    assert!(reg.histogram("quality.qerror_milli").snapshot().max >= 1500);
}
