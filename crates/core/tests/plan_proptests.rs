//! Determinism guarantees of the compiled-plan online path: for any
//! model, query, and thread count, plan-cached estimates must be
//! **bit-identical** (`f64::to_bits`) to the uncached
//! `QueryEvalBn::build` + `estimated_size` pipeline — the plan layer is
//! a pure evaluation-order-preserving refactoring, never an
//! approximation. Plus unit tests for the LRU policy and cache
//! invalidation on model reload.

use bayesnet::TableCpd;
use prmsel::prm::{
    AttrModel, JiParentRef, JoinIndicatorModel, ParentRef, Prm, TableModel,
};
use prmsel::schema::{FkInfo, SchemaInfo, TableInfo};
use prmsel::{estimate_batch, PrmEstimator, SelectivityEstimator};
use proptest::prelude::*;
use reldb::{Domain, Query, Value};

/// Serializes tests that force the process-wide worker count.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    par::set_threads(Some(n));
    let out = f();
    par::set_threads(None);
    out
}

/// A random two-table PRM: parent(x0, x1 ← x0), child(y0 maybe ←
/// parent.x0, y1 maybe ← y0) and a join indicator with random parents.
/// No referential-integrity calibration — bit-identity holds for any
/// parameterization, calibrated or not.
fn arb_prm() -> impl Strategy<Value = (Prm, SchemaInfo)> {
    (
        proptest::collection::vec(1u32..100, 64),
        any::<bool>(), // y1 ← y0
        any::<bool>(), // y0 ← parent.x0
        any::<bool>(), // JI ← parent.x1
        2usize..4,     // card of x0
        2usize..5,     // card of y0
    )
        .prop_map(|(w, local_edge, foreign_edge, ji_parent_p, cx, cy)| {
            let mut wi = w.into_iter().cycle();
            let mut dist = |n: usize| -> Vec<f64> {
                let raw: Vec<f64> = (0..n).map(|_| wi.next().unwrap() as f64).collect();
                let t: f64 = raw.iter().sum();
                raw.into_iter().map(|x| x / t).collect()
            };
            let x0 = AttrModel {
                name: "x0".into(),
                card: cx,
                parents: vec![],
                cpd: TableCpd::new(cx, vec![], dist(cx)).into(),
            };
            let mut x1_probs = Vec::new();
            for _ in 0..cx {
                x1_probs.extend(dist(2));
            }
            let x1 = AttrModel {
                name: "x1".into(),
                card: 2,
                parents: vec![ParentRef::Local { attr: 0 }],
                cpd: TableCpd::new(2, vec![cx], x1_probs).into(),
            };
            let (y0_parents, y0_cpd) = if foreign_edge {
                let mut probs = Vec::new();
                for _ in 0..cx {
                    probs.extend(dist(cy));
                }
                (
                    vec![ParentRef::Foreign { fk: 0, attr: 0 }],
                    TableCpd::new(cy, vec![cx], probs),
                )
            } else {
                (vec![], TableCpd::new(cy, vec![], dist(cy)))
            };
            let (y1_parents, y1_cpd) = if local_edge {
                let mut probs = Vec::new();
                for _ in 0..cy {
                    probs.extend(dist(2));
                }
                (vec![ParentRef::Local { attr: 0 }], TableCpd::new(2, vec![cy], probs))
            } else {
                (vec![], TableCpd::new(2, vec![], dist(2)))
            };
            let (ji_parents, ji_cards) = if ji_parent_p {
                (vec![JiParentRef::Parent { attr: 1 }], vec![2])
            } else {
                (vec![], vec![])
            };
            let rows: usize = ji_cards.iter().product::<usize>().max(1);
            let p_true: Vec<f64> = (0..rows)
                .map(|_| 0.005 + (wi.next().unwrap() % 50) as f64 / 1000.0)
                .collect();
            let prm = Prm {
                tables: vec![
                    TableModel {
                        table: "parent".into(),
                        n_rows: 50,
                        attrs: vec![x0, x1],
                        join_indicators: vec![],
                    },
                    TableModel {
                        table: "child".into(),
                        n_rows: 200,
                        attrs: vec![
                            AttrModel {
                                name: "y0".into(),
                                card: cy,
                                parents: y0_parents,
                                cpd: y0_cpd.into(),
                            },
                            AttrModel {
                                name: "y1".into(),
                                card: 2,
                                parents: y1_parents,
                                cpd: y1_cpd.into(),
                            },
                        ],
                        join_indicators: vec![JoinIndicatorModel {
                            fk_attr: "parent".into(),
                            target: "parent".into(),
                            parents: ji_parents,
                            parent_cards: ji_cards,
                            p_true,
                        }],
                    },
                ],
            };
            let dom =
                |card: usize| Domain::new((0..card as i64).map(Value::Int).collect());
            let schema = SchemaInfo {
                tables: vec![
                    TableInfo {
                        name: "parent".into(),
                        n_rows: 50,
                        attrs: vec!["x0".into(), "x1".into()],
                        domains: vec![dom(cx), dom(2)],
                        fks: vec![],
                    },
                    TableInfo {
                        name: "child".into(),
                        n_rows: 200,
                        attrs: vec!["y0".into(), "y1".into()],
                        domains: vec![dom(cy), dom(2)],
                        fks: vec![FkInfo { attr: "parent".into(), target: 0 }],
                    },
                ],
            };
            (prm, schema)
        })
}

/// A random query over the two-table schema: template (single-table vs
/// explicit join) and a random subset of predicates with random
/// constants, covering equality, membership, and range evidence masks.
fn arb_query() -> impl Strategy<Value = Query> {
    (
        any::<bool>(), // explicit join?
        0usize..4,     // pred selector bitmask over {y0, y1, x1}
        0i64..5,       // y0 constant (may fall outside the domain)
        0i64..2,       // y1 constant
        0i64..2,       // x1 constant
        any::<bool>(), // y0 pred: range instead of eq
    )
        .prop_map(|(join, mask, v0, v1, vx, range)| {
            let mut b = Query::builder();
            let c = b.var("child");
            let p = if join {
                let p = b.var("parent");
                b.join(c, "parent", p);
                Some(p)
            } else {
                None
            };
            if mask & 1 != 0 {
                if range {
                    b.range(c, "y0", Some(0), Some(v0));
                } else {
                    b.eq(c, "y0", v0);
                }
            }
            if mask & 2 != 0 {
                b.eq(c, "y1", v1);
            }
            if let Some(p) = p {
                b.eq(p, "x1", vx);
            }
            b.build()
        })
}

/// The reference value: the uncached unroll-and-eliminate pipeline.
fn uncached(est: &PrmEstimator, q: &Query) -> f64 {
    est.unroll(q).unwrap().estimated_size(&est.epoch().prm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_cached_estimates_are_bit_identical_to_uncached(
        (prm, schema) in arb_prm(),
        q in arb_query(),
    ) {
        let est = PrmEstimator::from_parts(prm, schema, "PRM");
        let reference = uncached(&est, &q);
        // Cold: the first estimate compiles the plan.
        let cold = est.estimate(&q).unwrap();
        prop_assert!(est.has_cached_plan(&q));
        // Warm: the second replays the cached plan.
        let warm = est.estimate(&q).unwrap();
        prop_assert_eq!(reference.to_bits(), cold.to_bits(),
            "cold: {} vs {}", reference, cold);
        prop_assert_eq!(reference.to_bits(), warm.to_bits(),
            "warm: {} vs {}", reference, warm);
    }

    #[test]
    fn batch_estimates_are_bit_identical_across_thread_counts(
        (prm, schema) in arb_prm(),
        queries in proptest::collection::vec(arb_query(), 1..8),
    ) {
        let est = PrmEstimator::from_parts(prm, schema, "PRM");
        let reference: Vec<f64> = queries.iter().map(|q| uncached(&est, q)).collect();
        for threads in [1usize, 4] {
            est.clear_plan_cache();
            let got = with_threads(threads, || estimate_batch(&est, &queries)).unwrap();
            for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
                prop_assert_eq!(r.to_bits(), g.to_bits(),
                    "threads={} query #{}: {} vs {}", threads, i, r, g);
            }
        }
    }
}

/// Three distinct single-table templates (they differ in the predicate
/// attribute set).
fn templates() -> [Query; 3] {
    let a = {
        let mut b = Query::builder();
        let c = b.var("child");
        b.eq(c, "y0", 0);
        b.build()
    };
    let bq = {
        let mut b = Query::builder();
        let c = b.var("child");
        b.eq(c, "y1", 0);
        b.build()
    };
    let cq = {
        let mut b = Query::builder();
        let c = b.var("child");
        b.eq(c, "y0", 0).eq(c, "y1", 0);
        b.build()
    };
    [a, bq, cq]
}

/// One deterministic model from the random family, for the unit tests.
fn fixed_model(seed: u32) -> (Prm, SchemaInfo) {
    let mut rng = proptest::case_rng("plan_unit_tests", seed);
    arb_prm().generate(&mut rng)
}

fn fixed_estimator(seed: u32) -> PrmEstimator {
    let (prm, schema) = fixed_model(seed);
    PrmEstimator::from_parts(prm, schema, "PRM")
}

#[test]
fn lru_evicts_the_least_recently_used_template() {
    let est = fixed_estimator(7);
    est.set_plan_cache_capacity(2);
    let [a, b, c] = templates();
    est.estimate(&a).unwrap();
    est.estimate(&b).unwrap();
    assert_eq!(est.plan_cache_len(), 2);
    // Touch A so B becomes the LRU entry, then insert C.
    est.estimate(&a).unwrap();
    est.estimate(&c).unwrap();
    assert_eq!(est.plan_cache_len(), 2);
    assert!(est.has_cached_plan(&a), "recently used plan must survive");
    assert!(est.has_cached_plan(&c), "newest plan must be resident");
    assert!(!est.has_cached_plan(&b), "LRU plan must be evicted");
}

#[test]
fn same_template_different_constants_share_one_plan() {
    let est = fixed_estimator(11);
    let mk = |v: i64| {
        let mut b = Query::builder();
        let c = b.var("child");
        b.eq(c, "y0", v);
        b.build()
    };
    for v in 0..3 {
        let q = mk(v);
        let got = est.estimate(&q).unwrap();
        assert_eq!(got.to_bits(), uncached(&est, &q).to_bits(), "v={v}");
    }
    assert_eq!(est.plan_cache_len(), 1, "constants must not fragment the cache");
}

#[test]
fn zero_capacity_disables_caching_but_stays_exact() {
    let est = fixed_estimator(13);
    est.set_plan_cache_capacity(0);
    let [a, ..] = templates();
    let got = est.estimate(&a).unwrap();
    assert_eq!(got.to_bits(), uncached(&est, &a).to_bits());
    assert_eq!(est.plan_cache_len(), 0);
    assert!(!est.has_cached_plan(&a));
}

#[test]
fn model_reload_invalidates_cached_plans() {
    let est = fixed_estimator(17);
    let [a, b, _] = templates();
    est.estimate(&a).unwrap();
    est.estimate(&b).unwrap();
    assert_eq!(est.plan_cache_len(), 2);

    // Replace the model with a differently-parameterized one: the swap
    // recompiles the hot templates against the new epoch (so the warm
    // path does not fall off a compile cliff), and a stale plan must
    // never answer — estimates must match the new model's uncached path.
    let (prm2, schema2) = fixed_model(23);
    est.replace_model(prm2, schema2);
    assert_eq!(
        est.plan_cache_len(),
        2,
        "reload re-precompiles the hot templates on the new epoch"
    );
    assert!(est.has_cached_plan(&a));
    let got = est.estimate(&a).unwrap();
    assert_eq!(got.to_bits(), uncached(&est, &a).to_bits());
}
