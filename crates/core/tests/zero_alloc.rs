//! The warm-path allocation gate: once a template's plan is compiled and
//! its constants have been seen once, repeating the estimate must touch
//! the heap **zero** times. A counting global allocator makes the claim
//! falsifiable — any stray `Vec`, `Box`, `String`, or map rehash on the
//! warm path fails this test with an exact allocation count.
//!
//! The first two estimates prime everything that legitimately allocates
//! once: the compiled plan, the reduced-factor memo entry for the
//! constants, the per-thread arenas at their high-water size, and the
//! first-use registration of every metric the path records.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use prmsel::{PrmEstimator, PrmLearnConfig, SelectivityEstimator};
use reldb::{Cell as DbCell, Database, DatabaseBuilder, Query, TableBuilder, Value};

/// Forwards to the system allocator, counting allocations per thread.
/// Deallocations are not counted: freeing scratch the cold path made is
/// fine, *acquiring* memory on the warm path is the regression.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// The reduce hit/miss counters are process-global, so tests asserting
/// exact deltas must not interleave with other tests' estimates.
fn serialized() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny_db() -> Database {
    let mut p = TableBuilder::new("parent").key("id").col("x");
    for (id, x) in [(0, 0i64), (1, 1), (2, 0), (3, 1), (4, 2), (5, 2)] {
        p.push_row(vec![DbCell::Key(id), DbCell::Val(Value::Int(x))]).unwrap();
    }
    let mut c = TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
    for (id, pa, y) in [
        (0, 0, 0i64),
        (1, 0, 1),
        (2, 1, 0),
        (3, 2, 1),
        (4, 3, 0),
        (5, 3, 1),
        (6, 4, 2),
        (7, 5, 2),
        (8, 1, 0),
        (9, 2, 1),
    ] {
        c.push_row(vec![DbCell::Key(id), DbCell::Key(pa), DbCell::Val(Value::Int(y))])
            .unwrap();
    }
    DatabaseBuilder::new()
        .add_table(p.finish().unwrap())
        .add_table(c.finish().unwrap())
        .finish()
        .unwrap()
}

/// Primes plan + memo + arenas with two estimates, then measures the
/// third. Returns `(allocations, bytes)` of the measured warm estimate.
fn warm_cost(est: &PrmEstimator, query: &Query) -> (u64, u64) {
    let first = est.estimate(query).expect("cold estimate");
    let second = est.estimate(query).expect("priming warm estimate");
    assert_eq!(first.to_bits(), second.to_bits(), "warm must be bit-identical");
    let (a0, b0) = (ALLOCS.with(Cell::get), BYTES.with(Cell::get));
    let third = est.estimate(query).expect("measured warm estimate");
    let (a1, b1) = (ALLOCS.with(Cell::get), BYTES.with(Cell::get));
    assert_eq!(first.to_bits(), third.to_bits(), "warm must be bit-identical");
    (a1 - a0, b1 - b0)
}

#[test]
fn warm_single_table_estimate_allocates_nothing() {
    let _serial = serialized();
    let est = PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
    let mut b = Query::builder();
    let c = b.var("child");
    b.eq(c, "y", 1);
    let (allocs, bytes) = warm_cost(&est, &b.build());
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "warm single-table estimate must not touch the heap"
    );
}

#[test]
fn warm_join_estimate_allocates_nothing() {
    let _serial = serialized();
    let est = PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
    let mut b = Query::builder();
    let c = b.var("child");
    let p = b.var("parent");
    b.join(c, "parent", p).eq(p, "x", 1).range(c, "y", Some(0), Some(1));
    let (allocs, bytes) = warm_cost(&est, &b.build());
    assert_eq!((allocs, bytes), (0, 0), "warm join estimate must not touch the heap");
}

/// Runs `f` with the signature-memo capacity forced to 0 (plans compiled
/// inside take the memo-*miss* replay path on every estimate and never
/// insert), restoring the environment default afterwards even on panic.
fn with_memo_disabled<R>(f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            prmsel::plan::set_reduce_memo_capacity(None);
        }
    }
    let _reset = Reset;
    prmsel::plan::set_reduce_memo_capacity(Some(0));
    f()
}

/// Like [`warm_cost`], but with memoization disabled: every estimate —
/// including the measured third — re-encodes the predicate masks into
/// allowed-code lists and replays the masked elimination suffix. That
/// memo-miss replay must be as allocation-free as a hit.
fn miss_cost(query: &Query) -> (u64, u64) {
    with_memo_disabled(|| {
        let est =
            PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
        let first = est.estimate(query).expect("cold estimate");
        let second = est.estimate(query).expect("priming miss estimate");
        assert_eq!(first.to_bits(), second.to_bits(), "replay must be bit-identical");
        assert_eq!(est.reduce_memo_len(query), Some(0), "memo must stay empty");
        let (a0, b0) = (ALLOCS.with(Cell::get), BYTES.with(Cell::get));
        let third = est.estimate(query).expect("measured miss estimate");
        let (a1, b1) = (ALLOCS.with(Cell::get), BYTES.with(Cell::get));
        assert_eq!(first.to_bits(), third.to_bits(), "replay must be bit-identical");
        (a1 - a0, b1 - b0)
    })
}

#[test]
fn memo_miss_single_table_estimate_allocates_nothing() {
    let _serial = serialized();
    let mut b = Query::builder();
    let c = b.var("child");
    b.eq(c, "y", 1);
    let (allocs, bytes) = miss_cost(&b.build());
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "memo-miss single-table replay must not touch the heap"
    );
}

#[test]
fn memo_miss_join_estimate_allocates_nothing() {
    let _serial = serialized();
    let mut b = Query::builder();
    let c = b.var("child");
    let p = b.var("parent");
    b.join(c, "parent", p).eq(p, "x", 1).range(c, "y", Some(0), Some(1));
    let (allocs, bytes) = miss_cost(&b.build());
    assert_eq!((allocs, bytes), (0, 0), "memo-miss join replay must not touch the heap");
}

#[test]
fn warm_repeat_constants_hit_the_reduce_memo() {
    let _serial = serialized();
    let reg = obs::registry();
    let est = PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
    let mut b = Query::builder();
    let c = b.var("child");
    b.eq(c, "y", 0);
    let q = b.build();
    est.estimate(&q).expect("cold"); // compile + memo miss
    let hits_before = reg.counter("prm.plan.reduce.hit").get();
    let miss_before = reg.counter("prm.plan.reduce.miss").get();
    est.estimate(&q).expect("warm");
    est.estimate(&q).expect("warm");
    assert_eq!(
        reg.counter("prm.plan.reduce.hit").get() - hits_before,
        2,
        "repeat constants must hit the memo"
    );
    assert_eq!(
        reg.counter("prm.plan.reduce.miss").get() - miss_before,
        0,
        "repeat constants must not re-reduce"
    );
    assert_eq!(est.reduce_memo_len(&q), Some(1), "one constant signature memoized");
}

#[test]
fn distinct_constants_miss_then_hit_independently() {
    let _serial = serialized();
    let reg = obs::registry();
    let est = PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
    let queries: Vec<Query> = (0..3i64)
        .map(|v| {
            let mut b = Query::builder();
            let c = b.var("child");
            b.eq(c, "y", v);
            b.build()
        })
        .collect();
    est.estimate(&queries[0]).expect("compile"); // one compile + first miss
    let miss_before = reg.counter("prm.plan.reduce.miss").get();
    let hits_before = reg.counter("prm.plan.reduce.hit").get();
    for q in &queries[1..] {
        est.estimate(q).expect("new constants");
    }
    for q in &queries {
        est.estimate(q).expect("repeat constants");
    }
    assert_eq!(
        reg.counter("prm.plan.reduce.miss").get() - miss_before,
        2,
        "each new constant signature reduces once"
    );
    assert_eq!(
        reg.counter("prm.plan.reduce.hit").get() - hits_before,
        3,
        "each repeat replays from the memo"
    );
    assert_eq!(est.reduce_memo_len(&queries[0]), Some(3), "three signatures resident");
}
