//! Property-based tests for the PRM estimator: global invariants that must
//! hold for *any* learned model on *any* database — normalization
//! (estimates over a partition of value space sum to the table size),
//! Proposition 3.4 (upward closure does not change the estimate), and
//! monotonicity of conjunctions.

use prmsel::{PrmEstimator, PrmLearnConfig, SelectivityEstimator};
use proptest::prelude::*;
use reldb::{Cell, Database, DatabaseBuilder, Query, TableBuilder, Value};

fn arb_db() -> impl Strategy<Value = Database> {
    (
        2usize..6,
        proptest::collection::vec(0u32..3, 2..10), // parent x codes
        proptest::collection::vec(0u32..5, 10..60), // child fk seeds
        proptest::collection::vec(0u32..3, 10..60), // child y codes
    )
        .prop_map(|(n_parent, xs, fks, ys)| {
            let mut p = TableBuilder::new("parent").key("id").col("x");
            for i in 0..n_parent {
                p.push_row(vec![
                    Cell::Key(i as i64),
                    Cell::Val(Value::Int(xs[i % xs.len()] as i64)),
                ])
                .unwrap();
            }
            let n_child = fks.len().min(ys.len());
            let mut c =
                TableBuilder::new("child").key("id").fk("parent", "parent").col("y");
            for i in 0..n_child {
                c.push_row(vec![
                    Cell::Key(i as i64),
                    Cell::Key((fks[i] as usize % n_parent) as i64),
                    Cell::Val(Value::Int(ys[i] as i64)),
                ])
                .unwrap();
            }
            DatabaseBuilder::new()
                .add_table(p.finish().unwrap())
                .add_table(c.finish().unwrap())
                .finish()
                .unwrap()
        })
}

fn estimator(db: &Database, budget: usize) -> PrmEstimator {
    PrmEstimator::build(
        db,
        &PrmLearnConfig { budget_bytes: budget, ..Default::default() },
    )
    .expect("build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn estimates_over_a_partition_sum_to_table_size(db in arb_db(), budget in 256usize..4096) {
        let est = estimator(&db, budget);
        let domain = db.table("child").unwrap().domain("y").unwrap().clone();
        let mut total = 0.0;
        for v in domain.values() {
            let mut b = Query::builder();
            let c = b.var("child");
            b.eq(c, "y", v.clone());
            total += est.estimate(&b.build()).unwrap();
        }
        let n = db.table("child").unwrap().n_rows() as f64;
        prop_assert!((total - n).abs() < 1e-6 * n.max(1.0), "total={total} n={n}");
    }

    #[test]
    fn closure_does_not_change_the_estimate(db in arb_db(), y in 0i64..3) {
        // Proposition 3.4: a single-table query and the same query with the
        // unconstrained keyjoin made explicit produce the same estimate.
        let est = estimator(&db, 2048);
        let mut b1 = Query::builder();
        let c1 = b1.var("child");
        b1.eq(c1, "y", y);
        let e1 = est.estimate(&b1.build()).unwrap();

        let mut b2 = Query::builder();
        let c2 = b2.var("child");
        let p2 = b2.var("parent");
        b2.join(c2, "parent", p2).eq(c2, "y", y);
        let e2 = est.estimate(&b2.build()).unwrap();
        prop_assert!((e1 - e2).abs() < 1e-6 * e1.max(1.0), "e1={e1} e2={e2}");
    }

    #[test]
    fn conjunction_never_exceeds_its_parts(db in arb_db(), x in 0i64..3, y in 0i64..3) {
        let est = estimator(&db, 2048);
        let mut both = Query::builder();
        let c = both.var("child");
        let p = both.var("parent");
        both.join(c, "parent", p).eq(p, "x", x).eq(c, "y", y);
        let e_both = est.estimate(&both.build()).unwrap();

        let mut one = Query::builder();
        let c1 = one.var("child");
        let p1 = one.var("parent");
        one.join(c1, "parent", p1).eq(c1, "y", y);
        let e_one = est.estimate(&one.build()).unwrap();
        prop_assert!(e_both <= e_one + 1e-9, "both={e_both} one={e_one}");
    }

    #[test]
    fn empty_query_estimates_table_cardinality(db in arb_db()) {
        let est = estimator(&db, 2048);
        let mut b = Query::builder();
        let _ = b.var("parent");
        let e = est.estimate(&b.build()).unwrap();
        let n = db.table("parent").unwrap().n_rows() as f64;
        prop_assert!((e - n).abs() < 1e-9, "e={e} n={n}");
    }

    #[test]
    fn estimates_are_finite_and_nonnegative(db in arb_db(), x in -1i64..4, y in -1i64..4) {
        // Includes out-of-domain constants.
        let est = estimator(&db, 1024);
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p).eq(p, "x", x).eq(c, "y", y);
        let e = est.estimate(&b.build()).unwrap();
        prop_assert!(e.is_finite());
        prop_assert!(e >= 0.0);
    }

    #[test]
    fn model_size_respects_budget(db in arb_db(), budget in 128usize..4096) {
        let est = estimator(&db, budget);
        prop_assert!(est.size_bytes() <= budget.max(est_min_size(&db)),
            "size={} budget={budget}", est.size_bytes());
    }
}

/// The irreducible floor: marginal CPDs for every attribute plus the join
/// indicator entry exist regardless of budget.
fn est_min_size(db: &Database) -> usize {
    let mut bytes = 0usize;
    for t in db.tables() {
        for attr in t.schema().value_attrs() {
            let card = t.domain(attr).unwrap().card();
            bytes += 4 * (card - 1) + 2;
        }
        bytes += t.schema().foreign_keys().len() * 6;
    }
    bytes + 64
}
