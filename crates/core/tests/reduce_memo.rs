//! The reduced-factor memo's bounding and invalidation contract: the
//! per-plan memo is a strict LRU over constant signatures with a
//! configurable capacity, and model replacement drops it together with
//! the plan so stale reduced data can never survive a reload.
//!
//! Hit/miss counters are process-global and the capacity override is a
//! process-wide static, so every test here serializes on one lock.

use prmsel::plan::set_reduce_memo_capacity;
use prmsel::{PrmEstimator, PrmLearnConfig, SelectivityEstimator};
use reldb::{Cell, Database, DatabaseBuilder, Query, TableBuilder, Value};

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny_db() -> Database {
    let mut t = TableBuilder::new("person").key("id").col("age").col("income");
    for (id, age, income) in [
        (0, 20i64, 1i64),
        (1, 30, 2),
        (2, 40, 3),
        (3, 20, 2),
        (4, 30, 3),
        (5, 40, 1),
        (6, 20, 3),
        (7, 30, 1),
    ] {
        t.push_row(vec![
            Cell::Key(id),
            Cell::Val(Value::Int(age)),
            Cell::Val(Value::Int(income)),
        ])
        .unwrap();
    }
    DatabaseBuilder::new().add_table(t.finish().unwrap()).finish().unwrap()
}

fn age_query(v: i64) -> Query {
    let mut b = Query::builder();
    let p = b.var("person");
    b.eq(p, "age", v);
    b.build()
}

/// Runs `f` with the memo capacity override set to `cap`, restoring the
/// environment default afterwards even on panic.
fn with_memo_capacity<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            set_reduce_memo_capacity(None);
        }
    }
    let _reset = Reset;
    set_reduce_memo_capacity(Some(cap));
    f()
}

#[test]
fn memo_respects_its_capacity_bound() {
    let _serial = serialized();
    with_memo_capacity(2, || {
        let est =
            PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
        for v in [20i64, 30, 40] {
            est.estimate(&age_query(v)).expect("estimate");
        }
        assert_eq!(
            est.reduce_memo_len(&age_query(20)),
            Some(2),
            "memo must hold at most its capacity"
        );
    });
}

#[test]
fn memo_evicts_least_recently_used_signature() {
    let _serial = serialized();
    let reg = obs::registry();
    with_memo_capacity(2, || {
        let est =
            PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
        let (a, b, c) = (age_query(20), age_query(30), age_query(40));
        est.estimate(&a).expect("a"); // miss, memo = {a}
        est.estimate(&b).expect("b"); // miss, memo = {a, b}
        est.estimate(&a).expect("a again"); // hit, a becomes MRU
        let hits_0 = reg.counter("prm.plan.reduce.hit").get();
        let miss_0 = reg.counter("prm.plan.reduce.miss").get();
        est.estimate(&c).expect("c"); // miss, evicts LRU = b
        est.estimate(&a).expect("a survives"); // hit
        est.estimate(&c).expect("c resident"); // hit
        est.estimate(&b).expect("b was evicted"); // miss, evicts LRU = a
        est.estimate(&a).expect("a re-reduces"); // miss
        assert_eq!(
            reg.counter("prm.plan.reduce.hit").get() - hits_0,
            2,
            "resident signatures must hit"
        );
        assert_eq!(
            reg.counter("prm.plan.reduce.miss").get() - miss_0,
            3,
            "evicted signatures must re-reduce"
        );
    });
}

#[test]
fn zero_capacity_disables_memoization_but_stays_exact() {
    let _serial = serialized();
    let reg = obs::registry();
    with_memo_capacity(0, || {
        let est =
            PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
        let q = age_query(30);
        let first = est.estimate(&q).expect("first");
        let hits_0 = reg.counter("prm.plan.reduce.hit").get();
        let miss_0 = reg.counter("prm.plan.reduce.miss").get();
        let second = est.estimate(&q).expect("second");
        assert_eq!(first.to_bits(), second.to_bits(), "memo off must not change bits");
        assert_eq!(reg.counter("prm.plan.reduce.hit").get() - hits_0, 0);
        assert_eq!(reg.counter("prm.plan.reduce.miss").get() - miss_0, 1);
        assert_eq!(est.reduce_memo_len(&q), Some(0), "nothing may be stored");
    });
}

#[test]
fn model_reload_drops_memoized_reductions() {
    let _serial = serialized();
    let reg = obs::registry();
    let est = PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
    let q = age_query(20);
    est.estimate(&q).expect("cold");
    est.estimate(&q).expect("warm");
    assert_eq!(est.reduce_memo_len(&q), Some(1));

    let fresh =
        PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("rebuild");
    est.replace_model(fresh.epoch().prm.clone(), fresh.epoch().schema.clone());
    assert_eq!(
        est.reduce_memo_len(&q),
        Some(0),
        "reload recompiles the hot template on the new epoch with an empty memo"
    );
    let miss_0 = reg.counter("prm.plan.reduce.miss").get();
    est.estimate(&q).expect("recompile");
    assert_eq!(
        reg.counter("prm.plan.reduce.miss").get() - miss_0,
        1,
        "post-reload estimate must reduce fresh data, not replay stale"
    );
    assert_eq!(est.reduce_memo_len(&q), Some(1));
}

#[test]
fn templates_without_predicates_bypass_the_memo() {
    let _serial = serialized();
    let reg = obs::registry();
    let est = PrmEstimator::build(&tiny_db(), &PrmLearnConfig::default()).expect("build");
    let mut b = Query::builder();
    b.var("person");
    let q = b.build();
    let hits_0 = reg.counter("prm.plan.reduce.hit").get();
    let miss_0 = reg.counter("prm.plan.reduce.miss").get();
    est.estimate(&q).expect("cold");
    est.estimate(&q).expect("warm");
    assert_eq!(reg.counter("prm.plan.reduce.hit").get() - hits_0, 0);
    assert_eq!(reg.counter("prm.plan.reduce.miss").get() - miss_0, 0);
    assert_eq!(est.reduce_memo_len(&q), Some(0), "no reductions to memoize");
}
