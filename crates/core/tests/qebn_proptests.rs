//! Property tests on the query-evaluation machinery with *randomly
//! structured* hand-built PRMs (not learned ones): for any valid
//! two-table PRM, the unrolled network must be a coherent distribution
//! and Proposition 3.4 (closure invariance) must hold.

use bayesnet::TableCpd;
use prmsel::prm::{
    AttrModel, JiParentRef, JoinIndicatorModel, ParentRef, Prm, TableModel,
};
use prmsel::schema::{FkInfo, SchemaInfo, TableInfo};
use prmsel::QueryEvalBn;
use proptest::prelude::*;
use reldb::{Domain, Query, Value};

/// Builds a random two-table PRM: parent(x0, x1), child(y0, y1) with
/// random local edges (y1 ← y0 maybe), random foreign parents, and a join
/// indicator with random parents consistent with the constraints.
fn arb_prm() -> impl Strategy<Value = (Prm, SchemaInfo)> {
    (
        proptest::collection::vec(1u32..100, 64), // CPD weight pool
        any::<bool>(),                            // y1 ← y0 local edge
        any::<bool>(),                            // y0 ← parent.x0 foreign edge
        any::<bool>(),                            // JI ← parent.x1
        any::<bool>(), // JI ← child.y1 (legal: y1 has no foreign parent)
        2usize..4,     // card of x0
        2usize..4,     // card of y0
    )
        .prop_map(
            |(w, local_edge, foreign_edge, ji_parent_p, ji_parent_c, cx, cy)| {
                let mut wi = w.into_iter().cycle();
                let mut dist = |n: usize| -> Vec<f64> {
                    let raw: Vec<f64> =
                        (0..n).map(|_| wi.next().unwrap() as f64).collect();
                    let t: f64 = raw.iter().sum();
                    raw.into_iter().map(|x| x / t).collect()
                };
                // parent table: x0 (card cx), x1 (card 2), x1 ← x0.
                let x0 = AttrModel {
                    name: "x0".into(),
                    card: cx,
                    parents: vec![],
                    cpd: TableCpd::new(cx, vec![], dist(cx)).into(),
                };
                let mut x1_probs = Vec::new();
                for _ in 0..cx {
                    x1_probs.extend(dist(2));
                }
                let x1 = AttrModel {
                    name: "x1".into(),
                    card: 2,
                    parents: vec![ParentRef::Local { attr: 0 }],
                    cpd: TableCpd::new(2, vec![cx], x1_probs).into(),
                };
                // child table: y0 (card cy, maybe ← parent.x0), y1 (card 2,
                // maybe ← y0).
                let (y0_parents, y0_cpd) = if foreign_edge {
                    let mut probs = Vec::new();
                    for _ in 0..cx {
                        probs.extend(dist(cy));
                    }
                    (
                        vec![ParentRef::Foreign { fk: 0, attr: 0 }],
                        TableCpd::new(cy, vec![cx], probs),
                    )
                } else {
                    (vec![], TableCpd::new(cy, vec![], dist(cy)))
                };
                let (y1_parents, y1_cpd) = if local_edge {
                    let mut probs = Vec::new();
                    for _ in 0..cy {
                        probs.extend(dist(2));
                    }
                    (
                        vec![ParentRef::Local { attr: 0 }],
                        TableCpd::new(2, vec![cy], probs),
                    )
                } else {
                    (vec![], TableCpd::new(2, vec![], dist(2)))
                };
                // Join indicator parents.
                let mut ji_parents = Vec::new();
                let mut ji_cards = Vec::new();
                if ji_parent_c {
                    ji_parents.push(JiParentRef::Child { attr: 1 });
                    ji_cards.push(2);
                }
                if ji_parent_p {
                    ji_parents.push(JiParentRef::Parent { attr: 1 });
                    ji_cards.push(2);
                }
                let rows: usize = ji_cards.iter().product::<usize>().max(1);
                let mut p_true: Vec<f64> = (0..rows)
                    .map(|_| 0.01 + (wi.next().unwrap() % 50) as f64 / 1000.0)
                    .collect();
                // Referential-integrity calibration (Prop. 3.4 relies on it,
                // and learned models satisfy it by construction): every child
                // tuple joins exactly one parent, so for EVERY child
                // configuration `c`, Σ_p P(p-part)·p_true(c, p) must equal
                // 1/|S|. Rescale each child-part slice accordingly (parent
                // marginals are computable from the parent-local CPDs).
                {
                    let p_x0 = x0.cpd.dist(&[]).to_vec();
                    // Parent-side marginal P(x1 = b).
                    let mut p_b = [0.0f64; 2];
                    for a in 0..cx as u32 {
                        for (b, pb) in p_b.iter_mut().enumerate() {
                            *pb += p_x0[a as usize] * x1.cpd.dist(&[a])[b];
                        }
                    }
                    let target = 1.0 / 50.0;
                    let child_parts: usize = if ji_parent_c { 2 } else { 1 };
                    for c_part in 0..child_parts {
                        // Expected p_true over the parent marginal for this
                        // child part.
                        let mut expectation = 0.0;
                        if ji_parent_p {
                            for (b, pb) in p_b.iter().enumerate() {
                                let mut cfg = Vec::new();
                                if ji_parent_c {
                                    cfg.push(c_part as u32);
                                }
                                cfg.push(b as u32);
                                let mut idx = 0usize;
                                for (&v, &card) in cfg.iter().zip(&ji_cards) {
                                    idx = idx * card + v as usize;
                                }
                                expectation += pb * p_true[idx];
                            }
                        } else {
                            let idx = if ji_parent_c { c_part } else { 0 };
                            expectation = p_true[idx];
                        }
                        let scale = target / expectation;
                        // Rescale this child part's slice.
                        if ji_parent_p {
                            for b in 0..2usize {
                                let mut cfg = Vec::new();
                                if ji_parent_c {
                                    cfg.push(c_part as u32);
                                }
                                cfg.push(b as u32);
                                let mut idx = 0usize;
                                for (&v, &card) in cfg.iter().zip(&ji_cards) {
                                    idx = idx * card + v as usize;
                                }
                                p_true[idx] = (p_true[idx] * scale).min(1.0);
                            }
                        } else {
                            let idx = if ji_parent_c { c_part } else { 0 };
                            p_true[idx] = (p_true[idx] * scale).min(1.0);
                        }
                    }
                }
                let prm = Prm {
                    tables: vec![
                        TableModel {
                            table: "parent".into(),
                            n_rows: 50,
                            attrs: vec![x0, x1],
                            join_indicators: vec![],
                        },
                        TableModel {
                            table: "child".into(),
                            n_rows: 200,
                            attrs: vec![
                                AttrModel {
                                    name: "y0".into(),
                                    card: cy,
                                    parents: y0_parents,
                                    cpd: y0_cpd.into(),
                                },
                                AttrModel {
                                    name: "y1".into(),
                                    card: 2,
                                    parents: y1_parents,
                                    cpd: y1_cpd.into(),
                                },
                            ],
                            join_indicators: vec![JoinIndicatorModel {
                                fk_attr: "parent".into(),
                                target: "parent".into(),
                                parents: ji_parents,
                                parent_cards: ji_cards,
                                p_true,
                            }],
                        },
                    ],
                };
                let dom =
                    |card: usize| Domain::new((0..card as i64).map(Value::Int).collect());
                let schema = SchemaInfo {
                    tables: vec![
                        TableInfo {
                            name: "parent".into(),
                            n_rows: 50,
                            attrs: vec!["x0".into(), "x1".into()],
                            domains: vec![dom(cx), dom(2)],
                            fks: vec![],
                        },
                        TableInfo {
                            name: "child".into(),
                            n_rows: 200,
                            attrs: vec!["y0".into(), "y1".into()],
                            domains: vec![dom(cy), dom(2)],
                            fks: vec![FkInfo { attr: "parent".into(), target: 0 }],
                        },
                    ],
                };
                (prm, schema)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_invariance_on_random_structures((prm, schema) in arb_prm(), y in 0i64..2) {
        // Single-table vs explicit join (Prop. 3.4).
        let mut b1 = Query::builder();
        let c1 = b1.var("child");
        b1.eq(c1, "y1", y);
        let e1 = QueryEvalBn::build(&prm, &schema, &b1.build())
            .unwrap()
            .estimated_size(&prm);
        let mut b2 = Query::builder();
        let c2 = b2.var("child");
        let p2 = b2.var("parent");
        b2.join(c2, "parent", p2).eq(c2, "y1", y);
        let e2 = QueryEvalBn::build(&prm, &schema, &b2.build())
            .unwrap()
            .estimated_size(&prm);
        prop_assert!((e1 - e2).abs() < 1e-9 * e1.max(1.0), "{} vs {}", e1, e2);
    }

    #[test]
    fn partition_over_child_attr_sums_to_join_size((prm, schema) in arb_prm()) {
        // Σ_y size(join ∧ y1 = y) == size(join).
        let join_only = {
            let mut b = Query::builder();
            let c = b.var("child");
            let p = b.var("parent");
            b.join(c, "parent", p);
            QueryEvalBn::build(&prm, &schema, &b.build())
                .unwrap()
                .estimated_size(&prm)
        };
        let mut sum = 0.0;
        for y in 0..2i64 {
            let mut b = Query::builder();
            let c = b.var("child");
            let p = b.var("parent");
            b.join(c, "parent", p).eq(c, "y1", y);
            sum += QueryEvalBn::build(&prm, &schema, &b.build())
                .unwrap()
                .estimated_size(&prm);
        }
        prop_assert!((sum - join_only).abs() < 1e-9 * join_only.max(1.0));
    }

    #[test]
    fn probabilities_stay_in_unit_range((prm, schema) in arb_prm(), x in 0i64..2, y in 0i64..2) {
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p).eq(c, "y1", y).eq(p, "x1", x);
        let qebn = QueryEvalBn::build(&prm, &schema, &b.build()).unwrap();
        let prob = bayesnet::probability_of_evidence(&qebn.bn, &qebn.evidence);
        prop_assert!((0.0..=1.0).contains(&prob), "P = {}", prob);
        let est = qebn.estimated_size(&prm);
        prop_assert!(est >= 0.0 && est.is_finite());
    }

    #[test]
    fn persistence_round_trips_random_models((prm, schema) in arb_prm(), y in 0i64..2) {
        let mut buf = Vec::new();
        prmsel::save_model(&prm, &schema, &mut buf).unwrap();
        let (prm2, schema2) = prmsel::load_model(buf.as_slice()).unwrap();
        let mut b = Query::builder();
        let c = b.var("child");
        let p = b.var("parent");
        b.join(c, "parent", p).eq(c, "y1", y);
        let q = b.build();
        let before = QueryEvalBn::build(&prm, &schema, &q).unwrap().estimated_size(&prm);
        let after =
            QueryEvalBn::build(&prm2, &schema2, &q).unwrap().estimated_size(&prm2);
        prop_assert!((before - after).abs() < 1e-12, "{} vs {}", before, after);
        prop_assert_eq!(prm.size_bytes(), prm2.size_bytes());
    }

    #[test]
    fn conditioning_never_increases_estimates((prm, schema) in arb_prm(), y in 0i64..2) {
        let loose = {
            let mut b = Query::builder();
            let c = b.var("child");
            let p = b.var("parent");
            b.join(c, "parent", p).eq(c, "y1", y);
            QueryEvalBn::build(&prm, &schema, &b.build())
                .unwrap()
                .estimated_size(&prm)
        };
        let tight = {
            let mut b = Query::builder();
            let c = b.var("child");
            let p = b.var("parent");
            b.join(c, "parent", p).eq(c, "y1", y).eq(p, "x1", 0);
            QueryEvalBn::build(&prm, &schema, &b.build())
                .unwrap()
                .estimated_size(&prm)
        };
        prop_assert!(tight <= loose + 1e-9, "tight {} > loose {}", tight, loose);
    }
}
