//! Query-suite generators.
//!
//! The paper's experiments average the adjusted relative error over "all
//! possible instantiations for the select values of the query" (§5) — i.e.
//! an exhaustive equality suite over a chosen attribute subset, typically
//! several thousand queries. This module generates those suites for both
//! single-table and select-join (table-chain) workloads.

use reldb::{Database, Query, Result};

/// A named collection of queries to evaluate together.
#[derive(Debug, Clone)]
pub struct QuerySuite {
    /// Human-readable label, e.g. `"census(age,income)"`.
    pub name: String,
    /// The queries.
    pub queries: Vec<Query>,
}

impl QuerySuite {
    /// Number of queries in the suite.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// All equality instantiations of the given attributes of a single table.
pub fn single_table_eq_suite(
    db: &Database,
    table: &str,
    attrs: &[&str],
) -> Result<QuerySuite> {
    let t = db.table(table)?;
    let cards: Vec<usize> =
        attrs.iter().map(|a| t.domain(a).map(|d| d.card())).collect::<Result<_>>()?;
    let mut queries = Vec::new();
    let mut combo = vec![0u32; attrs.len()];
    loop {
        let mut b = Query::builder();
        let v = b.var(table);
        for (i, attr) in attrs.iter().enumerate() {
            let value = t.domain(attr)?.value(combo[i]).clone();
            b.eq(v, *attr, value);
        }
        queries.push(b.build());
        // Odometer.
        let mut k = attrs.len();
        loop {
            if k == 0 {
                let name = format!("{table}({})", attrs.join(","));
                return Ok(QuerySuite { name, queries });
            }
            k -= 1;
            combo[k] += 1;
            if (combo[k] as usize) < cards[k] {
                break;
            }
            combo[k] = 0;
            if k == 0 {
                let name = format!("{table}({})", attrs.join(","));
                return Ok(QuerySuite { name, queries });
            }
        }
    }
}

/// A suite of random *range* queries over ordinal attributes of one table
/// (paper §2.3: range predicates are answered exactly by set-valued
/// evidence). Each query draws an inclusive `[lo, hi]` sub-range of each
/// attribute's integer value span, deterministically per seed.
pub fn single_table_range_suite(
    db: &Database,
    table: &str,
    attrs: &[&str],
    n_queries: usize,
    seed: u64,
) -> Result<QuerySuite> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let t = db.table(table)?;
    // Integer value spans per attribute.
    let mut spans = Vec::with_capacity(attrs.len());
    for a in attrs {
        let dom = t.domain(a)?;
        let ints: Vec<i64> = dom.values().iter().filter_map(|v| v.as_int()).collect();
        let lo = *ints.iter().min().ok_or_else(|| {
            reldb::Error::BadPredicate(format!("`{a}` has no integer values"))
        })?;
        let hi = *ints.iter().max().expect("non-empty by min check");
        spans.push((lo, hi));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        let mut b = Query::builder();
        let v = b.var(table);
        for (a, &(lo, hi)) in attrs.iter().zip(&spans) {
            let x = rng.gen_range(lo..=hi);
            let y = rng.gen_range(lo..=hi);
            b.range(v, *a, Some(x.min(y)), Some(x.max(y)));
        }
        queries.push(b.build());
    }
    Ok(QuerySuite { name: format!("{table}-range({})", attrs.join(",")), queries })
}

/// One step of a join chain: a table plus the FK attribute leading to the
/// *next* table in the chain (the last step has no FK).
#[derive(Debug, Clone)]
pub struct ChainStep<'a> {
    /// Table name.
    pub table: &'a str,
    /// FK attribute joining this table to the next one (None on the last).
    pub fk_to_next: Option<&'a str>,
    /// Attributes of this table to instantiate with equality selects.
    pub select_attrs: &'a [&'a str],
}

/// All equality instantiations of a select-join query over a chain of
/// tables (e.g. contact ⋈ patient ⋈ strain): every query joins the whole
/// chain and selects one value per chosen attribute.
pub fn join_chain_suite(db: &Database, steps: &[ChainStep<'_>]) -> Result<QuerySuite> {
    assert!(!steps.is_empty());
    // Collect (step index, attr, card) in order.
    let mut slots: Vec<(usize, &str, usize)> = Vec::new();
    for (si, step) in steps.iter().enumerate() {
        let t = db.table(step.table)?;
        for attr in step.select_attrs {
            slots.push((si, attr, t.domain(attr)?.card()));
        }
    }
    let mut queries = Vec::new();
    let mut combo = vec![0u32; slots.len()];
    'outer: loop {
        let mut b = Query::builder();
        let vars: Vec<usize> = steps.iter().map(|s| b.var(s.table)).collect();
        for (si, step) in steps.iter().enumerate() {
            if let Some(fk) = step.fk_to_next {
                b.join(vars[si], fk, vars[si + 1]);
            }
        }
        for (slot, &(si, attr, _)) in slots.iter().enumerate() {
            let t = db.table(steps[si].table)?;
            let value = t.domain(attr)?.value(combo[slot]).clone();
            b.eq(vars[si], attr, value);
        }
        queries.push(b.build());
        let mut k = slots.len();
        loop {
            if k == 0 {
                break 'outer;
            }
            k -= 1;
            combo[k] += 1;
            if (combo[k] as usize) < slots[k].2 {
                break;
            }
            combo[k] = 0;
            if k == 0 {
                break 'outer;
            }
        }
    }
    let name = steps
        .iter()
        .map(|s| format!("{}({})", s.table, s.select_attrs.join(",")))
        .collect::<Vec<_>>()
        .join("⋈");
    Ok(QuerySuite { name, queries })
}

/// A suite of random select-join queries over a chain: the whole chain is
/// joined, and each listed (step, attr) gets a random inclusive range over
/// its integer value span — the most general query shape the paper's
/// estimator answers from one model.
pub fn join_chain_range_suite(
    db: &Database,
    steps: &[ChainStep<'_>],
    n_queries: usize,
    seed: u64,
) -> Result<QuerySuite> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(!steps.is_empty());
    // Integer spans for every selected attribute.
    let mut spans: Vec<(usize, &str, i64, i64)> = Vec::new();
    for (si, step) in steps.iter().enumerate() {
        let t = db.table(step.table)?;
        for attr in step.select_attrs {
            let dom = t.domain(attr)?;
            let ints: Vec<i64> = dom.values().iter().filter_map(|v| v.as_int()).collect();
            let lo = *ints.iter().min().ok_or_else(|| {
                reldb::Error::BadPredicate(format!("`{attr}` has no integer values"))
            })?;
            let hi = *ints.iter().max().expect("non-empty by min check");
            spans.push((si, attr, lo, hi));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        let mut b = Query::builder();
        let vars: Vec<usize> = steps.iter().map(|s| b.var(s.table)).collect();
        for (si, step) in steps.iter().enumerate() {
            if let Some(fk) = step.fk_to_next {
                b.join(vars[si], fk, vars[si + 1]);
            }
        }
        for &(si, attr, lo, hi) in &spans {
            let x = rng.gen_range(lo..=hi);
            let y = rng.gen_range(lo..=hi);
            b.range(vars[si], attr, Some(x.min(y)), Some(x.max(y)));
        }
        queries.push(b.build());
    }
    let name = steps
        .iter()
        .map(|s| format!("{}~({})", s.table, s.select_attrs.join(",")))
        .collect::<Vec<_>>()
        .join("⋈");
    Ok(QuerySuite { name, queries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tb::tb_database_sized;

    #[test]
    fn single_table_suite_is_exhaustive() {
        let db = tb_database_sized(50, 100, 500, 1);
        let suite = single_table_eq_suite(&db, "patient", &["age", "gender"]).unwrap();
        // 6 ages × 2 genders.
        assert_eq!(suite.len(), 12);
        for q in &suite.queries {
            q.validate(&db).unwrap();
            assert!(q.is_single_table());
            assert_eq!(q.preds.len(), 2);
        }
    }

    #[test]
    fn suite_queries_cover_all_values_exactly_once() {
        let db = tb_database_sized(50, 100, 500, 1);
        let suite = single_table_eq_suite(&db, "patient", &["age"]).unwrap();
        assert_eq!(suite.len(), 6);
        let mut seen = std::collections::HashSet::new();
        for q in &suite.queries {
            let reldb::Pred::Eq { value, .. } = &q.preds[0] else { panic!() };
            assert!(seen.insert(value.clone()));
        }
    }

    #[test]
    fn join_chain_suite_builds_valid_three_table_queries() {
        let db = tb_database_sized(50, 100, 500, 1);
        let steps = [
            ChainStep {
                table: "contact",
                fk_to_next: Some("patient"),
                select_attrs: &["contype"],
            },
            ChainStep {
                table: "patient",
                fk_to_next: Some("strain"),
                select_attrs: &["age"],
            },
            ChainStep { table: "strain", fk_to_next: None, select_attrs: &["unique"] },
        ];
        let suite = join_chain_suite(&db, &steps).unwrap();
        // 5 contypes × 6 ages × 2 unique values.
        assert_eq!(suite.len(), 60);
        for q in &suite.queries {
            q.validate(&db).unwrap();
            assert_eq!(q.vars.len(), 3);
            assert_eq!(q.joins.len(), 2);
            assert_eq!(q.preds.len(), 3);
        }
    }

    #[test]
    fn range_suite_is_deterministic_and_valid() {
        let db = tb_database_sized(50, 100, 500, 1);
        let a = single_table_range_suite(&db, "patient", &["age", "hiv"], 20, 9).unwrap();
        let b = single_table_range_suite(&db, "patient", &["age", "hiv"], 20, 9).unwrap();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.len(), 20);
        for q in &a.queries {
            q.validate(&db).unwrap();
            assert_eq!(q.preds.len(), 2);
            for p in &q.preds {
                assert!(matches!(p, reldb::Pred::Range { .. }));
            }
        }
    }

    #[test]
    fn range_suite_rejects_nominal_attrs() {
        let db = tb_database_sized(50, 100, 500, 1);
        // usborn is a string attribute.
        assert!(single_table_range_suite(&db, "patient", &["usborn"], 5, 1).is_err());
    }

    #[test]
    fn join_range_suite_is_valid_and_deterministic() {
        let db = tb_database_sized(50, 100, 500, 1);
        let steps = [
            ChainStep {
                table: "contact",
                fk_to_next: Some("patient"),
                select_attrs: &["age"],
            },
            ChainStep { table: "patient", fk_to_next: None, select_attrs: &["hiv"] },
        ];
        let a = join_chain_range_suite(&db, &steps, 15, 3).unwrap();
        let b = join_chain_range_suite(&db, &steps, 15, 3).unwrap();
        assert_eq!(a.queries, b.queries);
        for q in &a.queries {
            q.validate(&db).unwrap();
            assert_eq!(q.joins.len(), 1);
            assert_eq!(q.preds.len(), 2);
        }
    }

    #[test]
    fn chain_without_selects_yields_single_join_query() {
        let db = tb_database_sized(50, 100, 500, 1);
        let steps = [
            ChainStep {
                table: "contact",
                fk_to_next: Some("patient"),
                select_attrs: &[],
            },
            ChainStep { table: "patient", fk_to_next: None, select_attrs: &[] },
        ];
        let suite = join_chain_suite(&db, &steps).unwrap();
        assert_eq!(suite.len(), 1);
        assert!(suite.queries[0].preds.is_empty());
    }
}
