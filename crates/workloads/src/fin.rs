//! Synthetic financial database (PKDD'99 shape).
//!
//! Three tables with the paper's cardinalities: `district` (77 rows),
//! `account` (4.5K rows, FK → district) and `transaction` (106K rows,
//! FK → account). Correlations run down the FK chain: a district's wealth
//! drives its accounts' statement frequency, which in turn drives the
//! number, type and size of transactions — so select-join estimates that
//! assume join uniformity or attribute independence go wrong in exactly
//! the ways §5's FIN experiments probe.

use bayesnet::sample::sample_categorical;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reldb::{Cell, Database, DatabaseBuilder, Value};

/// Row counts matching the paper.
pub const N_DISTRICTS: usize = 77;
/// Accounts in the paper's FIN dataset.
pub const N_ACCOUNTS: usize = 4_500;
/// Transactions in the paper's FIN dataset.
pub const N_TRANSACTIONS: usize = 106_000;

/// Builds the FIN database with the paper's cardinalities.
pub fn fin_database(seed: u64) -> Database {
    fin_database_sized(N_DISTRICTS, N_ACCOUNTS, N_TRANSACTIONS, seed)
}

/// Builds a FIN-shaped database with custom row counts.
pub fn fin_database_sized(
    n_districts: usize,
    n_accounts: usize,
    n_transactions: usize,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);

    // ---- district(district_id, region, avg_salary, urban) ----
    let mut district_salary = Vec::with_capacity(n_districts);
    let mut district_builder = reldb::TableBuilder::new("district")
        .key("district_id")
        .col("region")
        .col("avg_salary")
        .col("urban");
    for d in 0..n_districts {
        let region = rng.gen_range(0..8i64);
        // Wealth depends on region (capital region is richest).
        let salary_weights = match region {
            0 => [0.05, 0.15, 0.35, 0.45],
            1 | 2 => [0.15, 0.35, 0.35, 0.15],
            _ => [0.35, 0.4, 0.2, 0.05],
        };
        let salary = sample_categorical(&salary_weights, &mut rng);
        district_salary.push(salary);
        let urban_weights = match salary {
            3 => [0.1, 0.3, 0.6],
            2 => [0.3, 0.4, 0.3],
            _ => [0.55, 0.35, 0.1],
        };
        let urban = sample_categorical(&urban_weights, &mut rng) as i64;
        district_builder
            .push_row(vec![
                Cell::Key(d as i64),
                Cell::Val(Value::Int(region)),
                Cell::Val(Value::Int(salary as i64)),
                Cell::Val(Value::Int(urban)),
            ])
            .expect("district row arity");
    }

    // ---- account(account_id, district fk, frequency, opened) ----
    // Wealthy districts host more accounts.
    let district_weights: Vec<f64> =
        district_salary.iter().map(|&s| 1.0 + s as f64).collect();
    let mut account_freq = Vec::with_capacity(n_accounts);
    let mut account_district = Vec::with_capacity(n_accounts);
    let mut account_builder = reldb::TableBuilder::new("account")
        .key("account_id")
        .fk("district", "district")
        .col("frequency")
        .col("opened");
    for a in 0..n_accounts {
        let d = sample_categorical(&district_weights, &mut rng) as usize;
        account_district.push(d);
        // frequency: 0 monthly, 1 weekly, 2 after-transaction; wealthier
        // districts skew to high-frequency statements.
        let freq_weights = match district_salary[d] {
            3 => [0.3, 0.4, 0.3],
            2 => [0.5, 0.35, 0.15],
            _ => [0.75, 0.2, 0.05],
        };
        let freq = sample_categorical(&freq_weights, &mut rng);
        account_freq.push(freq);
        let opened = rng.gen_range(0..5i64);
        account_builder
            .push_row(vec![
                Cell::Key(a as i64),
                Cell::Key(d as i64),
                Cell::Val(Value::Int(freq as i64)),
                Cell::Val(Value::Int(opened)),
            ])
            .expect("account row arity");
    }

    // ---- transaction(trans_id, account fk, ttype, operation, amount, balance) ----
    // Busy accounts (high frequency) produce many more transactions.
    let account_weights: Vec<f64> = account_freq
        .iter()
        .map(|&f| match f {
            2 => 5.0,
            1 => 2.5,
            _ => 1.0,
        })
        .collect();
    let mut tx_builder = reldb::TableBuilder::new("transaction")
        .key("trans_id")
        .fk("account", "account")
        .col("ttype")
        .col("operation")
        .col("amount")
        .col("balance");
    for t in 0..n_transactions {
        let a = sample_categorical(&account_weights, &mut rng) as usize;
        let freq = account_freq[a];
        let salary = district_salary[account_district[a]];
        // ttype: 0 credit, 1 debit, 2 transfer.
        let type_weights = match freq {
            2 => [0.25, 0.45, 0.3],
            1 => [0.35, 0.45, 0.2],
            _ => [0.5, 0.42, 0.08],
        };
        let ttype = sample_categorical(&type_weights, &mut rng) as i64;
        // operation: 5 kinds, correlated with type.
        let op_weights: [f64; 5] = match ttype {
            0 => [0.5, 0.3, 0.1, 0.05, 0.05],
            1 => [0.05, 0.15, 0.4, 0.3, 0.1],
            _ => [0.05, 0.05, 0.15, 0.25, 0.5],
        };
        let operation = sample_categorical(&op_weights, &mut rng) as i64;
        // amount bucket grows with district wealth.
        let amount_target = 1.0 + salary as f64;
        let amount_weights: Vec<f64> = (0..5)
            .map(|b| (-(b as f64 - amount_target).powi(2) / 2.0).exp() + 0.02)
            .collect();
        let amount = sample_categorical(&amount_weights, &mut rng) as i64;
        // balance bucket correlates with amount and wealth.
        let balance_target = (amount as f64 + salary as f64) / 2.0 + 1.0;
        let balance_weights: Vec<f64> = (0..5)
            .map(|b| (-(b as f64 - balance_target).powi(2) / 2.5).exp() + 0.02)
            .collect();
        let balance = sample_categorical(&balance_weights, &mut rng) as i64;
        tx_builder
            .push_row(vec![
                Cell::Key(t as i64),
                Cell::Key(a as i64),
                Cell::Val(Value::Int(ttype)),
                Cell::Val(Value::Int(operation)),
                Cell::Val(Value::Int(amount)),
                Cell::Val(Value::Int(balance)),
            ])
            .expect("transaction row arity");
    }

    DatabaseBuilder::new()
        .add_table(district_builder.finish().expect("district table"))
        .add_table(account_builder.finish().expect("account table"))
        .add_table(tx_builder.finish().expect("transaction table"))
        .finish()
        .expect("referential integrity holds by construction")
}

/// Like [`fin_database_sized`] plus the PKDD'99 `card` table: cards
/// attach to accounts (busy, high-frequency accounts hold more cards) and
/// card type (0 junior, 1 classic, 2 gold) tracks the district's wealth —
/// a second child table whose skew correlates with the transaction skew,
/// giving 4-table join workloads their bite.
///
/// The base three tables are byte-identical to [`fin_database_sized`] for
/// the same seed (the card generator uses a decorrelated RNG stream).
pub fn fin_database_with_cards(
    n_districts: usize,
    n_accounts: usize,
    n_transactions: usize,
    n_cards: usize,
    seed: u64,
) -> Database {
    let base = fin_database_sized(n_districts, n_accounts, n_transactions, seed);
    let account = base.table("account").expect("account");
    let district = base.table("district").expect("district");
    let freq_codes = account.codes("frequency").expect("frequency").to_vec();
    let salary_codes = district.codes("avg_salary").expect("avg_salary").to_vec();
    let acc_to_dist = base.fk_target_rows("account", "district").expect("fk").to_vec();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA7D_CA7D);
    let account_weights: Vec<f64> = freq_codes
        .iter()
        .map(|&f| match f {
            2 => 4.0,
            1 => 2.0,
            _ => 1.0,
        })
        .collect();
    let mut card_builder = reldb::TableBuilder::new("card")
        .key("card_id")
        .fk("account", "account")
        .col("ctype");
    for c in 0..n_cards {
        let a = sample_categorical(&account_weights, &mut rng) as usize;
        let salary = salary_codes[acc_to_dist[a] as usize];
        let type_weights = match salary {
            3 => [0.1, 0.4, 0.5],
            2 => [0.2, 0.5, 0.3],
            _ => [0.4, 0.5, 0.1],
        };
        let ctype = sample_categorical(&type_weights, &mut rng) as i64;
        card_builder
            .push_row(vec![
                Cell::Key(c as i64),
                Cell::Key(a as i64),
                Cell::Val(Value::Int(ctype)),
            ])
            .expect("card row arity");
    }
    let mut builder = DatabaseBuilder::new();
    for t in base.tables() {
        builder = builder.add_table(t.clone());
    }
    builder
        .add_table(card_builder.finish().expect("card table"))
        .finish()
        .expect("referential integrity holds by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let db = fin_database_sized(77, 450, 5_000, 1);
        assert_eq!(db.table("district").unwrap().n_rows(), 77);
        assert_eq!(db.table("account").unwrap().n_rows(), 450);
        assert_eq!(db.table("transaction").unwrap().n_rows(), 5_000);
    }

    #[test]
    fn transaction_count_skews_to_busy_accounts() {
        let db = fin_database_sized(77, 500, 20_000, 2);
        let account = db.table("account").unwrap();
        let freq = account.codes("frequency").unwrap();
        let mut counts = vec![0usize; account.n_rows()];
        for &a in db.fk_target_rows("transaction", "account").unwrap() {
            counts[a as usize] += 1;
        }
        let avg = |f: u32| {
            let (mut s, mut n) = (0.0f64, 0.0f64);
            for (row, &fr) in freq.iter().enumerate() {
                if fr == f {
                    s += counts[row] as f64;
                    n += 1.0;
                }
            }
            s / n.max(1.0)
        };
        assert!(avg(2) > 2.0 * avg(0), "busy={} lazy={}", avg(2), avg(0));
    }

    #[test]
    fn amount_correlates_with_district_wealth_through_two_hops() {
        let db = fin_database_sized(77, 800, 30_000, 3);
        let tx = db.table("transaction").unwrap();
        let district = db.table("district").unwrap();
        let amount = tx.codes("amount").unwrap();
        let salary = district.codes("avg_salary").unwrap();
        let tx_to_acc = db.fk_target_rows("transaction", "account").unwrap();
        let acc_to_dist = db.fk_target_rows("account", "district").unwrap();
        let mean_amount = |rich: bool| {
            let (mut s, mut n) = (0.0f64, 0.0f64);
            for (row, &a) in tx_to_acc.iter().enumerate() {
                let d = acc_to_dist[a as usize] as usize;
                if (salary[d] >= 2) == rich {
                    s += amount[row] as f64;
                    n += 1.0;
                }
            }
            s / n.max(1.0)
        };
        assert!(mean_amount(true) > mean_amount(false) + 0.5);
    }

    #[test]
    fn card_table_extends_without_perturbing_the_base() {
        let base = fin_database_sized(20, 100, 1000, 5);
        let with_cards = fin_database_with_cards(20, 100, 1000, 400, 5);
        assert_eq!(
            base.table("transaction").unwrap().codes("amount").unwrap(),
            with_cards.table("transaction").unwrap().codes("amount").unwrap()
        );
        assert_eq!(with_cards.table("card").unwrap().n_rows(), 400);
        // Gold cards concentrate in wealthy districts.
        let card = with_cards.table("card").unwrap();
        let district = with_cards.table("district").unwrap();
        let ctype = card.codes("ctype").unwrap();
        let salary = district.codes("avg_salary").unwrap();
        let card_to_acc = with_cards.fk_target_rows("card", "account").unwrap();
        let acc_to_dist = with_cards.fk_target_rows("account", "district").unwrap();
        let gold_frac = |rich: bool| {
            let (mut g, mut n) = (0.0f64, 0.0f64);
            for (row, &a) in card_to_acc.iter().enumerate() {
                let d = acc_to_dist[a as usize] as usize;
                if (salary[d] >= 2) == rich {
                    n += 1.0;
                    if ctype[row] == 2 {
                        g += 1.0;
                    }
                }
            }
            g / n.max(1.0)
        };
        assert!(gold_frac(true) > gold_frac(false));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fin_database_sized(20, 100, 1000, 5);
        let b = fin_database_sized(20, 100, 1000, 5);
        assert_eq!(
            a.table("transaction").unwrap().codes("amount").unwrap(),
            b.table("transaction").unwrap().codes("amount").unwrap()
        );
    }
}
