//! Synthetic tuberculosis-patient database.
//!
//! Three tables mirroring the paper's TB dataset (§5): `strain` (2K rows),
//! `patient` (2.5K rows, FK → strain) and `contact` (19K rows, FK →
//! patient). The generator bakes in the three effects §3 of the paper
//! builds PRMs to capture — and which the baselines' uniformity
//! assumptions miss:
//!
//! 1. **Join-indicator skew** — non-unique strains are roughly 3× more
//!    likely to join with U.S.-born patients than with foreign-born ones;
//!    unique strains join uniformly (the example of §3.2).
//! 2. **Join-cardinality skew** — middle-aged patients have more contacts
//!    than elderly ones (§3.1).
//! 3. **Cross-table correlation** — a contact's type and age depend on the
//!    patient's age and gender (the PRM of Fig. 3(a)).

use bayesnet::sample::sample_categorical;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reldb::{Cell, Database, DatabaseBuilder, Value};

/// Row counts matching the paper.
pub const N_STRAINS: usize = 2_000;
/// Patients in the paper's TB dataset.
pub const N_PATIENTS: usize = 2_500;
/// Contacts in the paper's TB dataset.
pub const N_CONTACTS: usize = 19_000;

/// Builds the TB database with the paper's cardinalities.
pub fn tb_database(seed: u64) -> Database {
    tb_database_sized(N_STRAINS, N_PATIENTS, N_CONTACTS, seed)
}

/// Builds a TB-shaped database with custom row counts (used by scaling
/// benches and tests).
pub fn tb_database_sized(
    n_strains: usize,
    n_patients: usize,
    n_contacts: usize,
    seed: u64,
) -> Database {
    tb_database_with_skew(n_strains, n_patients, n_contacts, seed, 3.0)
}

/// Like [`tb_database_sized`] but with an explicit **join-skew dial**:
/// `skew` is the preference multiplier of US-born patients for non-unique
/// strains (the paper's §3.2 effect). `skew = 1.0` removes the
/// join-indicator dependence entirely; the paper's scenario corresponds to
/// `skew ≈ 3.0`. Used by the skew-sweep ablation to locate where the PRM's
/// advantage over the uniform-join assumption appears.
pub fn tb_database_with_skew(
    n_strains: usize,
    n_patients: usize,
    n_contacts: usize,
    seed: u64,
    skew: f64,
) -> Database {
    assert!(skew > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);

    // ---- strain(strain_id, unique, drug_resist, lineage) ----
    // unique: yes=1/no=0 after dictionary sort ("no" < "yes").
    let mut strain_unique = Vec::with_capacity(n_strains);
    let mut strain_builder = reldb::TableBuilder::new("strain")
        .key("strain_id")
        .col("unique")
        .col("drug_resist")
        .col("lineage");
    for s in 0..n_strains {
        let unique = rng.gen_bool(0.6);
        strain_unique.push(unique);
        let lineage = rng.gen_range(0..5i64);
        // Resistance correlates with lineage.
        let dr_weights = match lineage {
            0 | 1 => [0.8, 0.15, 0.05],
            2 => [0.55, 0.3, 0.15],
            _ => [0.35, 0.4, 0.25],
        };
        let dr = sample_categorical(&dr_weights, &mut rng) as i64;
        strain_builder
            .push_row(vec![
                Cell::Key(s as i64),
                Cell::Val(Value::Str(if unique { "yes" } else { "no" }.into())),
                Cell::Val(Value::Int(dr)),
                Cell::Val(Value::Int(lineage)),
            ])
            .expect("strain row arity");
    }

    // ---- patient(patient_id, strain fk, age, gender, usborn, hiv, homeless) ----
    // Ages are 6 groups: 0:0-19, 1:20-34, 2:35-49, 3:50-64, 4:65-79, 5:80+.
    let age_dist = [0.08, 0.22, 0.28, 0.22, 0.14, 0.06];
    let mut patient_age = Vec::with_capacity(n_patients);
    let mut patient_builder = reldb::TableBuilder::new("patient")
        .key("patient_id")
        .fk("strain", "strain")
        .col("age")
        .col("gender")
        .col("usborn")
        .col("hiv")
        .col("homeless");
    // Pre-compute the two strain-preference weight vectors of §3.2:
    // w(usborn=yes, s) = 3 for non-unique strains, 0.8 for unique;
    // w(usborn=no, s) = 1 for non-unique, 0.8 for unique.
    let weights_us: Vec<f64> =
        strain_unique.iter().map(|&u| if u { 0.8 } else { skew }).collect();
    let weights_foreign: Vec<f64> =
        strain_unique.iter().map(|&u| if u { 0.8 } else { 1.0 }).collect();
    for p in 0..n_patients {
        let age = sample_categorical(&age_dist, &mut rng);
        patient_age.push(age);
        let gender = i64::from(rng.gen_bool(0.42));
        let usborn = rng.gen_bool(0.45);
        // HIV co-infection is more common among younger patients.
        let hiv_weights = if age <= 2 { [0.7, 0.2, 0.1] } else { [0.88, 0.08, 0.04] };
        let hiv = sample_categorical(&hiv_weights, &mut rng) as i64;
        // Homelessness is more common among middle-aged U.S.-born patients.
        let p_homeless = if usborn && (2..=3).contains(&age) { 0.25 } else { 0.06 };
        let homeless = i64::from(rng.gen_bool(p_homeless));
        let strain = sample_categorical(
            if usborn { &weights_us } else { &weights_foreign },
            &mut rng,
        ) as i64;
        patient_builder
            .push_row(vec![
                Cell::Key(p as i64),
                Cell::Key(strain),
                Cell::Val(Value::Int(age as i64)),
                Cell::Val(Value::Int(gender)),
                Cell::Val(Value::Str(if usborn { "yes" } else { "no" }.into())),
                Cell::Val(Value::Int(hiv)),
                Cell::Val(Value::Int(homeless)),
            ])
            .expect("patient row arity");
    }

    // ---- contact(contact_id, patient fk, contype, age, infected, household) ----
    // Contact counts skew towards middle-aged patients (§3.1): weight by age.
    let count_weight = |age: u32| match age {
        1 | 2 => 3.0, // middle-aged: many contacts
        3 => 2.0,
        0 => 1.5,
        _ => 0.6, // elderly: few contacts, and rarely roommates
    };
    let patient_weights: Vec<f64> =
        patient_age.iter().map(|&a| count_weight(a)).collect();
    let mut contact_builder = reldb::TableBuilder::new("contact")
        .key("contact_id")
        .fk("patient", "patient")
        .col("contype")
        .col("age")
        .col("infected")
        .col("household");
    for c in 0..n_contacts {
        let p = sample_categorical(&patient_weights, &mut rng) as usize;
        let page = patient_age[p];
        // contype: 0 coworker, 1 friend, 2 household, 3 relative, 4 roommate.
        let contype_weights = match page {
            1 | 2 => [0.3, 0.25, 0.2, 0.15, 0.1],
            3 => [0.15, 0.2, 0.3, 0.25, 0.1],
            0 => [0.05, 0.3, 0.4, 0.2, 0.05],
            _ => [0.02, 0.13, 0.35, 0.48, 0.02], // elderly roommates are rare
        };
        let contype = sample_categorical(&contype_weights, &mut rng) as i64;
        // Contact age tracks patient age with noise.
        let jitter = rng.gen_range(0..3) as i64 - 1;
        let cage = (page as i64 + jitter).clamp(0, 5);
        // Infection likelier for household/roommate contacts.
        let p_inf = match contype {
            2 | 4 => 0.35,
            3 => 0.2,
            _ => 0.08,
        };
        let infected = i64::from(rng.gen_bool(p_inf));
        let household = i64::from(matches!(contype, 2 | 4) && rng.gen_bool(0.9));
        contact_builder
            .push_row(vec![
                Cell::Key(c as i64),
                Cell::Key(p as i64),
                Cell::Val(Value::Int(contype)),
                Cell::Val(Value::Int(cage)),
                Cell::Val(Value::Int(infected)),
                Cell::Val(Value::Int(household)),
            ])
            .expect("contact row arity");
    }

    DatabaseBuilder::new()
        .add_table(strain_builder.finish().expect("strain table"))
        .add_table(patient_builder.finish().expect("patient table"))
        .add_table(contact_builder.finish().expect("contact table"))
        .finish()
        .expect("referential integrity holds by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let db = tb_database_sized(200, 250, 1900, 1);
        assert_eq!(db.table("strain").unwrap().n_rows(), 200);
        assert_eq!(db.table("patient").unwrap().n_rows(), 250);
        assert_eq!(db.table("contact").unwrap().n_rows(), 1900);
    }

    #[test]
    fn join_skew_usborn_to_nonunique_strains() {
        let db = tb_database_sized(400, 2000, 100, 2);
        let patient = db.table("patient").unwrap();
        let strain = db.table("strain").unwrap();
        let usborn_codes = patient.codes("usborn").unwrap();
        let usborn_yes = patient.domain("usborn").unwrap().code(&"yes".into()).unwrap();
        let unique_codes = strain.codes("unique").unwrap();
        let unique_yes = strain.domain("unique").unwrap().code(&"yes".into()).unwrap();
        let fk = db.fk_target_rows("patient", "strain").unwrap();
        // P(non-unique strain | usborn) should clearly exceed
        // P(non-unique strain | foreign-born).
        let frac_nonunique = |want_usborn: bool| {
            let (mut hits, mut n) = (0.0f64, 0.0f64);
            for (row, &s) in fk.iter().enumerate() {
                if (usborn_codes[row] == usborn_yes) == want_usborn {
                    n += 1.0;
                    if unique_codes[s as usize] != unique_yes {
                        hits += 1.0;
                    }
                }
            }
            hits / n.max(1.0)
        };
        let us = frac_nonunique(true);
        let foreign = frac_nonunique(false);
        assert!(us > foreign + 0.1, "us={us} foreign={foreign}");
    }

    #[test]
    fn contact_count_skew_by_patient_age() {
        let db = tb_database_sized(100, 1000, 10_000, 3);
        let patient = db.table("patient").unwrap();
        let ages = patient.codes("age").unwrap();
        let mut counts = vec![0usize; patient.n_rows()];
        for &p in db.fk_target_rows("contact", "patient").unwrap() {
            counts[p as usize] += 1;
        }
        let avg = |age_code: u32| {
            let (mut s, mut n) = (0.0f64, 0.0f64);
            for (row, &a) in ages.iter().enumerate() {
                if a == age_code {
                    s += counts[row] as f64;
                    n += 1.0;
                }
            }
            s / n.max(1.0)
        };
        // Middle-aged (codes 1–2) vs elderly (codes 4–5).
        let middle = (avg(1) + avg(2)) / 2.0;
        let elderly = (avg(4) + avg(5)) / 2.0;
        assert!(middle > 1.5 * elderly, "middle={middle} elderly={elderly}");
    }

    #[test]
    fn contype_correlates_with_patient_age() {
        let db = tb_database_sized(100, 1000, 20_000, 4);
        let contact = db.table("contact").unwrap();
        let patient = db.table("patient").unwrap();
        let contype = contact.codes("contype").unwrap();
        let page = patient.codes("age").unwrap();
        let fk = db.fk_target_rows("contact", "patient").unwrap();
        // Coworker contacts (code 0) should be much rarer for elderly
        // patients.
        let frac_coworker = |elderly: bool| {
            let (mut hits, mut n) = (0.0f64, 0.0f64);
            for (row, &p) in fk.iter().enumerate() {
                if (page[p as usize] >= 4) == elderly {
                    n += 1.0;
                    if contype[row] == 0 {
                        hits += 1.0;
                    }
                }
            }
            hits / n.max(1.0)
        };
        assert!(frac_coworker(false) > 3.0 * frac_coworker(true));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tb_database_sized(50, 100, 500, 7);
        let b = tb_database_sized(50, 100, 500, 7);
        assert_eq!(
            a.table("contact").unwrap().codes("contype").unwrap(),
            b.table("contact").unwrap().codes("contype").unwrap()
        );
    }
}
