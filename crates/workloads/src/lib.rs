//! # workloads — synthetic datasets and query suites for the evaluation
//!
//! The paper evaluates on three proprietary datasets (a 1993 Census CPS
//! extract, the San Francisco tuberculosis patient database, and the
//! PKDD'99 financial database). None is redistributable, so this crate
//! reproduces each as a **seeded synthetic generator** with the schema,
//! cardinalities, and — crucially — the specific correlation and join-skew
//! structure the paper describes (see `DESIGN.md` §4 for the substitution
//! argument).
//!
//! * [`census`] — single 150K-row table, 13 attributes with the paper's
//!   domain sizes, generated from a hand-specified ground-truth Bayesian
//!   network with strong conditional-independence structure.
//! * [`tb`] — Strain (2K) ← Patient (2.5K) ← Contact (19K), with
//!   join-indicator skew (US-born patients cluster on non-unique strains),
//!   contact-count skew by patient age, and cross-table attribute
//!   correlations.
//! * [`fin`] — District (77) ← Account (4.5K) ← Transaction (106K), with
//!   fk-chain correlations and per-account transaction-count skew.
//! * [`suites`] — exhaustive equality query suites over attribute subsets
//!   and select-join suites over table chains, as used in Figs. 4–6.

pub mod census;
pub mod fin;
pub mod suites;
pub mod tb;

pub use census::{census_database, census_table};
pub use fin::{fin_database, fin_database_with_cards};
pub use suites::{
    join_chain_range_suite, join_chain_suite, single_table_eq_suite,
    single_table_range_suite, QuerySuite,
};
pub use tb::{tb_database, tb_database_with_skew};
