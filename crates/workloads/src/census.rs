//! Synthetic Census dataset.
//!
//! Mirrors the 1993 CPS extract the paper uses: a single table with the
//! attribute names of Fig. 2(a) and the domain sizes listed in §2.2
//! (18, 9, 17, 7, 24, 5, 2, 3, 3, 3, 42, 4) plus `HoursPerWeek` (12),
//! which the Fig. 4 query suites reference. Rows are sampled from a
//! hand-specified ground-truth Bayesian network whose structure echoes the
//! learned network of Fig. 2(a): income is driven by education and age,
//! children by income/age/marital status, and so on — so the data contains
//! exactly the kind of conditional-independence structure the estimators
//! compete on.

use bayesnet::cpd::TableCpd;
use bayesnet::sample::sample_columns;
use bayesnet::BayesNet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reldb::{Database, DatabaseBuilder, Table, TableBuilder, Value};

/// Attribute names and domain sizes, in column order.
pub const ATTRS: &[(&str, usize)] = &[
    ("age", 18),
    ("worker_class", 9),
    ("education", 17),
    ("marital_status", 7),
    ("industry", 24),
    ("race", 5),
    ("sex", 2),
    ("child_support", 3),
    ("earner", 3),
    ("children", 3),
    ("income", 42),
    ("employ_type", 4),
    ("hours_per_week", 12),
];

/// Index of an attribute within [`ATTRS`].
fn idx(name: &str) -> usize {
    ATTRS.iter().position(|&(n, _)| n == name).expect("known attribute")
}

/// The ground-truth generator network.
///
/// CPDs are generated procedurally: each family's distribution is a
/// softmax-like ramp whose mode moves with the parent codes, giving strong
/// but noisy dependencies (correlations well above what the
/// attribute-value-independence assumption can capture).
pub fn census_bn() -> BayesNet {
    let names: Vec<String> = ATTRS.iter().map(|&(n, _)| n.to_owned()).collect();
    let cards: Vec<usize> = ATTRS.iter().map(|&(_, c)| c).collect();
    let mut bn = BayesNet::new(names, cards);

    let card = |name: &str| ATTRS[idx(name)].1;

    // Roots.
    set(&mut bn, "age", &[], |child, _| {
        // Working-age bulge.
        let x = child as f64;
        (-(x - 7.0).powi(2) / 18.0).exp() + 0.05
    });
    set(&mut bn, "sex", &[], |child, _| if child == 0 { 0.52 } else { 0.48 });
    set(&mut bn, "race", &[], |child, _| [0.62, 0.17, 0.11, 0.06, 0.04][child as usize]);

    // education ← age: older cohorts skew lower, prime-age higher.
    set(&mut bn, "education", &["age"], |child, pa| {
        let target = 4.0 + 0.9 * (pa[0] as f64).min(10.0);
        ramp(child, card("education"), target, 3.0)
    });
    // marital_status ← age.
    set(&mut bn, "marital_status", &["age"], |child, pa| {
        let age = pa[0] as f64;
        let target = if age < 4.0 { 0.5 } else { 1.5 + age / 5.0 };
        ramp(child, card("marital_status"), target, 1.2)
    });
    // worker_class ← education.
    set(&mut bn, "worker_class", &["education"], |child, pa| {
        let target = (pa[0] as f64) / 2.2;
        ramp(child, card("worker_class"), target, 1.5)
    });
    // industry ← worker_class.
    set(&mut bn, "industry", &["worker_class"], |child, pa| {
        let target = 2.0 + (pa[0] as f64) * 2.4;
        ramp(child, card("industry"), target, 3.0)
    });
    // income ← education, age: the paper's headline correlation.
    set(&mut bn, "income", &["education", "age"], |child, pa| {
        let edu = pa[0] as f64;
        let age = pa[1] as f64;
        let peak = 10.0f64.min(age) / 10.0; // earnings peak mid-career
        let target = 2.0 + 1.9 * edu * peak;
        ramp(child, card("income"), target, 4.0)
    });
    // employ_type ← worker_class.
    set(&mut bn, "employ_type", &["worker_class"], |child, pa| {
        let target = (pa[0] as f64) / 2.5;
        ramp(child, card("employ_type"), target, 0.8)
    });
    // earner ← income.
    set(&mut bn, "earner", &["income"], |child, pa| {
        let target = (pa[0] as f64) / 16.0;
        ramp(child, card("earner"), target, 0.6)
    });
    // child_support ← marital_status.
    set(&mut bn, "child_support", &["marital_status"], |child, pa| {
        let target = if pa[0] >= 2 && pa[0] <= 4 { 1.3 } else { 0.2 };
        ramp(child, card("child_support"), target, 0.7)
    });
    // children ← income, age, marital_status (Fig. 2(b)'s family).
    set(&mut bn, "children", &["income", "age", "marital_status"], |child, pa| {
        let income = pa[0] as f64;
        let age = pa[1] as f64;
        let married = (1..=3).contains(&pa[2]);
        let has_kids = if !(3.0..=13.0).contains(&age) {
            0.1
        } else if married {
            0.55 + income / 120.0
        } else {
            0.25
        };
        match child {
            0 => 1.0 - has_kids, // none
            1 => has_kids * 0.7, // yes
            _ => has_kids * 0.3, // N/A-style bucket
        }
    });
    // hours_per_week ← worker_class, income.
    set(&mut bn, "hours_per_week", &["worker_class", "income"], |child, pa| {
        let target = 3.0 + (pa[0] as f64) / 2.0 + (pa[1] as f64) / 8.0;
        ramp(child, card("hours_per_week"), target, 1.8)
    });
    bn
}

/// Discretized bell over `0..card` centred at `target`.
fn ramp(child: u32, card: usize, target: f64, width: f64) -> f64 {
    let _ = card;
    let x = child as f64;
    (-(x - target).powi(2) / (2.0 * width * width)).exp() + 0.01
}

fn set(bn: &mut BayesNet, child: &str, parents: &[&str], w: impl Fn(u32, &[u32]) -> f64) {
    let c = idx(child);
    let ps: Vec<usize> = parents.iter().map(|p| idx(p)).collect();
    let child_card = ATTRS[c].1;
    let parent_cards: Vec<usize> = ps.iter().map(|&p| ATTRS[p].1).collect();
    let rows: usize = parent_cards.iter().product::<usize>().max(1);
    let mut probs = Vec::with_capacity(rows * child_card);
    let mut pa = vec![0u32; ps.len()];
    for row in 0..rows {
        let mut rem = row;
        for (slot, &pc) in pa.iter_mut().zip(&parent_cards).rev() {
            *slot = (rem % pc) as u32;
            rem /= pc;
        }
        // `pa` currently decodes with the last parent fastest; reverse
        // loop above fills in reverse order, which is exactly row-major.
        let weights: Vec<f64> =
            (0..child_card as u32).map(|v| w(v, &pa).max(1e-9)).collect();
        let total: f64 = weights.iter().sum();
        probs.extend(weights.into_iter().map(|x| x / total));
    }
    bn.set_family(c, &ps, TableCpd::new(child_card, parent_cards, probs).into());
}

/// Generates the Census table with `n_rows` rows.
pub fn census_table(n_rows: usize, seed: u64) -> Table {
    let bn = census_bn();
    let mut rng = StdRng::seed_from_u64(seed);
    let cols = sample_columns(&bn, n_rows, &mut rng);
    let mut builder = TableBuilder::new("census");
    for &(name, _) in ATTRS {
        builder = builder.col(name);
    }
    let mut row = Vec::with_capacity(ATTRS.len());
    for r in 0..n_rows {
        row.clear();
        for col in &cols {
            row.push(Value::Int(col[r] as i64));
        }
        builder.push_row(row.clone()).expect("arity matches ATTRS");
    }
    ensure_full_domains(builder).expect("census table builds")
}

/// A database containing just the Census table.
pub fn census_database(n_rows: usize, seed: u64) -> Database {
    DatabaseBuilder::new()
        .add_table(census_table(n_rows, seed))
        .finish()
        .expect("single-table database is always consistent")
}

/// Appends one synthetic row per attribute value so every declared domain
/// value appears at least once (keeps dictionary codes aligned with the
/// generator's code space). The padding rows are a negligible fraction of
/// the data (≤ 42 rows out of 150K).
fn ensure_full_domains(mut builder: TableBuilder) -> reldb::Result<Table> {
    let max_card = ATTRS.iter().map(|&(_, c)| c).max().expect("non-empty ATTRS");
    for v in 0..max_card {
        let row: Vec<Value> =
            ATTRS.iter().map(|&(_, card)| Value::Int((v % card) as i64)).collect();
        builder.push_row(row)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_declared_shape() {
        let t = census_table(2000, 1);
        assert_eq!(t.schema().value_attrs().len(), ATTRS.len());
        for &(name, card) in ATTRS {
            assert_eq!(t.domain(name).unwrap().card(), card, "{name}");
        }
        assert!(t.n_rows() >= 2000);
    }

    #[test]
    fn codes_equal_values_for_all_attributes() {
        // Domains are 0..card, so dictionary code == integer value.
        let t = census_table(500, 2);
        let dom = t.domain("income").unwrap();
        for c in 0..dom.card() as u32 {
            assert_eq!(dom.value(c), &Value::Int(c as i64));
        }
    }

    #[test]
    fn education_income_are_strongly_correlated() {
        let t = census_table(20_000, 3);
        let edu = t.codes("education").unwrap();
        let inc = t.codes("income").unwrap();
        // Mean income for low vs high education.
        let mean = |pred: &dyn Fn(u32) -> bool| {
            let (mut s, mut n) = (0f64, 0f64);
            for (&e, &i) in edu.iter().zip(inc) {
                if pred(e) {
                    s += i as f64;
                    n += 1.0;
                }
            }
            s / n.max(1.0)
        };
        let low = mean(&|e| e < 5);
        let high = mean(&|e| e >= 12);
        assert!(high > low + 5.0, "low={low} high={high}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = census_table(300, 9);
        let b = census_table(300, 9);
        assert_eq!(a.codes("income").unwrap(), b.codes("income").unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let a = census_table(300, 1);
        let b = census_table(300, 2);
        assert_ne!(a.codes("income").unwrap(), b.codes("income").unwrap());
    }
}
