//! Full-scale generator validation: the synthetic datasets must exhibit
//! the quantitative shapes the paper documents for the originals, at the
//! paper's cardinalities.

use workloads::census::{census_table, ATTRS};
use workloads::fin::fin_database;
use workloads::tb::tb_database;

#[test]
fn census_domain_sizes_match_the_paper() {
    // §2.2 lists the domain sizes; our ATTRS table pins them.
    let expected: &[(&str, usize)] = &[
        ("age", 18),
        ("worker_class", 9),
        ("education", 17),
        ("marital_status", 7),
        ("industry", 24),
        ("race", 5),
        ("sex", 2),
        ("income", 42),
        ("employ_type", 4),
    ];
    for &(name, card) in expected {
        let declared = ATTRS.iter().find(|&&(n, _)| n == name).unwrap().1;
        assert_eq!(declared, card, "{name}");
    }
    // And the generated table realizes every domain.
    let t = census_table(3_000, 99);
    for &(name, card) in ATTRS {
        assert_eq!(t.domain(name).unwrap().card(), card, "{name}");
    }
}

#[test]
fn tb_cardinalities_and_join_probabilities() {
    let db = tb_database(42);
    assert_eq!(db.table("strain").unwrap().n_rows(), 2_000);
    assert_eq!(db.table("patient").unwrap().n_rows(), 2_500);
    assert_eq!(db.table("contact").unwrap().n_rows(), 19_000);

    // §3.2's effect, measured as empirical join-indicator probabilities:
    // P(J | usborn, non-unique) should be ~3x P(J | foreign, non-unique).
    let patient = db.table("patient").unwrap();
    let strain = db.table("strain").unwrap();
    let usborn = patient.codes("usborn").unwrap();
    let yes = patient.domain("usborn").unwrap().code(&"yes".into()).unwrap();
    let unique = strain.codes("unique").unwrap();
    let uyes = strain.domain("unique").unwrap().code(&"yes".into()).unwrap();
    let fk = db.fk_target_rows("patient", "strain").unwrap();

    let n_nonunique = unique.iter().filter(|&&u| u != uyes).count() as f64;
    let count_pat =
        |want_us: bool| usborn.iter().filter(|&&u| (u == yes) == want_us).count() as f64;
    let joins_nonunique = |want_us: bool| {
        fk.iter()
            .enumerate()
            .filter(|&(row, &s)| {
                (usborn[row] == yes) == want_us && unique[s as usize] != uyes
            })
            .count() as f64
    };
    let p_us = joins_nonunique(true) / (count_pat(true) * n_nonunique);
    let p_foreign = joins_nonunique(false) / (count_pat(false) * n_nonunique);
    let ratio = p_us / p_foreign;
    // The generator expresses a 3x *preference weight*; the realized
    // per-pair probability ratio is compressed by normalization over the
    // whole strain population:
    //   ratio = 3·(N_nu + 0.8·N_u) / (3·N_nu + 0.8·N_u).
    let n_unique = unique.iter().filter(|&&u| u == uyes).count() as f64;
    let implied =
        3.0 * (n_nonunique + 0.8 * n_unique) / (3.0 * n_nonunique + 0.8 * n_unique);
    assert!(
        (ratio - implied).abs() / implied < 0.15,
        "measured ratio {ratio:.2} vs generator-implied {implied:.2}"
    );
    // Qualitative direction of §3.2 regardless of compression.
    assert!(ratio > 1.3, "join skew direction lost: {ratio:.2}");
}

#[test]
fn fin_cardinalities_match_the_paper() {
    let db = fin_database(42);
    assert_eq!(db.table("district").unwrap().n_rows(), 77);
    assert_eq!(db.table("account").unwrap().n_rows(), 4_500);
    assert_eq!(db.table("transaction").unwrap().n_rows(), 106_000);
}
