//! `prmsel top` — a live terminal dashboard over the HTTP observability
//! plane.
//!
//! Polls `/metrics` and `/timeseries` (plus `/alerts` and `/health`) on
//! an interval via the std-only [`httpd::get`] client, and redraws one
//! screen of plain ANSI: qps and warm-latency sparklines over the
//! sampler's windows, plan/memo hit ratios, per-template q-error, and
//! any firing watchdog alerts. No terminal library, no raw mode — the
//! redraw is a cursor-home + clear escape, so it degrades to appended
//! frames on a dumb terminal, and `--once` renders a single frame with
//! no escapes at all (what the CI smoke job asserts on).

use std::time::Duration;

use crate::commands::{flag_value, required, CliError, CliResult};
use obs::json::Json;

/// Entry point for `prmsel top`.
pub(crate) fn top(args: &[String]) -> CliResult<String> {
    let addr = required(args, "--addr")?;
    let interval: f64 = flag_value(args, "--interval-secs")
        .map(|v| v.parse().map_err(|_| CliError(format!("bad --interval-secs `{v}`"))))
        .transpose()?
        .unwrap_or(1.0);
    if args.iter().any(|a| a == "--once") {
        return frame(addr);
    }
    loop {
        let body = frame(addr)?;
        // Home + clear-to-end keeps the redraw flicker-free without
        // tracking line counts.
        print!("\x1b[H\x1b[2J{body}\n(ctrl-c to quit)\n");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_secs_f64(interval.max(0.1)));
    }
}

/// Fetches one round of endpoints and renders one dashboard frame.
fn frame(addr: &str) -> CliResult<String> {
    let fetch = |path: &str| -> CliResult<String> {
        let (status, body) = httpd::get(addr, path)
            .map_err(|e| CliError(format!("GET http://{addr}{path}: {e}")))?;
        // /health deliberately serves its body with a 503 when degraded;
        // everything else must be a 200.
        if status != 200 && path != "/health" {
            return Err(CliError(format!("GET http://{addr}{path}: HTTP {status}")));
        }
        Ok(body)
    };
    let metrics = fetch("/metrics")?;
    let snap = obs::openmetrics::parse(&metrics)
        .map_err(|e| CliError(format!("invalid OpenMetrics from {addr}: {e}")))?;
    let ts = obs::json::parse(&fetch("/timeseries")?)
        .ok_or_else(|| CliError(format!("invalid /timeseries JSON from {addr}")))?;
    let alerts = obs::json::parse(&fetch("/alerts")?)
        .ok_or_else(|| CliError(format!("invalid /alerts JSON from {addr}")))?;
    let health = fetch("/health")?;
    Ok(render(addr, &snap, &ts, &alerts, &health))
}

/// A unicode sparkline of `values` scaled to their own max.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    if values.is_empty() || max <= 0.0 {
        return "▁".repeat(values.len().max(1));
    }
    values.iter().map(|&v| BARS[((v / max * 7.0).round() as usize).min(7)]).collect()
}

/// Pulls `key` out of every window object as an f64 series. `path` digs
/// one level deeper (e.g. windows[].latency_ns.p99).
fn window_series(ts: &Json, key: &str, path: Option<&str>) -> Vec<f64> {
    let Some(windows) = ts.get("windows").and_then(Json::as_array) else {
        return Vec::new();
    };
    windows
        .iter()
        .filter_map(|w| {
            let v = w.get(key)?;
            match path {
                Some(p) => v.get(p)?.as_f64(),
                None => v.as_f64(),
            }
        })
        .collect()
}

fn counter_of(snap: &obs::Snapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

fn render(
    addr: &str,
    snap: &obs::Snapshot,
    ts: &Json,
    alerts: &Json,
    health: &str,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();

    let healthy = !health.contains("\"status\":\"degraded\"");
    let sampling = matches!(ts.get("sampling"), Some(Json::Bool(true)));
    let _ = writeln!(
        out,
        "prmsel top — http://{addr}  health: {}  sampler: {}",
        if healthy { "ok" } else { "DEGRADED" },
        if sampling { "on" } else { "off" },
    );

    // --- rate + latency sparklines over the sampler windows ----------
    let qps = window_series(ts, "qps", None);
    let p50 = window_series(ts, "latency_ns", Some("p50"));
    let p99 = window_series(ts, "latency_ns", Some("p99"));
    let qerr99 = window_series(ts, "qerror_milli", Some("p99"));
    let last = |s: &[f64]| s.last().copied().unwrap_or(0.0);
    let _ = writeln!(out, "\n  qps        {:>10.1}  {}", last(&qps), sparkline(&qps));
    let _ = writeln!(out, "  lat p50 us {:>10.1}  {}", last(&p50) / 1e3, sparkline(&p50));
    let _ = writeln!(out, "  lat p99 us {:>10.1}  {}", last(&p99) / 1e3, sparkline(&p99));
    let _ = writeln!(
        out,
        "  q-err p99  {:>10.2}  {}",
        last(&qerr99) / 1e3,
        sparkline(&qerr99)
    );

    // --- cumulative cache ratios from /metrics ------------------------
    let ratio = |hit: u64, miss: u64| -> String {
        let total = hit + miss;
        if total == 0 {
            "    -".to_owned()
        } else {
            format!("{:>5.3}", hit as f64 / total as f64)
        }
    };
    let _ = writeln!(
        out,
        "\n  plan cache hit {}   P(E) memo hit {}   guard fallback {}/{}",
        ratio(counter_of(snap, "prm.plan.hit"), counter_of(snap, "prm.plan.miss")),
        ratio(
            counter_of(snap, "prm.plan.reduce.hit"),
            counter_of(snap, "prm.plan.reduce.miss")
        ),
        counter_of(snap, "prm.guard.fallback"),
        counter_of(snap, "prm.guard.queries"),
    );

    // --- model freshness + maintenance loop ---------------------------
    let _ = writeln!(
        out,
        "  model epoch {:>4}  staleness {:>7.0} ms   maintain {}b/{}r \
         {}refit {}swap {}relearn {}rej",
        snap.gauge("prm.model.epoch").unwrap_or(0.0),
        snap.gauge("prm.model.staleness_ms").unwrap_or(0.0),
        counter_of(snap, "prm.maintain.batches"),
        counter_of(snap, "prm.maintain.rows"),
        counter_of(snap, "prm.maintain.refits"),
        counter_of(snap, "prm.maintain.swaps"),
        counter_of(snap, "prm.maintain.relearn"),
        counter_of(snap, "prm.maintain.rejected"),
    );

    // --- per-template q-error over the newest window ------------------
    let templates = ts.get("templates").and_then(Json::as_array).unwrap_or(&[]);
    if !templates.is_empty() {
        let _ = writeln!(out, "\n  template          window n  q-err p50  q-err p99");
        for t in templates {
            let tpl = t.get("template").and_then(Json::as_str).unwrap_or("?");
            let h = t.get("qerror_milli");
            let field = |k: &str| {
                h.and_then(|h| h.get(k)).and_then(Json::as_f64).unwrap_or(f64::NAN)
            };
            let _ = writeln!(
                out,
                "  {tpl} {:>8} {:>10.2} {:>10.2}",
                field("n"),
                field("p50") / 1e3,
                field("p99") / 1e3,
            );
        }
    }

    // --- firing alerts ------------------------------------------------
    let active = alerts.get("active").and_then(Json::as_array).unwrap_or(&[]);
    if active.is_empty() {
        let _ = writeln!(out, "\n  alerts: none");
    } else {
        let _ = writeln!(out, "\n  alerts ({} active):", active.len());
        for a in active {
            let s = |k: &str| a.get(k).and_then(Json::as_str).unwrap_or("?");
            let f = |k: &str| a.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
            let _ = writeln!(
                out,
                "    [{}] {} = {:.3} (threshold {:.3})",
                s("severity"),
                s("metric"),
                f("value"),
                f("threshold"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_max_and_handles_empty() {
        assert_eq!(sparkline(&[]), "▁");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s: Vec<char> = sparkline(&[1.0, 8.0]).chars().collect();
        assert_eq!(s[1], '█');
        assert!(s[0] < s[1]);
    }

    #[test]
    fn top_renders_a_frame_against_a_live_server() {
        // Serve the real router with a little registry data behind it.
        obs::counter!("prm.plan.hit").add(0); // ensure series exist
        let server = httpd::Server::bind("127.0.0.1:0", crate::monitor::router())
            .expect("bind ephemeral");
        let addr = server.addr().to_string();
        obs::timeseries::sample_now();
        obs::timeseries::sample_now();
        let frame = frame(&addr).expect("frame renders");
        assert!(frame.contains("prmsel top"), "{frame}");
        assert!(frame.contains("qps"), "{frame}");
        assert!(frame.contains("alerts"), "{frame}");
        server.shutdown();
    }

    #[test]
    fn top_once_flag_returns_single_frame() {
        let server = httpd::Server::bind("127.0.0.1:0", crate::monitor::router())
            .expect("bind ephemeral");
        let addr = server.addr().to_string();
        let args: Vec<String> =
            ["--addr", &addr, "--once"].iter().map(|s| s.to_string()).collect();
        let out = top(&args).expect("top --once");
        assert!(out.contains("prmsel top"));
        assert!(!out.contains('\x1b'), "single frame carries no escapes");
        server.shutdown();
    }
}
