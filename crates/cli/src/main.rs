//! `prmsel` binary entry point; all logic lives in the library so the
//! commands (including the exit-code mapping) are unit-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(prmsel_cli::run_to_exit_code(&args));
}
