//! `prmsel` binary entry point; all logic lives in the library so the
//! commands are unit-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match prmsel_cli::run(&args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
